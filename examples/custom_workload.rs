//! Bring your own workload: define a star schema, write analytic SQL,
//! inspect the budget allocation, and tune with a storage constraint.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! Demonstrates the pieces a downstream user combines: the SQL front end,
//! candidate generation knobs, storage-constrained tuning, and the budget
//! allocation matrix view of where the what-if calls went (§3.2).

use ixtune::candidates::{generate, GenOptions};
use ixtune::core::prelude::*;
use ixtune::optimizer::{CostModel, SimulatedOptimizer};
use ixtune::workload::sql::parse_workload;
use ixtune::workload::{BenchmarkInstance, ColType, Schema, TableBuilder};

fn build_schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(
        TableBuilder::new("sales", 50_000_000)
            .key("sale_id", ColType::BigInt)
            .col("customer_id", ColType::Int, 2_000_000)
            .col("product_id", ColType::Int, 40_000)
            .col("store_id", ColType::Int, 500)
            .col("sold_on", ColType::Date, 1_460)
            .col("quantity", ColType::Int, 100)
            .col("amount", ColType::Decimal, 1_000_000)
            .col("discount", ColType::Decimal, 20)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("customers", 2_000_000)
            .key("customer_id", ColType::Int)
            .col("region", ColType::Char(2), 50)
            .col("segment", ColType::VarChar(16), 8)
            .col("name", ColType::VarChar(60), 1_900_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("products", 40_000)
            .key("product_id", ColType::Int)
            .col("category", ColType::VarChar(24), 40)
            .col("brand", ColType::VarChar(24), 600)
            .col("unit_cost", ColType::Decimal, 9_000)
            .build(),
    )
    .unwrap();
    s
}

fn main() {
    let schema = build_schema();
    let workload = parse_workload(
        &schema,
        "retail",
        &[
            (
                "daily-revenue",
                "SELECT sold_on, SUM(amount) FROM sales \
                 WHERE sold_on >= DATE '2024-01-01' GROUP BY sold_on ORDER BY sold_on",
            ),
            (
                "segment-mix",
                "SELECT c.segment, SUM(s.amount) FROM sales s, customers c \
                 WHERE s.customer_id = c.customer_id AND c.region = 'US' GROUP BY c.segment",
            ),
            (
                "category-margin",
                "SELECT p.category, SUM(s.amount - p.unit_cost * s.quantity) \
                 FROM sales s, products p WHERE s.product_id = p.product_id \
                 AND p.brand = 'Acme' GROUP BY p.category",
            ),
            (
                "store-velocity",
                "SELECT store_id, COUNT(*) FROM sales \
                 WHERE sold_on BETWEEN DATE '2024-06-01' AND DATE '2024-06-30' \
                 GROUP BY store_id ORDER BY COUNT(*) DESC LIMIT 10",
            ),
        ],
    )
    .expect("SQL parses");
    let instance = BenchmarkInstance::new(schema, workload);

    // Tighter candidate generation than the default.
    let cands = generate(
        &instance,
        &GenOptions {
            max_key_columns: 2,
            max_include_columns: 4,
            max_per_query: 12,
        },
    );
    let opt = SimulatedOptimizer::new(instance, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);

    // Storage constraint: the database's own size (enough for a couple of
    // fact-table indexes, not for everything).
    let limit = opt.schema().database_size_bytes();
    let req = TuningRequest::new(Constraints::with_storage(4, limit), 60).with_seed(7);
    println!(
        "tuning with K = 4 and a storage limit of {} GB",
        limit / (1 << 30)
    );

    let result = MctsTuner::default().tune(&ctx, &req);
    println!(
        "\nrecommendation ({:.1}% improvement):",
        result.improvement_pct()
    );
    for id in result.config.iter() {
        let idx = opt.candidate(id);
        println!(
            "  {}  (~{} MB)",
            idx.describe(opt.schema()),
            idx.size_bytes(opt.schema()) / (1 << 20)
        );
    }

    // Where did the budget go? The layout of the allocation matrix.
    let layout = &result.layout;
    println!(
        "\nbudget allocation: {} calls over {} configurations × {} queries",
        layout.len(),
        layout.distinct_configurations(),
        layout.distinct_queries()
    );
    for (size, count) in layout.calls_by_config_size() {
        println!("  configurations of size {size}: {count} calls");
    }
}
