//! Quickstart: tune a small workload end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of Figure 1 in the paper: define a schema, write
//! queries in SQL, generate candidate indexes, and search for the best
//! configuration under a what-if call budget with the MCTS tuner.

use ixtune::candidates::generate_default;
use ixtune::core::prelude::*;
use ixtune::optimizer::{CostModel, SimulatedOptimizer};
use ixtune::workload::sql::parse_workload;
use ixtune::workload::{BenchmarkInstance, ColType, Schema, TableBuilder};

fn main() {
    // 1. Schema — the running example of the paper's Figure 3, scaled up.
    let mut schema = Schema::new();
    schema
        .add_table(
            TableBuilder::new("r", 2_000_000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 10_000)
                .col("payload", ColType::VarChar(80), 1_500_000)
                .build(),
        )
        .unwrap();
    schema
        .add_table(
            TableBuilder::new("s", 8_000_000)
                .key("c", ColType::Int)
                .col("d", ColType::Int, 50_000)
                .col("note", ColType::VarChar(120), 6_000_000)
                .build(),
        )
        .unwrap();

    // 2. Workload — plain SQL, parsed by the mini-SQL front end.
    let workload = parse_workload(
        &schema,
        "quickstart",
        &[
            (
                "Q1",
                "SELECT a, d FROM r, s WHERE r.b = s.c AND r.a = 5 AND s.d > 200",
            ),
            ("Q2", "SELECT a FROM r, s WHERE r.b = s.c AND r.a = 40"),
            (
                "Q3",
                "SELECT d, COUNT(*) FROM s WHERE d BETWEEN 100 AND 900 GROUP BY d",
            ),
        ],
    )
    .expect("workload parses");
    let instance = BenchmarkInstance::new(schema, workload);

    // 3. Candidate indexes (Figure 3 step 2).
    let cands = generate_default(&instance);
    println!("candidate indexes ({}):", cands.len());
    for idx in &cands.indexes {
        println!("  {}", idx.describe(&instance.schema));
    }

    // 4. The simulated optimizer provides the what-if API.
    let opt = SimulatedOptimizer::new(instance, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);

    // 5. Budget-aware tuning: at most K = 2 indexes, 30 what-if calls.
    let budget = 30;
    let req = TuningRequest::cardinality(2, budget).with_seed(42);
    let result = MctsTuner::default().tune(&ctx, &req);

    println!("\nMCTS recommendation (B = {budget} what-if calls):");
    for id in result.config.iter() {
        println!(
            "  CREATE INDEX ... ON {}",
            opt.candidate(id).describe(opt.schema())
        );
    }
    println!(
        "improvement: {:.1}% of workload cost, using {} calls",
        result.improvement_pct(),
        result.calls_used
    );

    // 6. Compare with the budget-aware greedy baseline at the same budget.
    let greedy = VanillaGreedy.tune(&ctx, &req);
    println!(
        "vanilla greedy at the same budget: {:.1}%",
        greedy.improvement_pct()
    );
}
