//! Sweep the what-if budget on a chosen benchmark and compare all six
//! tuners — a miniature of the paper's end-to-end evaluation.
//!
//! ```text
//! cargo run --release --example budget_sweep [-- <workload> [K]]
//! ```
//! `<workload>` is one of `tpch`, `tpcds`, `job`, `reald`, `realm`
//! (default `tpch`); `K` is the cardinality constraint (default 10).

use ixtune::baselines::{DbaBandits, DtaTuner, NoDba};
use ixtune::candidates::generate_default;
use ixtune::core::prelude::*;
use ixtune::optimizer::{CostModel, SimulatedOptimizer};
use ixtune::workload::gen::BenchmarkKind;

fn main() {
    let kind = std::env::args()
        .nth(1)
        .and_then(|s| BenchmarkKind::parse(&s))
        .unwrap_or(BenchmarkKind::TpcH);
    let k: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let instance = kind.generate();
    println!("{}", instance.stats());
    let cands = generate_default(&instance);
    let opt = SimulatedOptimizer::new(instance, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);

    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(VanillaGreedy),
        Box::new(TwoPhaseGreedy),
        Box::new(AutoAdminGreedy::default()),
        Box::new(DbaBandits::default()),
        Box::new(NoDba::default()),
        Box::new(DtaTuner::default()),
        Box::new(MctsTuner::default()),
    ];

    print!("{:>8}", "budget");
    for t in &tuners {
        print!(" | {:>17}", t.name());
    }
    println!();
    for &budget in kind.budget_grid() {
        print!("{budget:>8}");
        let req = TuningRequest::cardinality(k, budget).with_seed(1);
        for t in &tuners {
            let r = t.tune(&ctx, &req);
            print!(" | {:>16.1}%", r.improvement_pct());
        }
        println!();
    }
}
