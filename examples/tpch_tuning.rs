//! Tune the full TPC-H benchmark under different budgets — the scenario of
//! the paper's Figure 17 — and print the recommended indexes.
//!
//! ```text
//! cargo run --release --example tpch_tuning [-- <scale-factor>]
//! ```

use ixtune::candidates::generate_default;
use ixtune::core::prelude::*;
use ixtune::optimizer::{CostModel, SimulatedOptimizer};
use ixtune::workload::gen::tpch;

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);

    let instance = tpch::generate(sf);
    println!("TPC-H sf={sf}: {}", instance.stats());

    let cands = generate_default(&instance);
    println!("{} candidate indexes generated\n", cands.len());
    let opt = SimulatedOptimizer::new(instance, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);

    println!(
        "{:>8} | {:>28} | {:>28}",
        "budget", "MCTS", "AutoAdmin greedy"
    );
    for budget in [50usize, 100, 200, 500, 1000] {
        let req = TuningRequest::cardinality(10, budget).with_seed(1);
        let mcts = MctsTuner::default().tune(&ctx, &req);
        let greedy = AutoAdminGreedy::default().tune(&ctx, &req);
        println!(
            "{budget:>8} | {:>20.1}% ({:>4} calls) | {:>20.1}% ({:>4} calls)",
            mcts.improvement_pct(),
            mcts.calls_used,
            greedy.improvement_pct(),
            greedy.calls_used
        );
    }

    // Show the actual recommendation at the largest budget.
    let best = MctsTuner::default().tune(&ctx, &TuningRequest::cardinality(10, 1_000).with_seed(1));
    println!("\nrecommended configuration at B=1000 (K=10):");
    for id in best.config.iter() {
        let idx = opt.candidate(id);
        println!(
            "  {}  (~{} MB)",
            idx.describe(opt.schema()),
            idx.size_bytes(opt.schema()) / (1 << 20)
        );
    }
    println!(
        "total size ~{} MB, improvement {:.1}%",
        opt.config_size_bytes(&best.config) / (1 << 20),
        best.improvement_pct()
    );
}
