//! Property-based tests of the paper's formal results.
//!
//! * Assumption 1 — monotonicity of the simulated what-if costs;
//! * Eq. 1 — the derived cost is a correct upper bound that equals the
//!   what-if cost once known;
//! * Theorem 1 — `b(W, C)` is non-negative, monotone, and submodular under
//!   singleton derivation (Eq. 2);
//! * Theorem 2 — greedy with full singleton information achieves at least
//!   `(1 − 1/e)` of the optimal derived benefit on brute-forceable
//!   instances;
//! * Theorem 3 — order insensitivity: what-if results arriving in any order
//!   (same outcome set) give identical derived costs and identical greedy
//!   output.

use ixtune::candidates::generate_default;
use ixtune::common::{IndexId, IndexSet, QueryId};
use ixtune::core::derived::WhatIfCache;
use ixtune::core::prelude::*;
use ixtune::core::{greedy_enumerate, MeteredWhatIf};
use ixtune::optimizer::{CostModel, SimulatedOptimizer, WhatIfOptimizer};
use ixtune::workload::gen::synth::{self, SynthParams};
use proptest::prelude::*;

fn small_optimizer(seed: u64) -> SimulatedOptimizer {
    let inst = synth::generate(&SynthParams {
        seed,
        num_tables: 3,
        num_queries: 4,
        max_scans: 3,
        max_filters: 2,
    });
    let cands = generate_default(&inst);
    SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default())
}

fn subset_of(universe: usize, mask: u64) -> IndexSet {
    IndexSet::from_ids(
        universe,
        (0..universe.min(64))
            .filter(|i| mask >> i & 1 == 1)
            .map(IndexId::from),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Assumption 1: `C1 ⊆ C2 ⇒ c(q, C2) ≤ c(q, C1)`.
    #[test]
    fn whatif_cost_is_monotone(seed in 0u64..40, mask in any::<u64>(), extra in 0usize..16) {
        let opt = small_optimizer(seed);
        let n = opt.num_candidates();
        prop_assume!(n > 0);
        let c1 = subset_of(n, mask);
        let c2 = c1.with(IndexId::from(extra % n));
        for q in 0..opt.num_queries() {
            let q = QueryId::from(q);
            let a = opt.what_if_cost(q, &c1);
            let b = opt.what_if_cost(q, &c2);
            prop_assert!(b <= a + 1e-9, "cost went up: {a} -> {b}");
        }
    }

    /// Derived cost never underestimates the what-if cost and matches it
    /// exactly once the configuration has been evaluated.
    #[test]
    fn derived_is_a_tight_upper_bound(seed in 0u64..40, mask in any::<u64>()) {
        let opt = small_optimizer(seed);
        let n = opt.num_candidates();
        prop_assume!(n > 0);
        let config = subset_of(n, mask);
        let mut mw = MeteredWhatIf::new(&opt, 1_000);
        // Evaluate a few singletons to give derivation something to chew on.
        for i in 0..n.min(4) {
            for q in 0..opt.num_queries() {
                mw.what_if(QueryId::from(q), &IndexSet::singleton(n, IndexId::from(i)));
            }
        }
        for q in 0..opt.num_queries() {
            let q = QueryId::from(q);
            let exact = opt.what_if_cost(q, &config);
            let d = mw.derived(q, &config);
            prop_assert!(d >= exact - 1e-9, "derived {d} < exact {exact}");
        }
        // After evaluating, derived == exact.
        for q in 0..opt.num_queries() {
            let q = QueryId::from(q);
            let exact = mw.what_if(q, &config);
            prop_assume!(exact.is_some());
            prop_assert!((mw.derived(q, &config) - exact.unwrap()).abs() < 1e-12);
        }
    }

    /// Theorem 1: with singleton derivation, `b(W, C)` is non-negative,
    /// monotone, and submodular.
    #[test]
    fn singleton_benefit_is_monotone_submodular(
        seed in 0u64..40,
        x_mask in any::<u64>(),
        extra_sel in 0usize..16,
        z_sel in 0usize..16,
    ) {
        let opt = small_optimizer(seed);
        let n = opt.num_candidates();
        prop_assume!(n >= 2);
        // Evaluate every singleton for every query (full Eq. 2 information).
        let mut mw = MeteredWhatIf::new(&opt, 1_000_000);
        for i in 0..n {
            for q in 0..opt.num_queries() {
                mw.what_if(QueryId::from(q), &IndexSet::singleton(n, IndexId::from(i)));
            }
        }
        let cache = mw.cache();
        let b = |c: &IndexSet| -> f64 {
            (0..opt.num_queries())
                .map(|q| {
                    let q = QueryId::from(q);
                    cache.empty_cost(q) - cache.derived_singleton(q, c)
                })
                .sum()
        };
        let x = subset_of(n, x_mask);
        let extra = IndexId::from(extra_sel % n);
        let y = x.with(extra);
        let z = IndexId::from(z_sel % n);
        prop_assume!(!y.contains(z));

        // Non-negativity and monotonicity.
        prop_assert!(b(&x) >= -1e-9);
        prop_assert!(b(&y) >= b(&x) - 1e-9, "monotone violated");
        // Submodularity: marginal gain of z shrinks as the set grows.
        let gain_x = b(&x.with(z)) - b(&x);
        let gain_y = b(&y.with(z)) - b(&y);
        prop_assert!(gain_x >= gain_y - 1e-9, "submodularity violated: {gain_x} < {gain_y}");
    }

    /// Theorem 3 (order insensitivity): inserting the same set of what-if
    /// results in different orders leaves every derived cost — and the
    /// greedy algorithm's output — unchanged.
    #[test]
    fn derivation_and_greedy_are_order_insensitive(
        seed in 0u64..40,
        perm_seed in any::<u64>(),
        probe_mask in any::<u64>(),
    ) {
        let opt = small_optimizer(seed);
        let n = opt.num_candidates();
        prop_assume!(n >= 2);
        let m = opt.num_queries();
        // The outcome: every singleton plus a handful of pairs.
        let mut entries: Vec<(QueryId, IndexSet)> = Vec::new();
        for q in 0..m {
            for i in 0..n {
                entries.push((QueryId::from(q), IndexSet::singleton(n, IndexId::from(i))));
            }
            entries.push((
                QueryId::from(q),
                IndexSet::from_ids(n, [IndexId::new(0), IndexId::from(n - 1)]),
            ));
        }
        let empty_costs: Vec<f64> = (0..m)
            .map(|q| opt.what_if_cost(QueryId::from(q), &IndexSet::empty(n)))
            .collect();

        let build = |order: &[usize]| {
            let mut cache = WhatIfCache::new(n, empty_costs.clone());
            for &i in order {
                let (q, cfg) = &entries[i];
                let cost = opt.what_if_cost(*q, cfg);
                cache.put(*q, cfg, cost);
            }
            cache
        };
        let forward: Vec<usize> = (0..entries.len()).collect();
        let mut shuffled = forward.clone();
        // Fisher–Yates with the property seed.
        let mut s = perm_seed | 1;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let c1 = build(&forward);
        let c2 = build(&shuffled);

        let probe = subset_of(n, probe_mask);
        for q in 0..m {
            let q = QueryId::from(q);
            prop_assert_eq!(c1.derived(q, &probe), c2.derived(q, &probe));
        }
        prop_assert_eq!(c1.derived_workload(&probe), c2.derived_workload(&probe));
    }
}

/// Theorem 2: greedy over full singleton information achieves ≥ (1 − 1/e)
/// of the optimal singleton-derived benefit (checked by brute force).
#[test]
fn greedy_achieves_submodular_approximation_bound() {
    for seed in 0..25u64 {
        let opt = small_optimizer(seed);
        let inst_cands = generate_default(&{
            // Rebuild the instance to get the candidate set back.
            synth::generate(&SynthParams {
                seed,
                num_tables: 3,
                num_queries: 4,
                max_scans: 3,
                max_filters: 2,
            })
        });
        let n = opt.num_candidates();
        if n == 0 || n > 16 {
            continue; // keep brute force tractable
        }
        let ctx = TuningContext::new(&opt, &inst_cands);
        let k = 3usize;
        let mut mw = MeteredWhatIf::new(&opt, 1_000_000);
        for i in 0..n {
            for q in 0..opt.num_queries() {
                mw.what_if(QueryId::from(q), &IndexSet::singleton(n, IndexId::from(i)));
            }
        }
        let cache = mw.cache();
        let benefit = |c: &IndexSet| -> f64 {
            (0..opt.num_queries())
                .map(|q| {
                    let q = QueryId::from(q);
                    cache.empty_cost(q) - cache.derived_singleton(q, c)
                })
                .sum()
        };

        // Greedy under singleton-derived costs (Algorithm 1).
        let pool: Vec<IndexId> = (0..n).map(IndexId::from).collect();
        let greedy_cfg = greedy_enumerate(&ctx, &Constraints::cardinality(k), &pool, |c| {
            (0..opt.num_queries())
                .map(|q| cache.derived_singleton(QueryId::from(q), c))
                .sum()
        });
        let greedy_benefit = benefit(&greedy_cfg);

        // Brute-force optimum over all configurations of size ≤ k.
        let mut best = 0.0f64;
        for mask in 0u64..(1 << n) {
            if mask.count_ones() as usize > k {
                continue;
            }
            let cfg = subset_of(n, mask);
            best = best.max(benefit(&cfg));
        }
        let bound = (1.0 - 1.0 / std::f64::consts::E) * best;
        assert!(
            greedy_benefit >= bound - 1e-9,
            "seed {seed}: greedy {greedy_benefit} < (1-1/e)·opt {bound}"
        );
    }
}
