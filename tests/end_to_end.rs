//! End-to-end integration tests: the full pipeline (workload → candidates →
//! simulated optimizer → budgeted tuning → oracle evaluation) on every
//! benchmark workload and every tuner.

use ixtune::baselines::{DbaBandits, DtaTuner, NoDba};
use ixtune::candidates::{generate_default, CandidateSet};
use ixtune::core::prelude::*;
use ixtune::optimizer::{CostModel, SimulatedOptimizer};
use ixtune::workload::gen::{synth, BenchmarkKind};

fn session(kind: BenchmarkKind) -> (SimulatedOptimizer, CandidateSet) {
    let inst = kind.generate();
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    (opt, cands)
}

fn all_tuners() -> Vec<Box<dyn Tuner>> {
    vec![
        Box::new(VanillaGreedy),
        Box::new(TwoPhaseGreedy),
        Box::new(AutoAdminGreedy::default()),
        Box::new(MctsTuner::default()),
        Box::new(DbaBandits::default()),
        Box::new(NoDba::default()),
        Box::new(DtaTuner::default()),
    ]
}

#[test]
fn every_tuner_respects_budget_and_constraints_on_tpch() {
    let (opt, cands) = session(BenchmarkKind::TpcH);
    let ctx = TuningContext::new(&opt, &cands);
    let req = TuningRequest::cardinality(5, 120).with_seed(1);
    for tuner in all_tuners() {
        let r = tuner.tune(&ctx, &req);
        assert!(
            r.calls_used <= 120,
            "{} overspent: {}",
            r.algorithm,
            r.calls_used
        );
        assert!(r.config.len() <= 5, "{} too many indexes", r.algorithm);
        assert!(
            (0.0..=1.0).contains(&r.improvement),
            "{} improvement out of range: {}",
            r.algorithm,
            r.improvement
        );
        assert_eq!(
            r.layout.len(),
            r.calls_used,
            "{} layout mismatch",
            r.algorithm
        );
    }
}

#[test]
fn pipeline_works_on_every_benchmark() {
    // One cheap tuning run per workload — generation, candidate derivation,
    // costing, and search must hold together everywhere.
    for kind in BenchmarkKind::ALL {
        let (opt, cands) = session(kind);
        let ctx = TuningContext::new(&opt, &cands);
        let r = MctsTuner::default().tune(&ctx, &TuningRequest::cardinality(5, 100).with_seed(3));
        assert!(r.calls_used <= 100, "{}", kind.name());
        assert!(r.improvement >= 0.0, "{}", kind.name());
    }
}

#[test]
fn mcts_beats_vanilla_greedy_at_small_budget_on_tpcds() {
    // The paper's headline (Figure 8): under tight budgets MCTS finds far
    // better configurations than FCFS vanilla greedy.
    let (opt, cands) = session(BenchmarkKind::TpcDs);
    let ctx = TuningContext::new(&opt, &cands);
    let req = TuningRequest::cardinality(10, 1_000);
    let mcts = MctsTuner::default().tune(&ctx, &req.with_seed(1));
    let vanilla = VanillaGreedy.tune(&ctx, &req.with_seed(0));
    assert!(
        mcts.improvement > vanilla.improvement + 0.10,
        "MCTS {:.3} should clearly beat vanilla {:.3} at B=1000",
        mcts.improvement,
        vanilla.improvement
    );
}

#[test]
fn mcts_beats_vanilla_by_an_order_of_magnitude_on_real_m() {
    // §7.1.3: on Real-M vanilla greedy stays near 0% while MCTS reaches
    // ~35-40% — a 7-8x relative gap.
    let (opt, cands) = session(BenchmarkKind::RealM);
    let ctx = TuningContext::new(&opt, &cands);
    let req = TuningRequest::cardinality(10, 2_000);
    let mcts = MctsTuner::default().tune(&ctx, &req.with_seed(1));
    let vanilla = VanillaGreedy.tune(&ctx, &req.with_seed(0));
    assert!(
        vanilla.improvement < 0.05,
        "vanilla {:.3}",
        vanilla.improvement
    );
    assert!(mcts.improvement > 0.25, "mcts {:.3}", mcts.improvement);
}

#[test]
fn improvement_grows_with_budget_for_greedy_variants() {
    let (opt, cands) = session(BenchmarkKind::TpcH);
    let ctx = TuningContext::new(&opt, &cands);
    let req = TuningRequest::cardinality(10, 50);
    for tuner in [&VanillaGreedy as &dyn Tuner, &TwoPhaseGreedy] {
        let lo = tuner.tune(&ctx, &req).improvement;
        let hi = tuner.tune(&ctx, &req.with_budget(2_000)).improvement;
        assert!(hi >= lo - 0.05, "{}: lo {lo} hi {hi}", tuner.name());
    }
}

#[test]
fn storage_constraint_is_honored_by_every_tuner() {
    let (opt, cands) = session(BenchmarkKind::TpcH);
    let ctx = TuningContext::new(&opt, &cands);
    let limit = opt.schema().database_size_bytes() / 2;
    let req = TuningRequest::new(Constraints::with_storage(10, limit), 150).with_seed(2);
    for tuner in all_tuners() {
        let r = tuner.tune(&ctx, &req);
        assert!(
            opt.config_size_bytes(&r.config) <= limit,
            "{} violated storage limit",
            r.algorithm
        );
    }
}

#[test]
fn stochastic_tuners_are_reproducible() {
    let (opt, cands) = session(BenchmarkKind::TpcH);
    let ctx = TuningContext::new(&opt, &cands);
    let req = TuningRequest::cardinality(5, 150).with_seed(99);
    for tuner in [
        Box::new(MctsTuner::default()) as Box<dyn Tuner>,
        Box::new(DbaBandits::default()),
        Box::new(NoDba::default()),
    ] {
        assert!(
            tuner.is_stochastic(),
            "{} should be stochastic",
            tuner.name()
        );
        let a = tuner.tune(&ctx, &req);
        let b = tuner.tune(&ctx, &req);
        assert_eq!(a.config, b.config, "{} not deterministic", a.algorithm);
        assert_eq!(a.calls_used, b.calls_used);
    }
}

#[test]
fn compressed_multi_instance_workload_tunes_like_the_original() {
    // The paper's multi-instance protocol: compress instances per template
    // (weights accumulate), then tune the compressed workload. The
    // recommendation quality evaluated on the *full* multi-instance
    // workload should be close to tuning it directly, at a fraction of the
    // query count.
    use ixtune::workload::compress::compress;
    use ixtune::workload::gen::tpch;
    use ixtune::workload::BenchmarkInstance;

    let multi = tpch::generate_multi(1.0, 4, 11);
    let compressed = compress(&multi.workload);
    assert_eq!(compressed.workload.len(), 22);

    let full_cands = generate_default(&multi);
    let full_opt = SimulatedOptimizer::new(
        multi.clone(),
        full_cands.indexes.clone(),
        CostModel::default(),
    );
    let full_ctx = TuningContext::new(&full_opt, &full_cands);

    let comp_inst = BenchmarkInstance::new(multi.schema.clone(), compressed.workload);
    let comp_cands = generate_default(&comp_inst);
    let comp_opt =
        SimulatedOptimizer::new(comp_inst, comp_cands.indexes.clone(), CostModel::default());
    let comp_ctx = TuningContext::new(&comp_opt, &comp_cands);

    let req = TuningRequest::cardinality(10, 500).with_seed(1);
    let direct = MctsTuner::default().tune(&full_ctx, &req);
    let via_compression = MctsTuner::default().tune(&comp_ctx, &req);

    // Evaluate the compressed recommendation against the FULL workload by
    // mapping candidate definitions across universes.
    let mapped: Vec<_> = via_compression
        .config
        .iter()
        .filter_map(|id| {
            let def = comp_opt.candidate(id);
            full_cands.indexes.iter().position(|d| d == def)
        })
        .collect();
    assert!(
        !mapped.is_empty(),
        "compressed candidates must exist in the full universe"
    );
    let mapped_set = ixtune::common::IndexSet::from_ids(
        full_ctx.universe(),
        mapped.into_iter().map(ixtune::common::IndexId::from),
    );
    let mapped_improvement = full_ctx.oracle_improvement(&mapped_set);
    assert!(
        mapped_improvement > direct.improvement - 0.15,
        "compression-based tuning {:.3} should track direct tuning {:.3}",
        mapped_improvement,
        direct.improvement
    );
}

#[test]
fn synthetic_instances_round_trip_all_tuners() {
    for seed in [11u64, 12, 13] {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        if cands.is_empty() {
            continue;
        }
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        for tuner in all_tuners() {
            let r = tuner.tune(&ctx, &TuningRequest::cardinality(3, 40).with_seed(seed));
            assert!(r.calls_used <= 40);
            assert!(r.config.len() <= 3);
        }
    }
}
