//! The paper's worked examples, encoded as tests.
//!
//! * Figure 3 — candidate index generation for the two-query workload;
//! * Example 1 / Figure 4 — the greedy algorithm's step structure;
//! * Figure 5 — the budget-allocation-matrix fill patterns of the three
//!   greedy variants (row-major, column-major-first, atomic-only);
//! * Figure 6/7 — MDP transitions are deterministic insertions, terminal
//!   states sit at depth K.

use ixtune::candidates::generate_default;
use ixtune::common::{IndexId, IndexSet};
use ixtune::core::prelude::*;
use ixtune::optimizer::{CostModel, SimulatedOptimizer};
use ixtune::workload::sql::parse_workload;
use ixtune::workload::{BenchmarkInstance, ColType, Schema, TableBuilder};

/// The workload of Figure 3: R(a, b), S(c, d) and queries Q1, Q2.
fn figure3_instance() -> BenchmarkInstance {
    let mut schema = Schema::new();
    schema
        .add_table(
            TableBuilder::new("r", 1_000_000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 10_000)
                .build(),
        )
        .unwrap();
    schema
        .add_table(
            TableBuilder::new("s", 4_000_000)
                .key("c", ColType::Int)
                .col("d", ColType::Int, 1_000)
                .build(),
        )
        .unwrap();
    let workload = parse_workload(
        &schema,
        "fig3",
        &[
            (
                "Q1",
                "SELECT a, d FROM r, s WHERE r.b = s.c AND r.a = 5 AND s.d > 200",
            ),
            ("Q2", "SELECT a FROM r, s WHERE r.b = s.c AND r.a = 40"),
        ],
    )
    .unwrap();
    BenchmarkInstance::new(schema, workload)
}

#[test]
fn figure3_candidates_match_the_papers_shapes() {
    let inst = figure3_instance();
    let cands = generate_default(&inst);
    let descs: Vec<String> = cands
        .indexes
        .iter()
        .map(|i| i.describe(&inst.schema))
        .collect();
    // I1 = [R.a; R.b]: filter index leading on a, carrying b.
    assert!(descs.iter().any(|d| d == "r(a; b)"), "{descs:?}");
    // I2 = [R.b; R.a]: join index leading on b, carrying a (our generator
    // may promote the carried column to a trailing key — same shape).
    assert!(
        descs.iter().any(|d| d == "r(b; a)" || d == "r(b, a)"),
        "{descs:?}"
    );
    // I3 = [S.c; S.d]: join index leading on c, carrying d.
    assert!(
        descs.iter().any(|d| d == "s(c; d)" || d == "s(c, d)"),
        "{descs:?}"
    );
    // I4 = [S.d; S.c]: filter index leading on d, carrying c.
    assert!(
        descs.iter().any(|d| d == "s(d; c)" || d == "s(d, c)"),
        "{descs:?}"
    );
    // I5 = [S.c; ()]: bare join index on c (from Q2, which doesn't read d).
    assert!(descs.iter().any(|d| d == "s(c)"), "{descs:?}");
}

#[test]
fn example1_greedy_monotone_steps_and_early_stop() {
    // Greedy commits one index per step and each step's cost is no worse
    // than the previous one (Example 1 / Figure 4 structure).
    let inst = figure3_instance();
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);
    let r = VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(2, 100_000));
    assert!(r.config.len() <= 2);
    assert!(r.improvement > 0.0, "Figure 3's workload is improvable");

    // The greedy visits singletons before any pair (step structure): in the
    // layout, the first calls are all for size-1 configurations.
    let sizes: Vec<usize> = r.layout.cells().iter().map(|(_, c)| c.len()).collect();
    let first_pair = sizes.iter().position(|&s| s == 2).unwrap_or(sizes.len());
    assert!(
        sizes[..first_pair].iter().all(|&s| s == 1),
        "singletons first: {sizes:?}"
    );
}

#[test]
fn figure5_vanilla_fill_is_row_major() {
    let inst = figure3_instance();
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);
    let r = VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(2, 7));
    assert!(r.layout.is_row_major(), "Figure 5(b): row-major FCFS fill");
}

#[test]
fn figure5_twophase_fill_starts_column_major() {
    let inst = figure3_instance();
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);
    // Budget small enough to stay inside phase 1.
    let r = TwoPhaseGreedy.tune(&ctx, &TuningRequest::cardinality(2, 4));
    assert!(
        r.layout.is_column_major(),
        "Figure 5(c): phase 1 fills query columns first"
    );
}

#[test]
fn figure5_autoadmin_only_fills_atomic_rows() {
    let inst = figure3_instance();
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);
    let r = AutoAdminGreedy::default().tune(&ctx, &TuningRequest::cardinality(2, 1_000));
    assert!(
        r.layout.calls_by_config_size().keys().all(|&s| s <= 2),
        "Figure 5(d): atomic configurations only"
    );
}

#[test]
fn figure6_mdp_transitions_are_deterministic_insertions() {
    // s' = s ∪ {a}: IndexSet::with models the MDP transition function.
    let s = IndexSet::from_ids(3, [IndexId::new(1)]);
    let s2 = s.with(IndexId::new(2));
    assert!(s2.contains(IndexId::new(1)) && s2.contains(IndexId::new(2)));
    assert_eq!(s2.len(), 2);
    // Applying the same action twice is idempotent (the action set excludes
    // indexes already in the state).
    assert_eq!(s2.with(IndexId::new(2)), s2);
    // Action set A(s) = I − s.
    let actions: Vec<IndexId> = s.complement_iter().collect();
    assert_eq!(actions, vec![IndexId::new(0), IndexId::new(2)]);
}

#[test]
fn figure7_episode_expands_tree_and_respects_terminal_depth() {
    let inst = figure3_instance();
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    let ctx = TuningContext::new(&opt, &cands);
    let k = 2;
    let r = MctsTuner::default().tune(&ctx, &TuningRequest::cardinality(k, 60).with_seed(5));
    // Terminal states have |s| = K, so nothing larger is ever evaluated.
    assert!(
        r.layout.cells().iter().all(|(_, c)| c.len() <= k),
        "no evaluated configuration may exceed K"
    );
}
