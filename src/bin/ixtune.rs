//! `ixtune` — command-line front end for budget-aware index tuning.
//!
//! ```text
//! ixtune stats <workload>
//! ixtune candidates <workload> [--limit N]
//! ixtune tune <workload> [--algo NAME] [--budget B] [--k K]
//!                        [--seed S] [--storage-gb G]
//! ixtune compress [--instances N]
//! ```
//!
//! `<workload>` ∈ {tpch, tpcds, job, reald, realm}. Algorithms:
//! `mcts` (default), `vanilla`, `two-phase`, `autoadmin`, `bandits`,
//! `nodba`, `dta`.

use ixtune::baselines::{DbaBandits, DtaTuner, NoDba};
use ixtune::candidates::generate_default;
use ixtune::core::prelude::*;
use ixtune::optimizer::{CostModel, SimulatedOptimizer};
use ixtune::workload::compress::compress;
use ixtune::workload::gen::{tpch, BenchmarkKind};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         ixtune stats <workload>\n  \
         ixtune candidates <workload> [--limit N]\n  \
         ixtune tune <workload> [--algo mcts|vanilla|two-phase|autoadmin|bandits|nodba|dta]\n\
         \x20                   [--budget B] [--k K] [--seed S] [--storage-gb G]\n  \
         ixtune compress [--instances N]\n\n\
         workloads: tpch tpcds job reald realm"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if let Some(value) = args.get(i + 1) {
                flags.insert(name.to_string(), value.clone());
                i += 1;
            }
        }
        i += 1;
    }
    flags
}

fn tuner_by_name(name: &str) -> Option<Box<dyn Tuner>> {
    match name {
        "mcts" => Some(Box::new(MctsTuner::default())),
        "vanilla" => Some(Box::new(VanillaGreedy)),
        "two-phase" | "twophase" => Some(Box::new(TwoPhaseGreedy)),
        "autoadmin" => Some(Box::new(AutoAdminGreedy::default())),
        "bandits" => Some(Box::new(DbaBandits::default())),
        "nodba" => Some(Box::new(NoDba::default())),
        "dta" => Some(Box::new(DtaTuner::default())),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };

    match cmd.as_str() {
        "stats" => {
            let Some(kind) = args.get(1).and_then(|s| BenchmarkKind::parse(s)) else {
                return usage();
            };
            let inst = kind.generate();
            println!("{}", inst.stats());
        }
        "candidates" => {
            let Some(kind) = args.get(1).and_then(|s| BenchmarkKind::parse(s)) else {
                return usage();
            };
            let flags = parse_flags(&args[2..]);
            let limit: usize = flags
                .get("limit")
                .and_then(|v| v.parse().ok())
                .unwrap_or(40);
            let inst = kind.generate();
            let cands = generate_default(&inst);
            println!(
                "{} candidate indexes for {} ({} query-index pairs):",
                cands.len(),
                kind.name(),
                cands.num_query_index_pairs()
            );
            for idx in cands.indexes.iter().take(limit) {
                println!(
                    "  {}  (~{} MB)",
                    idx.describe(&inst.schema),
                    idx.size_bytes(&inst.schema) / (1 << 20)
                );
            }
            if cands.len() > limit {
                println!("  … {} more (raise --limit)", cands.len() - limit);
            }
        }
        "tune" => {
            let Some(kind) = args.get(1).and_then(|s| BenchmarkKind::parse(s)) else {
                return usage();
            };
            let flags = parse_flags(&args[2..]);
            let algo = flags.get("algo").map(String::as_str).unwrap_or("mcts");
            let Some(tuner) = tuner_by_name(algo) else {
                eprintln!("unknown algorithm `{algo}`");
                return usage();
            };
            let budget: usize = flags
                .get("budget")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| kind.budget_grid()[kind.budget_grid().len() / 2]);
            let k: usize = flags.get("k").and_then(|v| v.parse().ok()).unwrap_or(10);
            let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(1);

            let inst = kind.generate();
            let cands = generate_default(&inst);
            let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
            let ctx = TuningContext::new(&opt, &cands);
            let constraints = match flags.get("storage-gb").and_then(|v| v.parse::<f64>().ok()) {
                Some(gb) => Constraints::with_storage(k, (gb * (1u64 << 30) as f64) as u64),
                None => Constraints::cardinality(k),
            };

            let req = TuningRequest::new(constraints, budget).with_seed(seed);
            let start = std::time::Instant::now();
            let result = tuner.tune(&ctx, &req);
            println!(
                "{} on {} (K={k}, B={budget}, seed={seed}): {:.1}% improvement, {} calls, {:.2?}",
                result.algorithm,
                kind.name(),
                result.improvement_pct(),
                result.calls_used,
                start.elapsed()
            );
            for id in result.config.iter() {
                let idx = opt.candidate(id);
                println!(
                    "  CREATE INDEX ... {}  (~{} MB)",
                    idx.describe(opt.schema()),
                    idx.size_bytes(opt.schema()) / (1 << 20)
                );
            }
            println!(
                "total index size ~{} MB; budget spent on {} configurations × {} queries",
                opt.config_size_bytes(&result.config) / (1 << 20),
                result.layout.distinct_configurations(),
                result.layout.distinct_queries()
            );
        }
        "compress" => {
            let flags = parse_flags(&args[1..]);
            let instances: usize = flags
                .get("instances")
                .and_then(|v| v.parse().ok())
                .unwrap_or(5);
            let multi = tpch::generate_multi(1.0, instances, 7);
            let c = compress(&multi.workload);
            println!(
                "TPC-H multi-instance: {} instances → {} templates (ratio {:.1}x)",
                c.original_len,
                c.workload.len(),
                c.ratio()
            );
            for (q, &size) in c.workload.queries.iter().zip(&c.cluster_sizes) {
                println!("  {:<8} {} instances, weight {}", q.name, size, q.weight);
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
