//! # ixtune — budget-aware index tuning with reinforcement learning
//!
//! A reproduction of *"Budget-aware Index Tuning with Reinforcement
//! Learning"* (Wu et al., SIGMOD 2022). This facade crate re-exports the
//! workspace crates under one roof:
//!
//! * [`workload`] — schema/query model, mini-SQL parser, and the five
//!   benchmark workload generators (TPC-H, TPC-DS, JOB, Real-D, Real-M);
//! * [`optimizer`] — the simulated query optimizer with its what-if API,
//!   cache, and budget meter;
//! * [`candidates`] — candidate index generation;
//! * [`core`] — cost derivation, the budget-aware greedy variants, and the
//!   MCTS tuner (the paper's contribution);
//! * [`nn`] — the small MLP library behind the deep-RL baseline;
//! * [`baselines`] — DBA bandits, No DBA (DQN), and the DTA-style tuner.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use ixtune_baselines as baselines;
pub use ixtune_candidates as candidates;
pub use ixtune_common as common;
pub use ixtune_core as core;
pub use ixtune_nn as nn;
pub use ixtune_optimizer as optimizer;
pub use ixtune_workload as workload;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
