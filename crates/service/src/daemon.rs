//! The `ixtuned` TCP front end: accepts localhost connections and speaks
//! the line-delimited JSON protocol, one handler thread per connection.

use crate::manager::SessionManager;
use crate::proto::{write_line, ErrorCode, ErrorPayload, Request, Response};
use crate::spec::ServiceConfig;
use ixtune_common::fault::{site, FaultPlan};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on one request line. The protocol's largest legitimate
/// request is a `Submit` spec (well under a kilobyte); anything beyond
/// this is a runaway or hostile client and is answered with
/// `BadRequest` before the buffer can grow unboundedly.
const MAX_REQUEST_BYTES: usize = 1 << 20;

pub struct Daemon {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    accept: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Bind `bind` (e.g. `127.0.0.1:7311`, or port 0 for an ephemeral
    /// port) and start serving.
    pub fn start(cfg: ServiceConfig, bind: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let manager = Arc::new(SessionManager::start(cfg));
        let accept = {
            let manager = Arc::clone(&manager);
            std::thread::spawn(move || accept_loop(&listener, &manager))
        };
        Ok(Self {
            addr,
            manager,
            accept: Some(accept),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// Block until a `Shutdown` request arrives, then drain workers.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // All connections are done; tear down the workers. The manager is
        // solely ours by now (handlers hold clones of the Arc only while
        // their connection lives, and the accept loop has exited).
        if let Ok(mgr) = Arc::try_unwrap(self.manager).map_err(|_| ()) {
            mgr.shutdown();
        }
    }

    /// Request shutdown from the hosting process (tests use this instead
    /// of a wire `Shutdown`).
    pub fn initiate_shutdown(&self) {
        self.manager.initiate_shutdown();
        nudge_accept(self.addr);
    }
}

fn accept_loop(listener: &TcpListener, manager: &Arc<SessionManager>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if manager.is_shutdown() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let manager = Arc::clone(manager);
        let self_addr = listener.local_addr().ok();
        handlers.push(std::thread::spawn(move || {
            handle_connection(stream, &manager, self_addr);
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(
    stream: TcpStream,
    manager: &Arc<SessionManager>,
    self_addr: Option<SocketAddr>,
) {
    // A finite read timeout lets the handler re-check the shutdown flag
    // while parked on an idle connection, so `join` never waits on a
    // client that holds its socket open.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let faults = manager.fault_plan().clone();
    // `read_line` appends, so a line split across timeouts accumulates.
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if manager.is_shutdown() || buf.len() > MAX_REQUEST_BYTES {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Bytes that are not UTF-8 cannot be part of any valid
                // request; answer with the typed code, then close (the
                // stream cannot be resynchronized mid-garbage).
                let resp = Response::Error(ErrorPayload::new(
                    ErrorCode::BadRequest,
                    "request is not valid UTF-8",
                ));
                let _ = send_response(&mut writer, &resp, &faults);
                return;
            }
            Err(_) => return,
        }
        if buf.len() > MAX_REQUEST_BYTES {
            let resp = Response::Error(ErrorPayload::new(
                ErrorCode::BadRequest,
                format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
            ));
            let _ = send_response(&mut writer, &resp, &faults);
            return;
        }
        let line = buf.trim();
        let msg = if line.is_empty() {
            Err(ErrorPayload::new(
                ErrorCode::BadRequest,
                "empty request line",
            ))
        } else {
            serde_json::from_str::<Request>(line).map_err(|e| {
                ErrorPayload::new(ErrorCode::BadRequest, format!("bad request: {e:?}"))
            })
        };
        buf.clear();
        let response = match msg {
            Err(e) => Response::Error(e),
            Ok(req) => {
                let shutdown = matches!(req, Request::Shutdown);
                let resp = dispatch(req, manager);
                if shutdown {
                    let _ = send_response(&mut writer, &resp, &faults);
                    // Unblock the accept loop so it observes the flag.
                    if let Some(addr) = self_addr {
                        nudge_accept(addr);
                    }
                    return;
                }
                resp
            }
        };
        if send_response(&mut writer, &response, &faults).is_err() {
            return;
        }
    }
}

/// Write one response, subject to the wire fault sites: `wire.drop`
/// closes the connection with no bytes, `wire.truncate` sends half the
/// frame then closes, `wire.garble` flips a payload byte (framing intact,
/// JSON broken). With an inert plan this is exactly [`write_line`].
fn send_response(w: &mut impl Write, resp: &Response, faults: &FaultPlan) -> std::io::Result<()> {
    if !faults.enabled() {
        return write_line(w, resp);
    }
    if faults.fire(site::WIRE_DROP) {
        return Err(std::io::Error::other("injected: wire.drop"));
    }
    let mut line =
        serde_json::to_string(resp).map_err(|e| std::io::Error::other(format!("{e}")))?;
    line.push('\n');
    let mut bytes = line.into_bytes();
    if faults.fire(site::WIRE_TRUNCATE) {
        bytes.truncate(bytes.len() / 2);
        w.write_all(&bytes)?;
        w.flush()?;
        return Err(std::io::Error::other("injected: wire.truncate"));
    }
    if faults.fire(site::WIRE_GARBLE) {
        // Never the trailing newline: the client sees one complete line
        // of invalid JSON, exercising its malformed-message path.
        let mid = (bytes.len() - 1) / 2;
        bytes[mid] ^= 0x20;
    }
    w.write_all(&bytes)?;
    w.flush()
}

fn dispatch(req: Request, manager: &SessionManager) -> Response {
    let unit = |r: Result<(), ErrorPayload>| match r {
        Ok(()) => Response::Ok,
        Err(e) => Response::Error(e),
    };
    match req {
        Request::Ping => Response::Pong,
        Request::Submit(spec) => match manager.submit(spec) {
            Ok(id) => Response::Submitted(id),
            Err(e) => Response::Error(e),
        },
        Request::Status(id) => match manager.status(id) {
            Ok(s) => Response::Status(s),
            Err(e) => Response::Error(e),
        },
        Request::Result(id) => match manager.result(id) {
            Ok(r) => Response::Result(r),
            Err(e) => Response::Error(e),
        },
        Request::Cancel(id) => unit(manager.cancel(id)),
        Request::Suspend(id) => unit(manager.suspend(id)),
        Request::Resume(id) => unit(manager.resume(id)),
        Request::List => Response::Sessions(manager.list()),
        Request::Metrics => Response::Metrics(manager.metrics()),
        Request::Trace(id) => match manager.trace_json(id) {
            Ok(json) => Response::Trace(json),
            Err(e) => Response::Error(e),
        },
        Request::StoreStats => Response::StoreStats(manager.store_stats().into()),
        Request::StoreFlush => Response::Flushed(manager.store_flush()),
        Request::PersistStats => Response::PersistStats(manager.persist_stats().into()),
        Request::Shutdown => {
            manager.initiate_shutdown();
            Response::Ok
        }
    }
}

/// Poke the listener with a throwaway connection so a blocked `accept`
/// returns and re-checks the shutdown flag.
fn nudge_accept(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}
