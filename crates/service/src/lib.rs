//! `ixtuned` — a multi-session tuning service over the core enumerators.
//!
//! The daemon owns a bounded job queue with admission control; each
//! admitted session runs one [`TuningRequest`] against a shared prepared
//! workload under a cooperative [`StopSignal`]: clients can cancel
//! (best-so-far result), set deadlines, suspend a resumable session to a
//! versioned on-disk checkpoint, and resume it later **bit-identically**
//! — the resumed session spends the rest of its budget on exactly the
//! calls the uninterrupted run would have made (DESIGN.md §6).
//!
//! * [`spec`] — submission specs ([`SubmitSpec`]) and daemon
//!   configuration ([`ServiceConfig`]);
//! * [`manager`] — the session manager: queue, states
//!   (Queued → Running → Done/Cancelled/Failed/Suspended), worker
//!   threads, snapshot persistence;
//! * [`proto`] — the line-delimited JSON wire protocol
//!   (`submit`/`status`/`result`/`cancel`/`suspend`/`resume`/`list`/
//!   `metrics`/`trace`), with errors as a closed [`ErrorCode`] set;
//! * [`daemon`] — the TCP front end (`ixtuned`);
//! * [`client`] — the blocking client (`ixtunectl` and tests);
//! * [`durable`] — glue to the `ixtune-persist` WAL/snapshot store: every
//!   submission, transition, and warm publication survives a crash and is
//!   replayed at start (DESIGN.md §10).
//!
//! [`TuningRequest`]: ixtune_core::tuner::TuningRequest
//! [`StopSignal`]: ixtune_core::stop::StopSignal

pub mod client;
pub mod daemon;
pub mod durable;
pub mod manager;
pub mod proto;
pub mod spec;

pub use client::Client;
pub use daemon::Daemon;
pub use manager::SessionManager;
pub use proto::{
    ErrorCode, ErrorPayload, PersistStatsPayload, Request, Response, ResultPayload, SessionState,
    SessionSummary, StatusPayload,
};
pub use spec::{AlgorithmSpec, ServiceConfig, SubmitSpec, WorkloadSpec};
