//! Session submission specs and daemon configuration.

use ixtune_bench::session::Session;
use ixtune_candidates::{generate_default, CandidateSet};
use ixtune_core::tuner::TuningRequest;
use ixtune_optimizer::{CostModel, SimulatedOptimizer};
use ixtune_persist::Durability;
use ixtune_workload::gen::{synth, BenchmarkKind};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Which enumeration algorithm a session runs. Only `Mcts` supports
/// suspension (checkpoint/resume); the greedy family supports cancel and
/// deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgorithmSpec {
    Mcts,
    VanillaGreedy,
    TwoPhase,
    AutoAdmin,
}

impl AlgorithmSpec {
    /// Parse a CLI-friendly name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "mcts" => Some(Self::Mcts),
            "greedy" | "vanilla" | "vanilla-greedy" => Some(Self::VanillaGreedy),
            "twophase" | "two-phase" => Some(Self::TwoPhase),
            "autoadmin" | "auto-admin" => Some(Self::AutoAdmin),
            _ => None,
        }
    }

    /// Whether checkpoint/resume is available for this algorithm.
    pub fn resumable(self) -> bool {
        matches!(self, Self::Mcts)
    }
}

/// Which workload a session tunes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One of the paper's benchmarks, by name: `tpch`, `tpcds`, `job`,
    /// `reald`, `realm`.
    Bench(String),
    /// A synthetic instance from `synth::instance(seed)`.
    Synth(u64),
}

impl WorkloadSpec {
    /// Parse `tpch` / `synth:42` style CLI notation.
    pub fn parse(s: &str) -> Option<Self> {
        let lower = s.to_ascii_lowercase();
        if let Some(seed) = lower.strip_prefix("synth:") {
            return seed.parse().ok().map(WorkloadSpec::Synth);
        }
        bench_kind(&lower)
            .is_some()
            .then_some(WorkloadSpec::Bench(lower))
    }

    /// Stable cache key (also the display name).
    pub fn key(&self) -> String {
        match self {
            WorkloadSpec::Bench(name) => name.clone(),
            WorkloadSpec::Synth(seed) => format!("synth:{seed}"),
        }
    }

    /// Generate the workload and build the optimizer + candidate set.
    /// Benchmarks go through the bench crate's [`Session`] construction so
    /// the service tunes exactly what the experiment runner tunes.
    pub fn prepare(&self) -> Result<Prepared, String> {
        match self {
            WorkloadSpec::Bench(name) => {
                let kind = bench_kind(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
                let (cands, opt) = Session::build(kind).into_parts();
                Ok(Prepared { cands, opt })
            }
            WorkloadSpec::Synth(seed) => {
                let inst = synth::instance(*seed);
                let cands = generate_default(&inst);
                let opt =
                    SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
                Ok(Prepared { cands, opt })
            }
        }
    }
}

fn bench_kind(name: &str) -> Option<BenchmarkKind> {
    match name {
        "tpch" => Some(BenchmarkKind::TpcH),
        "tpcds" => Some(BenchmarkKind::TpcDs),
        "job" => Some(BenchmarkKind::Job),
        "reald" => Some(BenchmarkKind::RealD),
        "realm" => Some(BenchmarkKind::RealM),
        _ => None,
    }
}

/// An owned, shareable workload: candidate set + simulated optimizer.
/// Sessions borrow `TuningContext` views of it.
pub struct Prepared {
    pub cands: CandidateSet,
    pub opt: SimulatedOptimizer,
}

/// Everything a client submits for one tuning session.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubmitSpec {
    pub workload: WorkloadSpec,
    pub algorithm: AlgorithmSpec,
    /// Cardinality constraint `K`.
    pub k: usize,
    /// Optional storage constraint (bytes).
    pub storage_bytes: Option<u64>,
    /// What-if call budget `B`.
    pub budget: usize,
    /// Seed for stochastic tuners.
    pub seed: u64,
    /// Logical intra-session thread count (`0` = auto); the daemon caps it
    /// at its configured maximum. Results are invariant to it.
    pub session_threads: usize,
    /// Wall-clock deadline for the session, in milliseconds per run
    /// segment.
    pub deadline_ms: Option<u64>,
    /// Deterministic suspend trigger (fires once this many what-if calls
    /// are spent): the smoke-test hook for checkpoint/resume. Cleared on
    /// resume so the session doesn't immediately re-suspend.
    pub pause_after_calls: Option<usize>,
    /// Deterministic cancel trigger, same semantics.
    pub cancel_after_calls: Option<usize>,
}

impl SubmitSpec {
    /// A minimal spec with the common defaults.
    pub fn new(workload: WorkloadSpec, algorithm: AlgorithmSpec, k: usize, budget: usize) -> Self {
        Self {
            workload,
            algorithm,
            k,
            storage_bytes: None,
            budget,
            seed: 0,
            session_threads: 1,
            deadline_ms: None,
            pause_after_calls: None,
            cancel_after_calls: None,
        }
    }

    /// The core-level request this spec denotes, with the thread count
    /// already capped by the daemon.
    pub fn request(&self, max_session_threads: usize) -> TuningRequest {
        let threads = if self.session_threads == 0 {
            max_session_threads
        } else {
            self.session_threads.min(max_session_threads)
        };
        let mut req = TuningRequest::cardinality(self.k, self.budget)
            .with_seed(self.seed)
            .with_session_threads(threads);
        if let Some(b) = self.storage_bytes {
            req = req.with_storage(b);
        }
        req
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be ≥ 1".into());
        }
        if let WorkloadSpec::Bench(name) = &self.workload {
            if bench_kind(name).is_none() {
                return Err(format!("unknown workload `{name}`"));
            }
        }
        if self.pause_after_calls.is_some() && !self.algorithm.resumable() {
            return Err("pause_after_calls requires a resumable algorithm (mcts)".into());
        }
        Ok(())
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Sessions allowed to run simultaneously (= worker threads).
    pub max_concurrent: usize,
    /// Admission control: queued-but-not-terminal sessions beyond this are
    /// rejected at submit.
    pub queue_capacity: usize,
    /// Cap composed with each spec's `session_threads`.
    pub max_session_threads: usize,
    /// The daemon's durable root (`--data-dir`): the write-ahead log and
    /// generation snapshots live directly inside it, suspended-session
    /// checkpoints under [`ServiceConfig::checkpoint_dir`]. Restarting on
    /// the same directory recovers the warm store and session registry.
    pub data_dir: PathBuf,
    /// When appended WAL records reach stable storage
    /// (`--durability always|batch|never`).
    pub durability: Durability,
    /// WAL size that triggers snapshot compaction after a session settles.
    pub wal_compact_bytes: u64,
    /// Byte bound on the daemon-wide warm cost store (estimated resident
    /// size; least-recently-touched workload snapshots are evicted first).
    pub warm_store_bytes: u64,
    /// Prepared workloads kept in the shared cache; least-recently-used
    /// entries beyond this are dropped (sessions already holding an `Arc`
    /// finish unaffected).
    pub prepared_capacity: usize,
    /// Seeded fault-injection spec (`--fault-spec` /
    /// `IXTUNE_FAULT_SPEC`), e.g. `seed=42;whatif.error=p0.05`. Empty
    /// disables injection entirely — the hot paths see one inert branch.
    pub fault_spec: String,
}

impl ServiceConfig {
    /// Where suspended-session checkpoints live: a subdirectory of the
    /// data dir, so one `--data-dir` flag governs every durable artifact.
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.data_dir.join("checkpoints")
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_concurrent: 2,
            queue_capacity: 16,
            max_session_threads: ixtune_common::sync::available_parallelism(),
            // Absolute by construction — the old CWD-relative "snapshots"
            // default scattered state wherever the daemon happened to
            // start. Production deployments pass an explicit --data-dir.
            data_dir: std::env::temp_dir().join("ixtuned-data"),
            durability: Durability::Batch,
            wal_compact_bytes: 4 << 20,
            warm_store_bytes: 64 << 20,
            prepared_capacity: 8,
            fault_spec: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cli_notation() {
        assert_eq!(
            WorkloadSpec::parse("tpch"),
            Some(WorkloadSpec::Bench("tpch".into()))
        );
        assert_eq!(WorkloadSpec::parse("synth:7"), Some(WorkloadSpec::Synth(7)));
        assert_eq!(WorkloadSpec::parse("bogus"), None);
        assert_eq!(AlgorithmSpec::parse("mcts"), Some(AlgorithmSpec::Mcts));
        assert_eq!(
            AlgorithmSpec::parse("two-phase"),
            Some(AlgorithmSpec::TwoPhase)
        );
        assert_eq!(AlgorithmSpec::parse("nope"), None);
    }

    #[test]
    fn request_caps_threads() {
        let mut spec = SubmitSpec::new(WorkloadSpec::Synth(1), AlgorithmSpec::Mcts, 3, 50);
        spec.session_threads = 0;
        assert_eq!(spec.request(4).session_threads, 4);
        spec.session_threads = 16;
        assert_eq!(spec.request(4).session_threads, 4);
        spec.session_threads = 2;
        assert_eq!(spec.request(4).session_threads, 2);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = SubmitSpec::new(WorkloadSpec::Synth(1), AlgorithmSpec::VanillaGreedy, 3, 50);
        assert!(spec.validate().is_ok());
        spec.pause_after_calls = Some(10);
        assert!(spec.validate().is_err(), "greedy cannot suspend");
        spec.algorithm = AlgorithmSpec::Mcts;
        assert!(spec.validate().is_ok());
        spec.k = 0;
        assert!(spec.validate().is_err());
    }
}
