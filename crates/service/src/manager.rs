//! The session manager: bounded job queue, admission control, worker
//! threads, cooperative interruption, and durable state.
//!
//! All shared state lives in one [`Monitor`]; workers block on it for
//! work, clients mutate it through the manager's methods, and every
//! mutation wakes all waiters (see DESIGN.md §6). Concurrency control is
//! structural: exactly `max_concurrent` worker threads exist, so at most
//! that many sessions run at once; admission control bounds the number of
//! admitted-but-not-terminal sessions at `queue_capacity`.
//!
//! Every state transition that must survive a crash — submission, claim,
//! suspension, resume, settle, warm-store publication — is appended to
//! the write-ahead log under `ServiceConfig::data_dir` (see DESIGN.md
//! §10); [`SessionManager::start`] replays it so suspended sessions
//! reappear resumable, completed results stay queryable, and the warm
//! store opens with every cost prior sessions paid for.

use crate::durable::{import_warm, warm_batch_record, DurableLog};
use crate::proto::{
    ErrorCode, ErrorPayload, ResultPayload, SessionState, SessionSummary, StatusPayload,
};
use crate::spec::{Prepared, ServiceConfig, SubmitSpec};
use ixtune_common::fault::{site, FaultPlan};
use ixtune_common::sync::Monitor;
use ixtune_core::checkpoint::MctsCheckpoint;
use ixtune_core::mcts::{MctsOutcome, MctsTuner};
use ixtune_core::obs::{publish_cache_hit_ratios, Obs};
use ixtune_core::stop::{Progress, StopReason, StopSignal};
use ixtune_core::tuner::{Tuner, TuningContext, TuningResult};
use ixtune_core::warm::{WarmState, WarmStore, WarmStoreStats};
use ixtune_core::SessionFaults;
use ixtune_obs::{MetricsRegistry, TraceRecorder};
use ixtune_persist::{PersistState, PersistStats, Record, SessionStatus};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One tracked session.
struct SessionRec {
    spec: SubmitSpec,
    state: SessionState,
    /// Armed while the session runs; `cancel`/`suspend` act through it.
    stop: Option<StopSignal>,
    result: Option<ResultPayload>,
    error: Option<String>,
    /// Accumulated across run segments (suspend/resume keeps every
    /// segment's time).
    wall_clock_ms: f64,
    /// Last progress published before the signal was cleared, so the
    /// status of a suspended session still reports its counters.
    progress: Option<Progress>,
    /// Snapshot file of a suspended session.
    snapshot: Option<PathBuf>,
    /// Set when the client asked to resume: the deterministic triggers
    /// from the original spec are spent and must not re-fire.
    resumed: bool,
}

#[derive(Default)]
struct ManagerState {
    sessions: BTreeMap<u64, SessionRec>,
    queue: VecDeque<u64>,
    next_id: u64,
    shutdown: bool,
    /// Prepared workloads shared across sessions, keyed by
    /// `WorkloadSpec::key()` — submitting ten TPC-H sessions builds TPC-H
    /// once. Each entry carries its last-touch tick; the cache is bounded
    /// at `ServiceConfig::prepared_capacity` with least-recently-used
    /// eviction (sessions holding an `Arc` finish unaffected).
    workloads: HashMap<String, (Arc<Prepared>, u64)>,
    /// Monotonic touch tick for the prepared-workload LRU.
    workload_clock: u64,
    /// Prepared workloads evicted by the capacity bound (diagnostics).
    workload_evictions: u64,
}

impl ManagerState {
    /// Fetch a prepared workload and refresh its LRU position.
    fn touch_workload(&mut self, key: &str) -> Option<Arc<Prepared>> {
        self.workload_clock += 1;
        let clock = self.workload_clock;
        self.workloads.get_mut(key).map(|(p, touch)| {
            *touch = clock;
            Arc::clone(p)
        })
    }

    /// Insert a freshly prepared workload, evicting the least recently
    /// used entries beyond `capacity`.
    fn insert_workload(&mut self, key: String, prepared: &Arc<Prepared>, capacity: usize) {
        self.workload_clock += 1;
        let clock = self.workload_clock;
        self.workloads
            .entry(key)
            .or_insert_with(|| (Arc::clone(prepared), clock));
        while self.workloads.len() > capacity.max(1) {
            let victim = self
                .workloads
                .iter()
                .min_by_key(|(_, (_, touch))| *touch)
                .map(|(k, _)| k.clone())
                .expect("over-capacity map is non-empty");
            self.workloads.remove(&victim);
            self.workload_evictions += 1;
        }
    }
}

/// Span capacity of the daemon's trace ring: enough for many sessions'
/// phase-boundary spans; older spans are dropped first (the recorder
/// counts drops).
const TRACE_CAPACITY: usize = 65_536;

/// The daemon's core. Public methods are the verbs of the wire protocol.
pub struct SessionManager {
    cfg: ServiceConfig,
    state: Arc<Monitor<ManagerState>>,
    workers: Vec<JoinHandle<()>>,
    /// Daemon-wide metrics registry; every session reports into it.
    registry: Arc<MetricsRegistry>,
    /// Daemon-wide span ring; sessions are separated by trace scope.
    tracer: Arc<TraceRecorder>,
    /// Daemon-wide warm cost store: cross-session what-if reuse.
    warm: Arc<WarmStore>,
    /// Durable WAL + snapshot store under `cfg.data_dir`.
    durable: Arc<DurableLog>,
    /// Seeded fault plan compiled from `cfg.fault_spec`; inert (one
    /// never-taken branch per site) when the spec is empty.
    faults: FaultPlan,
}

impl SessionManager {
    /// Recover durable state from `cfg.data_dir`, then start
    /// `max_concurrent` workers over the recovered session table.
    ///
    /// Panics when the data directory cannot be created or opened — a
    /// daemon that cannot persist cannot honor its restart contract, and
    /// there is no session yet to fail on behalf of.
    pub fn start(cfg: ServiceConfig) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(TraceRecorder::new(TRACE_CAPACITY));
        let warm = Arc::new(WarmStore::new(cfg.warm_store_bytes as usize));
        let faults = FaultPlan::parse(&cfg.fault_spec)
            .unwrap_or_else(|e| panic!("invalid fault spec {:?}: {e}", cfg.fault_spec));
        if faults.enabled() {
            eprintln!("ixtuned: fault injection armed: {}", faults.spec());
        }
        std::fs::create_dir_all(cfg.checkpoint_dir())
            .unwrap_or_else(|e| panic!("create {:?}: {e}", cfg.checkpoint_dir()));
        let (durable, recovered) =
            DurableLog::open(&cfg.data_dir, cfg.durability, &registry, &tracer, &faults)
                .unwrap_or_else(|e| panic!("open persist store in {:?}: {e}", cfg.data_dir));
        let durable = Arc::new(durable);
        // Warm capital first: the very first admitted session must check
        // out every cost prior daemons paid for. Poisoned rows are dropped
        // individually and surfaced as a counter.
        let (_, poisoned) = import_warm(&recovered, &warm);
        let poisoned_rows = registry.counter(
            "ixtune_warm_poisoned_rows_total",
            "Recovered warm-store rows dropped by structural validation",
            &[],
        );
        poisoned_rows.add(poisoned as u64);
        let init = import_sessions(&recovered, &cfg);
        let swept = cleanup_orphan_checkpoints(&cfg.checkpoint_dir(), &init);
        let orphans_swept = registry.counter(
            "ixtune_persist_orphans_swept_total",
            "Orphaned checkpoint files removed at daemon start",
            &[],
        );
        orphans_swept.add(swept as u64);
        let state = Arc::new(Monitor::new(init));
        let workers = (0..cfg.max_concurrent.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let cfg = cfg.clone();
                let registry = Arc::clone(&registry);
                let tracer = Arc::clone(&tracer);
                let warm = Arc::clone(&warm);
                let durable = Arc::clone(&durable);
                let faults = faults.clone();
                std::thread::spawn(move || {
                    worker_loop(&state, &cfg, &registry, &tracer, &warm, &durable, &faults)
                })
            })
            .collect();
        Self {
            cfg,
            state,
            workers,
            registry,
            tracer,
            warm,
            durable,
            faults,
        }
    }

    /// The daemon's compiled fault plan (inert when no spec was given).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The daemon-wide metrics registry (tests scrape it directly).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Point-in-time statistics of the durable store (generation, WAL
    /// size, fsyncs, last-recovery outcome).
    pub fn persist_stats(&self) -> PersistStats {
        self.durable.stats()
    }

    /// Aggregate counters of the warm cost store.
    pub fn store_stats(&self) -> WarmStoreStats {
        self.warm.stats()
    }

    /// Drop every warm store snapshot; returns the entries discarded.
    /// Running sessions keep their checked-out snapshots and finish
    /// unaffected. Logged, so a flushed store stays flushed across a
    /// restart.
    pub fn store_flush(&self) -> usize {
        let dropped = self.warm.flush();
        self.durable.append(&Record::WarmFlush);
        dropped
    }

    /// Admit a session. Fails when the daemon is shutting down or the
    /// queue is at capacity (admission control counts every session that
    /// may still need a worker: queued, running, or suspended).
    pub fn submit(&self, spec: SubmitSpec) -> Result<u64, ErrorPayload> {
        spec.validate()
            .map_err(|m| ErrorPayload::new(ErrorCode::InvalidSpec, m))?;
        let spec_json = serde_json::to_string(&spec)
            .map_err(|e| ErrorPayload::new(ErrorCode::InvalidSpec, format!("spec: {e}")))?;
        let capacity = self.cfg.queue_capacity;
        // WAL appends happen *inside* the registry lock, here and at every
        // other transition site: the lock serializes commits, so WAL order
        // is exactly commit order. Appending after releasing the lock once
        // let a 1 ms session run, suspend, and log `SessionSuspended`
        // before the submitter's `SessionSubmitted` reached the WAL —
        // replay drops transitions for ids it has not seen submitted, so
        // the suspended session came back `Queued`. The fsync-under-lock
        // cost lands on rare control-plane calls and per-session settles,
        // never on the tuning hot path.
        let durable = &self.durable;
        let admitted = self.state.update(|st| {
            if st.shutdown {
                return Err(ErrorPayload::new(
                    ErrorCode::ShuttingDown,
                    "daemon is shutting down",
                ));
            }
            let open = st.sessions.values().filter(|r| !r.state.terminal()).count();
            if open >= capacity {
                return Err(ErrorPayload::new(
                    ErrorCode::QueueFull,
                    format!("queue full ({open}/{capacity} sessions open)"),
                ));
            }
            let id = st.next_id;
            st.next_id += 1;
            st.sessions.insert(
                id,
                SessionRec {
                    spec,
                    state: SessionState::Queued,
                    stop: None,
                    result: None,
                    error: None,
                    wall_clock_ms: 0.0,
                    progress: None,
                    snapshot: None,
                    resumed: false,
                },
            );
            st.queue.push_back(id);
            durable.append(&Record::SessionSubmitted { id, spec_json });
            Ok(id)
        });
        admitted
    }

    /// Cancel a session in any non-terminal state. Queued sessions go
    /// terminal immediately; running ones stop at their next poll (their
    /// best-so-far result is kept); suspended ones go terminal and their
    /// snapshot is deleted.
    pub fn cancel(&self, id: u64) -> Result<(), ErrorPayload> {
        let durable = &self.durable;
        let snapshot = self.state.update(|st| {
            let rec = st
                .sessions
                .get_mut(&id)
                .ok_or_else(|| unknown_session(id))?;
            match rec.state {
                SessionState::Queued => {
                    rec.state = SessionState::Cancelled;
                    st.queue.retain(|&q| q != id);
                    durable.append(&Record::SessionCancelled {
                        id,
                        result_json: None,
                    });
                    Ok(None)
                }
                SessionState::Running => {
                    // The worker observes the signal, settles the session,
                    // and writes the terminal record itself.
                    if let Some(stop) = &rec.stop {
                        stop.cancel();
                    }
                    Ok(None)
                }
                SessionState::Suspended => {
                    rec.state = SessionState::Cancelled;
                    durable.append(&Record::SessionCancelled {
                        id,
                        result_json: None,
                    });
                    Ok(rec.snapshot.take())
                }
                s => Err(ErrorPayload::new(
                    ErrorCode::AlreadyTerminal,
                    format!("session {id} is already {s:?}"),
                )),
            }
        })?;
        if let Some(path) = snapshot {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Request suspension of a running, resumable session. The worker
    /// writes the checkpoint at the next episode boundary.
    pub fn suspend(&self, id: u64) -> Result<(), ErrorPayload> {
        self.state.update(|st| {
            let rec = st
                .sessions
                .get_mut(&id)
                .ok_or_else(|| unknown_session(id))?;
            if !rec.spec.algorithm.resumable() {
                return Err(ErrorPayload::new(
                    ErrorCode::NotResumable,
                    format!(
                        "session {id} runs {:?}, which cannot checkpoint — use Cancel",
                        rec.spec.algorithm
                    ),
                ));
            }
            match (&rec.state, &rec.stop) {
                (SessionState::Running, Some(stop)) => {
                    stop.request_suspend();
                    Ok(())
                }
                (s, _) => Err(ErrorPayload::new(
                    ErrorCode::NotRunning,
                    format!("session {id} is {s:?}, not Running"),
                )),
            }
        })
    }

    /// Re-queue a suspended session; it resumes from its snapshot with the
    /// original spec's deterministic triggers cleared.
    pub fn resume(&self, id: u64) -> Result<(), ErrorPayload> {
        let durable = &self.durable;
        self.state.update(|st| {
            let rec = st
                .sessions
                .get_mut(&id)
                .ok_or_else(|| unknown_session(id))?;
            if rec.state != SessionState::Suspended {
                return Err(ErrorPayload::new(
                    ErrorCode::NotSuspended,
                    format!("session {id} is {:?}, not Suspended", rec.state),
                ));
            }
            rec.state = SessionState::Queued;
            rec.resumed = true;
            st.queue.push_back(id);
            durable.append(&Record::SessionResumed { id });
            Ok(())
        })
    }

    pub fn status(&self, id: u64) -> Result<StatusPayload, ErrorPayload> {
        self.state.with(|st| {
            let rec = st.sessions.get(&id).ok_or_else(|| unknown_session(id))?;
            // Streamed telemetry: the live progress published by the
            // running tuner, or the final result's counters once done.
            let progress = rec
                .stop
                .as_ref()
                .and_then(|s| s.progress())
                .or(rec.progress);
            let (telemetry, best) = match (&rec.result, progress) {
                (Some(r), _) => (r.telemetry, r.improvement),
                (None, Some(p)) => (p.telemetry, p.best_improvement),
                (None, None) => (Default::default(), 0.0),
            };
            Ok(StatusPayload {
                id,
                state: rec.state,
                algorithm: rec.spec.algorithm,
                workload: rec.spec.workload.key(),
                telemetry,
                best_improvement: best,
                wall_clock_ms: rec.wall_clock_ms,
                error: rec.error.clone(),
            })
        })
    }

    pub fn result(&self, id: u64) -> Result<ResultPayload, ErrorPayload> {
        self.state.with(|st| {
            let rec = st.sessions.get(&id).ok_or_else(|| unknown_session(id))?;
            rec.result.clone().ok_or_else(|| {
                ErrorPayload::new(
                    ErrorCode::NoResult,
                    format!("session {id} has no result (state {:?})", rec.state),
                )
            })
        })
    }

    /// Render the Prometheus text exposition. Queue depth, per-state
    /// session counts, and the per-shard cache hit ratios are gauges
    /// computed at scrape time; everything else accumulates live.
    pub fn metrics(&self) -> String {
        let (depth, counts) = self.state.with(|st| {
            let mut counts = [0usize; SESSION_STATES.len()];
            for rec in st.sessions.values() {
                counts[state_index(rec.state)] += 1;
            }
            (st.queue.len(), counts)
        });
        self.registry
            .gauge("ixtune_queue_depth", "Sessions waiting for a worker", &[])
            .set(depth as f64);
        for (i, (_, label)) in SESSION_STATES.iter().enumerate() {
            self.registry
                .gauge(
                    "ixtune_sessions",
                    "Known sessions by lifecycle state",
                    &[("state", label)],
                )
                .set(counts[i] as f64);
        }
        let warm = self.warm.stats();
        let warm_gauges: [(&str, &str, f64); 5] = [
            (
                "ixtune_warm_store_bytes",
                "Estimated resident bytes of the warm cost store",
                warm.bytes as f64,
            ),
            (
                "ixtune_warm_store_entries",
                "Cost entries held by the warm cost store",
                warm.entries as f64,
            ),
            (
                "ixtune_warm_store_workloads",
                "Distinct workload snapshots in the warm cost store",
                warm.workloads as f64,
            ),
            (
                "ixtune_warm_store_epoch",
                "Publication epoch of the warm cost store",
                warm.epoch as f64,
            ),
            (
                "ixtune_warm_store_evictions",
                "Warm store snapshots evicted by the byte bound",
                warm.evictions as f64,
            ),
        ];
        self.registry
            .gauge(
                "ixtune_warm_interned_configs",
                "Distinct interned configurations across warm store snapshots",
                &[],
            )
            .set(warm.interned_configs as f64);
        for (name, help, value) in warm_gauges {
            self.registry.gauge(name, help, &[]).set(value);
        }
        // Fault-plan injection counts live on the plan (lock-free atomics
        // on the injection path); published here as scrape-time deltas so
        // the counter monotonicity contract holds.
        for (fault_site, injected) in self.faults.sites() {
            let counter = self.registry.counter(
                "ixtune_fault_injected_total",
                "Faults injected by the seeded fault plan, by site",
                &[("site", fault_site)],
            );
            let seen = counter.get();
            if injected > seen {
                counter.add(injected - seen);
            }
        }
        publish_cache_hit_ratios(&self.registry);
        self.registry.render()
    }

    /// Chrome-trace-viewer JSON of the spans recorded for session `id`.
    /// Valid (possibly empty) for any known session — a session that has
    /// not run yet simply has no spans.
    pub fn trace_json(&self, id: u64) -> Result<String, ErrorPayload> {
        let known = self.state.with(|st| st.sessions.contains_key(&id));
        if !known {
            return Err(unknown_session(id));
        }
        Ok(self.tracer.chrome_trace(Some(id)))
    }

    pub fn list(&self) -> Vec<SessionSummary> {
        self.state.with(|st| {
            st.sessions
                .iter()
                .map(|(&id, rec)| SessionSummary {
                    id,
                    state: rec.state,
                    algorithm: rec.spec.algorithm,
                    workload: rec.spec.workload.key(),
                })
                .collect()
        })
    }

    /// Block until session `id` reaches a state where it no longer holds a
    /// worker (terminal or suspended). `None` on timeout.
    pub fn wait_settled(&self, id: u64, timeout: Duration) -> Option<SessionState> {
        let settled = |st: &ManagerState| {
            st.sessions
                .get(&id)
                .is_some_and(|r| r.state.terminal() || r.state == SessionState::Suspended)
        };
        self.state
            .wait_update_timeout(timeout, settled, |st| st.sessions[&id].state)
    }

    pub fn is_shutdown(&self) -> bool {
        self.state.with(|st| st.shutdown)
    }

    /// Stop accepting work and cancel whatever is queued or running.
    pub fn initiate_shutdown(&self) {
        let durable = &self.durable;
        self.state.update(|st| {
            st.shutdown = true;
            st.queue.clear();
            for (&id, rec) in st.sessions.iter_mut() {
                match rec.state {
                    SessionState::Queued => {
                        rec.state = SessionState::Cancelled;
                        durable.append(&Record::SessionCancelled {
                            id,
                            result_json: None,
                        });
                    }
                    SessionState::Running => {
                        if let Some(stop) = &rec.stop {
                            stop.cancel();
                        }
                    }
                    _ => {}
                }
            }
        });
    }

    /// Shut down, join every worker, and flush the WAL batch so a clean
    /// exit loses nothing even under `--durability batch`.
    pub fn shutdown(mut self) {
        self.initiate_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.durable.sync();
    }
}

fn unknown_session(id: u64) -> ErrorPayload {
    ErrorPayload::new(ErrorCode::UnknownSession, format!("no session {id}"))
}

/// Rebuild the in-memory session table from recovered durable state.
/// `Queued` and `Running` rows re-enter the queue — a `Running` row means
/// the daemon died mid-session, so it re-runs (from its checkpoint when
/// one exists). Rows whose spec no longer parses are dropped with a
/// stderr note; ids are never reused, so the gap is harmless.
fn import_sessions(recovered: &PersistState, cfg: &ServiceConfig) -> ManagerState {
    let mut st = ManagerState {
        next_id: recovered.next_id,
        ..ManagerState::default()
    };
    for row in &recovered.sessions {
        let spec: SubmitSpec = match serde_json::from_str(&row.spec_json) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "ixtuned: recovery dropped session {}: spec unreadable: {e}",
                    row.id
                );
                continue;
            }
        };
        st.next_id = st.next_id.max(row.id + 1);
        let snapshot = row
            .checkpoint
            .as_ref()
            .map(|name| cfg.checkpoint_dir().join(name));
        let (state, result, error, requeue) = match &row.status {
            SessionStatus::Queued | SessionStatus::Running => {
                (SessionState::Queued, None, None, true)
            }
            SessionStatus::Suspended => (SessionState::Suspended, None, None, false),
            SessionStatus::Done { result_json } => (
                SessionState::Done,
                serde_json::from_str(result_json).ok(),
                None,
                false,
            ),
            SessionStatus::Cancelled { result_json } => (
                SessionState::Cancelled,
                result_json
                    .as_deref()
                    .and_then(|j| serde_json::from_str(j).ok()),
                None,
                false,
            ),
            SessionStatus::Failed { error } => {
                (SessionState::Failed, None, Some(error.clone()), false)
            }
        };
        if requeue {
            st.queue.push_back(row.id);
        }
        st.sessions.insert(
            row.id,
            SessionRec {
                spec,
                state,
                stop: None,
                result,
                error,
                wall_clock_ms: row.wall_clock_ms,
                progress: None,
                snapshot,
                // A checkpoint means at least one segment already ran: the
                // spec's one-shot triggers are spent and must not re-fire.
                resumed: row.resumed || row.checkpoint.is_some(),
            },
        );
    }
    st
}

/// Remove checkpoint files no live suspension references — sessions that
/// went terminal while their snapshot file lingered, or leftovers in a
/// data dir whose WAL was lost.
fn cleanup_orphan_checkpoints(dir: &Path, st: &ManagerState) -> usize {
    let live: HashSet<PathBuf> = st
        .sessions
        .values()
        .filter_map(|rec| rec.snapshot.clone())
        .collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("s-")
            && name.ends_with(".ckpt.json")
            && !live.contains(&path)
            && std::fs::remove_file(&path).is_ok()
        {
            swept += 1;
        }
    }
    swept
}

/// Session states and their `ixtune_sessions{state=…}` gauge labels, in
/// `state_index` order.
const SESSION_STATES: [(SessionState, &str); 6] = [
    (SessionState::Queued, "queued"),
    (SessionState::Running, "running"),
    (SessionState::Suspended, "suspended"),
    (SessionState::Done, "done"),
    (SessionState::Cancelled, "cancelled"),
    (SessionState::Failed, "failed"),
];

fn state_index(s: SessionState) -> usize {
    SESSION_STATES
        .iter()
        .position(|&(st, _)| st == s)
        .expect("every state is listed")
}

/// One worker: claim the next queued session, run it to a settled state,
/// repeat until shutdown.
fn worker_loop(
    state: &Arc<Monitor<ManagerState>>,
    cfg: &ServiceConfig,
    registry: &Arc<MetricsRegistry>,
    tracer: &Arc<TraceRecorder>,
    warm_store: &Arc<WarmStore>,
    durable: &Arc<DurableLog>,
    faults: &FaultPlan,
) {
    loop {
        // Claim: wait for work or shutdown, atomically marking the
        // session Running with a freshly armed StopSignal.
        let claimed = state.wait_update(
            |st| st.shutdown || !st.queue.is_empty(),
            |st| {
                if st.shutdown {
                    return None;
                }
                while let Some(id) = st.queue.pop_front() {
                    let rec = st.sessions.get_mut(&id)?;
                    // A session cancelled while queued stays terminal.
                    if rec.state != SessionState::Queued {
                        continue;
                    }
                    let mut stop = StopSignal::armed();
                    if let Some(ms) = rec.spec.deadline_ms {
                        stop = stop.with_deadline(Duration::from_millis(ms));
                    }
                    // Deterministic triggers fire once, in the first run
                    // segment only — a resumed session would otherwise
                    // re-suspend immediately (its call count is already
                    // past the trigger).
                    if !rec.resumed {
                        if let Some(n) = rec.spec.cancel_after_calls {
                            stop = stop.cancel_after_calls(n);
                        }
                        if let Some(n) = rec.spec.pause_after_calls {
                            stop = stop.suspend_after_calls(n);
                        }
                    }
                    rec.state = SessionState::Running;
                    rec.stop = Some(stop.clone());
                    durable.append(&Record::SessionRunning { id });
                    return Some((id, rec.spec.clone(), rec.snapshot.clone(), stop));
                }
                None
            },
        );
        let Some((id, spec, snapshot, stop)) = claimed else {
            if state.with(|st| st.shutdown) {
                return;
            }
            continue;
        };

        // Prepare the workload outside the lock (TPC-DS generation is not
        // cheap); insert into the shared LRU-bounded cache afterwards.
        let key = spec.workload.key();
        let prepared = match state.with(|st| st.touch_workload(&key)) {
            Some(p) => Ok(p),
            None => spec.workload.prepare().map(|p| {
                let p = Arc::new(p);
                // Count the per-query plan tables compiled for this
                // workload (0 when `IXTUNE_COMPILED=0` forces the
                // interpreted path).
                registry
                    .counter(
                        "ixtune_compiled_queries_total",
                        "Per-query plan tables compiled at workload preparation",
                        &[],
                    )
                    .add(p.opt.compiled_query_count() as u64);
                state.with(|st| {
                    st.insert_workload(key.clone(), &p, cfg.prepared_capacity);
                });
                p
            }),
        };

        let settled = match prepared {
            Err(e) => Settled::Failed(e),
            Ok(p) => {
                // Check out the workload's warm snapshot at admission:
                // known costs are served without invoking the optimizer,
                // and the calls this session does pay for are ledgered for
                // write-back when it settles.
                let fingerprint = p.opt.content_fingerprint();
                let warm = Arc::new(WarmState::new(warm_store.checkout(
                    &key,
                    fingerprint,
                    ixtune_optimizer::WhatIfOptimizer::num_queries(&p.opt),
                    p.cands.len(),
                )));
                let start = Instant::now();
                let obs = Obs::enabled(Arc::clone(registry), Some(Arc::clone(tracer)), id);
                let warm_run = Arc::clone(&warm);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    // The worker.panic site exercises the daemon's panic
                    // containment end to end: the unwind is caught right
                    // here, the session settles Failed, the worker lives.
                    if faults.fire(site::WORKER_PANIC) {
                        panic!("injected: worker panic");
                    }
                    run_session(
                        &p,
                        &spec,
                        snapshot.as_deref(),
                        &stop,
                        cfg,
                        id,
                        obs,
                        warm_run,
                        faults,
                    )
                }));
                // Absorb the ledger whatever the outcome — completed,
                // suspended, failed, or panicked segments all paid for real
                // optimizer calls worth sharing. Costs are pure functions,
                // so partial segments contribute correct entries. Logged
                // only when it added something: replay re-absorbs exactly
                // the warm capital this segment published.
                let num_queries = ixtune_optimizer::WhatIfOptimizer::num_queries(&p.opt);
                let ledger = warm.drain();
                let batch =
                    warm_batch_record(&key, fingerprint, num_queries, p.cands.len(), &ledger);
                let added =
                    warm_store.absorb(&key, fingerprint, num_queries, p.cands.len(), ledger);
                if added > 0 {
                    durable.append(&batch);
                }
                let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                match outcome {
                    Ok(s) => {
                        // The wall clock is stamped by the service (the
                        // satellite requirement): each segment's time is
                        // accumulated on the record and mirrored into the
                        // final telemetry below.
                        state.with(|st| {
                            if let Some(rec) = st.sessions.get_mut(&id) {
                                rec.wall_clock_ms += elapsed_ms;
                            }
                        });
                        s
                    }
                    Err(panic) => Settled::Failed(panic_message(panic)),
                }
            }
        };

        let outcome = state.update(|st| {
            let rec = st.sessions.get_mut(&id)?;
            if let Some(p) = rec.stop.as_ref().and_then(|s| s.progress()) {
                rec.progress = Some(p);
            }
            rec.stop = None;
            match settled {
                Settled::Finished(result) => {
                    let mut payload = ResultPayload::from_result(&result);
                    payload.telemetry.wall_clock_ms = rec.wall_clock_ms;
                    let json = serde_json::to_string(&payload).ok();
                    let cancelled = matches!(
                        result.stop_reason,
                        Some(StopReason::Cancelled) | Some(StopReason::Deadline)
                    );
                    rec.state = if cancelled {
                        SessionState::Cancelled
                    } else {
                        SessionState::Done
                    };
                    rec.result = Some(payload);
                    // Logged under the lock: the terminal state must be in
                    // the WAL before any client can observe it, and WAL
                    // order must match commit order (see `submit`).
                    durable.append(&if cancelled {
                        Record::SessionCancelled {
                            id,
                            result_json: json,
                        }
                    } else {
                        Record::SessionDone {
                            id,
                            result_json: json.unwrap_or_default(),
                        }
                    });
                    Some(rec.snapshot.take())
                }
                Settled::Suspended(path) => {
                    rec.state = SessionState::Suspended;
                    let checkpoint = path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    rec.snapshot = Some(path);
                    durable.append(&Record::SessionSuspended {
                        id,
                        checkpoint,
                        wall_clock_ms: rec.wall_clock_ms,
                    });
                    Some(None)
                }
                Settled::Failed(msg) => {
                    rec.state = SessionState::Failed;
                    rec.error = Some(msg.clone());
                    durable.append(&Record::SessionFailed { id, error: msg });
                    Some(None)
                }
            }
        });
        if let Some(consumed) = outcome {
            // A resumed session that ran to completion has consumed its
            // snapshot; remove the file outside the lock.
            if let Some(path) = consumed {
                let _ = std::fs::remove_file(path);
            }
            // Settle is the one quiet moment in a session's life — compact
            // here, never on the tuning hot path.
            durable.maybe_compact(cfg.wal_compact_bytes);
        }
    }
}

enum Settled {
    Finished(TuningResult),
    Suspended(PathBuf),
    Failed(String),
}

/// Run one session segment: fresh or resumed, any algorithm.
#[allow(clippy::too_many_arguments)]
fn run_session(
    prepared: &Prepared,
    spec: &SubmitSpec,
    snapshot: Option<&std::path::Path>,
    stop: &StopSignal,
    cfg: &ServiceConfig,
    id: u64,
    obs: Obs,
    warm: Arc<WarmState>,
    faults: &FaultPlan,
) -> Settled {
    // Each session gets its own degraded flag over the shared plan, so a
    // what-if fault in one session never marks another Degraded.
    let ctx = TuningContext::new(&prepared.opt, &prepared.cands)
        .with_obs(obs.clone())
        .with_warm(warm)
        .with_faults(SessionFaults::new(faults.clone()));
    let req = spec.request(cfg.max_session_threads);
    use crate::spec::AlgorithmSpec;
    match spec.algorithm {
        AlgorithmSpec::Mcts => {
            let tuner = MctsTuner::default();
            let outcome = match snapshot {
                Some(path) => {
                    let json = match std::fs::read_to_string(path) {
                        Ok(j) => j,
                        Err(e) => return Settled::Failed(format!("read snapshot: {e}")),
                    };
                    let ckpt = match MctsCheckpoint::from_json(&json) {
                        Ok(c) => c,
                        Err(e) => return Settled::Failed(e),
                    };
                    match tuner.resume(&ctx, &ckpt, stop) {
                        Ok(o) => o,
                        Err(e) => return Settled::Failed(e),
                    }
                }
                None => tuner.run_resumable(&ctx, &req, stop),
            };
            match outcome {
                MctsOutcome::Finished(result, _) => Settled::Finished(result),
                MctsOutcome::Suspended(ckpt) => {
                    // The checkpoint directory exists from daemon start;
                    // its name format is load-bearing for orphan cleanup.
                    let path = cfg.checkpoint_dir().join(format!("s-{id}.ckpt.json"));
                    let json = ckpt.to_json();
                    let t0 = obs.span_start();
                    let written = std::fs::write(&path, &json);
                    if let Some(t0) = t0 {
                        obs.span_end(
                            t0,
                            "snapshot-write",
                            "checkpoint",
                            vec![("bytes".into(), json.len().to_string())],
                        );
                    }
                    match written {
                        Ok(()) => Settled::Suspended(path),
                        Err(e) => Settled::Failed(format!("write snapshot: {e}")),
                    }
                }
            }
        }
        AlgorithmSpec::VanillaGreedy => {
            Settled::Finished(ixtune_core::VanillaGreedy.tune_with_stop(&ctx, &req, stop))
        }
        AlgorithmSpec::TwoPhase => {
            Settled::Finished(ixtune_core::TwoPhaseGreedy.tune_with_stop(&ctx, &req, stop))
        }
        AlgorithmSpec::AutoAdmin => Settled::Finished(
            ixtune_core::AutoAdminGreedy::default().tune_with_stop(&ctx, &req, stop),
        ),
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("session panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("session panicked: {s}")
    } else {
        "session panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlgorithmSpec, WorkloadSpec};

    fn config(dir: &str) -> ServiceConfig {
        let data_dir = std::env::temp_dir().join(dir);
        // Durable state survives the process now; wipe the directory so
        // every run starts from the cold-store behavior the tests assert.
        let _ = std::fs::remove_dir_all(&data_dir);
        ServiceConfig {
            max_concurrent: 2,
            queue_capacity: 4,
            max_session_threads: 2,
            data_dir,
            ..ServiceConfig::default()
        }
    }

    fn spec(algo: AlgorithmSpec, budget: usize) -> SubmitSpec {
        let mut s = SubmitSpec::new(WorkloadSpec::Synth(3), algo, 3, budget);
        s.seed = 7;
        s
    }

    #[test]
    fn submit_run_and_fetch_result() {
        let mgr = SessionManager::start(config("ixtuned-test-basic"));
        let id = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 40)).unwrap();
        assert_eq!(
            mgr.wait_settled(id, Duration::from_secs(30)),
            Some(SessionState::Done)
        );
        let r = mgr.result(id).unwrap();
        assert_eq!(r.calls_used, r.layout_len);
        assert!(r.calls_used <= 40);
        assert_eq!(r.stop_reason, Some(StopReason::BudgetExhausted));
        assert!(r.telemetry.wall_clock_ms > 0.0, "service stamps wall clock");
        let status = mgr.status(id).unwrap();
        assert_eq!(status.state, SessionState::Done);
        assert!(status.wall_clock_ms > 0.0);
        mgr.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let mut cfg = config("ixtuned-test-admission");
        cfg.max_concurrent = 1;
        cfg.queue_capacity = 2;
        let mgr = SessionManager::start(cfg);
        // Two slow sessions fill the table; the third is rejected.
        let a = mgr.submit(spec(AlgorithmSpec::Mcts, 1_000_000)).unwrap();
        let b = mgr.submit(spec(AlgorithmSpec::Mcts, 1_000_000)).unwrap();
        let err = mgr.submit(spec(AlgorithmSpec::Mcts, 10)).unwrap_err();
        assert_eq!(err.code, ErrorCode::QueueFull, "{err}");
        mgr.cancel(a).unwrap();
        mgr.cancel(b).unwrap();
        assert_eq!(
            mgr.wait_settled(a, Duration::from_secs(30)),
            Some(SessionState::Cancelled)
        );
        assert_eq!(
            mgr.wait_settled(b, Duration::from_secs(30)),
            Some(SessionState::Cancelled)
        );
        // Terminal sessions free their slots.
        assert!(mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 10)).is_ok());
        mgr.shutdown();
    }

    #[test]
    fn cancel_queued_session_never_runs() {
        let mut cfg = config("ixtuned-test-cancel-queued");
        cfg.max_concurrent = 1;
        let mgr = SessionManager::start(cfg);
        let blocker = mgr.submit(spec(AlgorithmSpec::Mcts, 1_000_000)).unwrap();
        let queued = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 10)).unwrap();
        mgr.cancel(queued).unwrap();
        assert_eq!(mgr.status(queued).unwrap().state, SessionState::Cancelled);
        assert!(mgr.result(queued).is_err(), "never ran, no result");
        mgr.cancel(blocker).unwrap();
        mgr.shutdown();
    }

    #[test]
    fn metrics_and_trace_cover_completed_sessions() {
        let mgr = SessionManager::start(config("ixtuned-test-metrics"));
        let id = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 40)).unwrap();
        assert_eq!(
            mgr.wait_settled(id, Duration::from_secs(30)),
            Some(SessionState::Done)
        );
        let text = mgr.metrics();
        assert!(text.contains("ixtune_whatif_calls_total"), "{text}");
        assert!(text.contains("ixtune_sessions{state=\"done\"} 1"), "{text}");
        assert!(text.contains("ixtune_queue_depth 0"), "{text}");
        let trace = mgr.trace_json(id).unwrap();
        assert!(trace.starts_with('[') && trace.trim_end().ends_with(']'));
        assert!(trace.contains("greedy-step"), "{trace}");
        assert_eq!(
            mgr.trace_json(999).unwrap_err().code,
            ErrorCode::UnknownSession
        );
        mgr.shutdown();
    }

    #[test]
    fn prepared_workload_cache_evicts_at_capacity() {
        let mut cfg = config("ixtuned-test-prepared-lru");
        cfg.prepared_capacity = 2;
        let mgr = SessionManager::start(cfg);
        for seed in [10u64, 11, 12] {
            let mut s = SubmitSpec::new(
                WorkloadSpec::Synth(seed),
                AlgorithmSpec::VanillaGreedy,
                2,
                10,
            );
            s.seed = 1;
            let id = mgr.submit(s).unwrap();
            assert_eq!(
                mgr.wait_settled(id, Duration::from_secs(30)),
                Some(SessionState::Done)
            );
        }
        let (len, evictions) = mgr
            .state
            .with(|st| (st.workloads.len(), st.workload_evictions));
        assert!(len <= 2, "cache bounded at capacity, got {len}");
        assert!(evictions >= 1, "third workload must evict one");
        mgr.shutdown();
    }

    #[test]
    fn warm_store_serves_the_second_identical_session() {
        let mgr = SessionManager::start(config("ixtuned-test-warm"));
        let submit = || {
            let id = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 40)).unwrap();
            assert_eq!(
                mgr.wait_settled(id, Duration::from_secs(30)),
                Some(SessionState::Done)
            );
            mgr.result(id).unwrap()
        };
        let a = submit();
        assert_eq!(a.telemetry.warm_hits, 0, "store starts cold");
        assert!(mgr.store_stats().entries > 0, "session A fed the store");
        let b = submit();
        assert!(b.telemetry.warm_seeded > 0, "session B admitted warm");
        assert_eq!(
            b.telemetry.warm_hits, b.telemetry.what_if_calls,
            "identical session: every budgeted call warm-served"
        );
        // Identity: the warm path changes who answers, never the answer.
        assert_eq!(a.config, b.config);
        assert_eq!(a.calls_used, b.calls_used);
        assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
        assert_eq!(a.layout_fingerprint, b.layout_fingerprint);
        // Flush empties the store; a third session runs cold again.
        assert!(mgr.store_flush() > 0);
        assert_eq!(mgr.store_stats().entries, 0);
        let c = submit();
        assert_eq!(c.telemetry.warm_hits, 0);
        mgr.shutdown();
    }

    #[test]
    fn restart_recovers_results_and_warm_capital() {
        let cfg = config("ixtuned-test-restart");
        let first = {
            let mgr = SessionManager::start(cfg.clone());
            let id = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 40)).unwrap();
            assert_eq!(
                mgr.wait_settled(id, Duration::from_secs(30)),
                Some(SessionState::Done)
            );
            let r = mgr.result(id).unwrap();
            assert_eq!(r.telemetry.warm_hits, 0, "store starts cold");
            mgr.shutdown();
            r
        };
        // Same data dir, no wipe: the second daemon replays the first's log.
        let mgr = SessionManager::start(cfg);
        let back = mgr.result(0).unwrap();
        assert_eq!(mgr.status(0).unwrap().state, SessionState::Done);
        assert_eq!(back.improvement.to_bits(), first.improvement.to_bits());
        assert_eq!(back.layout_fingerprint, first.layout_fingerprint);
        // The very first session after restart is fully warm-served.
        let id = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 40)).unwrap();
        assert_eq!(id, 1, "recovered next_id continues the sequence");
        assert_eq!(
            mgr.wait_settled(id, Duration::from_secs(30)),
            Some(SessionState::Done)
        );
        let b = mgr.result(id).unwrap();
        assert!(b.telemetry.warm_seeded > 0, "recovered store seeds warm");
        assert_eq!(
            b.telemetry.warm_hits, b.telemetry.what_if_calls,
            "identical restarted session: every budgeted call warm-served"
        );
        assert_eq!(b.improvement.to_bits(), first.improvement.to_bits());
        mgr.shutdown();
    }

    #[test]
    fn restart_keeps_suspended_session_resumable_and_cleans_orphans() {
        let cfg = config("ixtuned-test-restart-suspended");
        {
            let mgr = SessionManager::start(cfg.clone());
            let mut s = spec(AlgorithmSpec::Mcts, 400);
            s.pause_after_calls = Some(50);
            let id = mgr.submit(s).unwrap();
            assert_eq!(
                mgr.wait_settled(id, Duration::from_secs(60)),
                Some(SessionState::Suspended)
            );
            mgr.shutdown();
        }
        // An orphan from a session the log knows nothing about must be
        // swept at recovery; the live checkpoint must survive it.
        let orphan = cfg.checkpoint_dir().join("s-99.ckpt.json");
        std::fs::write(&orphan, "{}").unwrap();
        let mgr = SessionManager::start(cfg.clone());
        assert!(!orphan.exists(), "orphan checkpoint swept");
        assert!(
            cfg.checkpoint_dir().join("s-0.ckpt.json").exists(),
            "live checkpoint kept"
        );
        assert_eq!(mgr.status(0).unwrap().state, SessionState::Suspended);
        mgr.resume(0).unwrap();
        assert_eq!(
            mgr.wait_settled(0, Duration::from_secs(60)),
            Some(SessionState::Done)
        );
        let r = mgr.result(0).unwrap();
        assert!(r.calls_used <= 400);
        // Workers are joined here, so the post-settle file removal is done.
        mgr.shutdown();
        assert!(
            !cfg.checkpoint_dir().join("s-0.ckpt.json").exists(),
            "completion consumes the checkpoint"
        );
    }

    #[test]
    fn suspend_rejects_non_resumable() {
        let mgr = SessionManager::start(config("ixtuned-test-suspend-reject"));
        let id = mgr
            .submit(spec(AlgorithmSpec::TwoPhase, 1_000_000))
            .unwrap();
        // Whether Queued or Running, suspension must be refused for the
        // greedy family.
        let err = mgr.suspend(id).unwrap_err();
        assert_eq!(err.code, ErrorCode::NotResumable, "{err}");
        mgr.cancel(id).unwrap();
        mgr.wait_settled(id, Duration::from_secs(30));
        mgr.shutdown();
    }
}
