//! The session manager: bounded job queue, admission control, worker
//! threads, cooperative interruption, and checkpoint persistence.
//!
//! All shared state lives in one [`Monitor`]; workers block on it for
//! work, clients mutate it through the manager's methods, and every
//! mutation wakes all waiters (see DESIGN.md §6). Concurrency control is
//! structural: exactly `max_concurrent` worker threads exist, so at most
//! that many sessions run at once; admission control bounds the number of
//! admitted-but-not-terminal sessions at `queue_capacity`.

use crate::proto::{
    ErrorCode, ErrorPayload, ResultPayload, SessionState, SessionSummary, StatusPayload,
};
use crate::spec::{Prepared, ServiceConfig, SubmitSpec};
use ixtune_common::sync::Monitor;
use ixtune_core::checkpoint::MctsCheckpoint;
use ixtune_core::mcts::{MctsOutcome, MctsTuner};
use ixtune_core::obs::{publish_cache_hit_ratios, Obs};
use ixtune_core::stop::{Progress, StopReason, StopSignal};
use ixtune_core::tuner::{Tuner, TuningContext, TuningResult};
use ixtune_core::warm::{WarmState, WarmStore, WarmStoreStats};
use ixtune_obs::{MetricsRegistry, TraceRecorder};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One tracked session.
struct SessionRec {
    spec: SubmitSpec,
    state: SessionState,
    /// Armed while the session runs; `cancel`/`suspend` act through it.
    stop: Option<StopSignal>,
    result: Option<ResultPayload>,
    error: Option<String>,
    /// Accumulated across run segments (suspend/resume keeps every
    /// segment's time).
    wall_clock_ms: f64,
    /// Last progress published before the signal was cleared, so the
    /// status of a suspended session still reports its counters.
    progress: Option<Progress>,
    /// Snapshot file of a suspended session.
    snapshot: Option<PathBuf>,
    /// Set when the client asked to resume: the deterministic triggers
    /// from the original spec are spent and must not re-fire.
    resumed: bool,
}

#[derive(Default)]
struct ManagerState {
    sessions: BTreeMap<u64, SessionRec>,
    queue: VecDeque<u64>,
    next_id: u64,
    shutdown: bool,
    /// Prepared workloads shared across sessions, keyed by
    /// `WorkloadSpec::key()` — submitting ten TPC-H sessions builds TPC-H
    /// once. Each entry carries its last-touch tick; the cache is bounded
    /// at `ServiceConfig::prepared_capacity` with least-recently-used
    /// eviction (sessions holding an `Arc` finish unaffected).
    workloads: HashMap<String, (Arc<Prepared>, u64)>,
    /// Monotonic touch tick for the prepared-workload LRU.
    workload_clock: u64,
    /// Prepared workloads evicted by the capacity bound (diagnostics).
    workload_evictions: u64,
}

impl ManagerState {
    /// Fetch a prepared workload and refresh its LRU position.
    fn touch_workload(&mut self, key: &str) -> Option<Arc<Prepared>> {
        self.workload_clock += 1;
        let clock = self.workload_clock;
        self.workloads.get_mut(key).map(|(p, touch)| {
            *touch = clock;
            Arc::clone(p)
        })
    }

    /// Insert a freshly prepared workload, evicting the least recently
    /// used entries beyond `capacity`.
    fn insert_workload(&mut self, key: String, prepared: &Arc<Prepared>, capacity: usize) {
        self.workload_clock += 1;
        let clock = self.workload_clock;
        self.workloads
            .entry(key)
            .or_insert_with(|| (Arc::clone(prepared), clock));
        while self.workloads.len() > capacity.max(1) {
            let victim = self
                .workloads
                .iter()
                .min_by_key(|(_, (_, touch))| *touch)
                .map(|(k, _)| k.clone())
                .expect("over-capacity map is non-empty");
            self.workloads.remove(&victim);
            self.workload_evictions += 1;
        }
    }
}

/// Span capacity of the daemon's trace ring: enough for many sessions'
/// phase-boundary spans; older spans are dropped first (the recorder
/// counts drops).
const TRACE_CAPACITY: usize = 65_536;

/// The daemon's core. Public methods are the verbs of the wire protocol.
pub struct SessionManager {
    cfg: ServiceConfig,
    state: Arc<Monitor<ManagerState>>,
    workers: Vec<JoinHandle<()>>,
    /// Daemon-wide metrics registry; every session reports into it.
    registry: Arc<MetricsRegistry>,
    /// Daemon-wide span ring; sessions are separated by trace scope.
    tracer: Arc<TraceRecorder>,
    /// Daemon-wide warm cost store: cross-session what-if reuse.
    warm: Arc<WarmStore>,
}

impl SessionManager {
    /// Start `max_concurrent` workers over an empty session table.
    pub fn start(cfg: ServiceConfig) -> Self {
        let state = Arc::new(Monitor::new(ManagerState::default()));
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(TraceRecorder::new(TRACE_CAPACITY));
        let warm = Arc::new(WarmStore::new(cfg.warm_store_bytes as usize));
        let workers = (0..cfg.max_concurrent.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let cfg = cfg.clone();
                let registry = Arc::clone(&registry);
                let tracer = Arc::clone(&tracer);
                let warm = Arc::clone(&warm);
                std::thread::spawn(move || worker_loop(&state, &cfg, &registry, &tracer, &warm))
            })
            .collect();
        Self {
            cfg,
            state,
            workers,
            registry,
            tracer,
            warm,
        }
    }

    /// The daemon-wide metrics registry (tests scrape it directly).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Aggregate counters of the warm cost store.
    pub fn store_stats(&self) -> WarmStoreStats {
        self.warm.stats()
    }

    /// Drop every warm store snapshot; returns the entries discarded.
    /// Running sessions keep their checked-out snapshots and finish
    /// unaffected.
    pub fn store_flush(&self) -> usize {
        self.warm.flush()
    }

    /// Admit a session. Fails when the daemon is shutting down or the
    /// queue is at capacity (admission control counts every session that
    /// may still need a worker: queued, running, or suspended).
    pub fn submit(&self, spec: SubmitSpec) -> Result<u64, ErrorPayload> {
        spec.validate()
            .map_err(|m| ErrorPayload::new(ErrorCode::InvalidSpec, m))?;
        let capacity = self.cfg.queue_capacity;
        self.state.update(|st| {
            if st.shutdown {
                return Err(ErrorPayload::new(
                    ErrorCode::ShuttingDown,
                    "daemon is shutting down",
                ));
            }
            let open = st.sessions.values().filter(|r| !r.state.terminal()).count();
            if open >= capacity {
                return Err(ErrorPayload::new(
                    ErrorCode::QueueFull,
                    format!("queue full ({open}/{capacity} sessions open)"),
                ));
            }
            let id = st.next_id;
            st.next_id += 1;
            st.sessions.insert(
                id,
                SessionRec {
                    spec,
                    state: SessionState::Queued,
                    stop: None,
                    result: None,
                    error: None,
                    wall_clock_ms: 0.0,
                    progress: None,
                    snapshot: None,
                    resumed: false,
                },
            );
            st.queue.push_back(id);
            Ok(id)
        })
    }

    /// Cancel a session in any non-terminal state. Queued sessions go
    /// terminal immediately; running ones stop at their next poll (their
    /// best-so-far result is kept); suspended ones go terminal and their
    /// snapshot is deleted.
    pub fn cancel(&self, id: u64) -> Result<(), ErrorPayload> {
        let snapshot = self.state.update(|st| {
            let rec = st
                .sessions
                .get_mut(&id)
                .ok_or_else(|| unknown_session(id))?;
            match rec.state {
                SessionState::Queued => {
                    rec.state = SessionState::Cancelled;
                    st.queue.retain(|&q| q != id);
                    Ok(None)
                }
                SessionState::Running => {
                    if let Some(stop) = &rec.stop {
                        stop.cancel();
                    }
                    Ok(None)
                }
                SessionState::Suspended => {
                    rec.state = SessionState::Cancelled;
                    Ok(rec.snapshot.take())
                }
                s => Err(ErrorPayload::new(
                    ErrorCode::AlreadyTerminal,
                    format!("session {id} is already {s:?}"),
                )),
            }
        })?;
        if let Some(path) = snapshot {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Request suspension of a running, resumable session. The worker
    /// writes the checkpoint at the next episode boundary.
    pub fn suspend(&self, id: u64) -> Result<(), ErrorPayload> {
        self.state.update(|st| {
            let rec = st
                .sessions
                .get_mut(&id)
                .ok_or_else(|| unknown_session(id))?;
            if !rec.spec.algorithm.resumable() {
                return Err(ErrorPayload::new(
                    ErrorCode::NotResumable,
                    format!(
                        "session {id} runs {:?}, which cannot checkpoint — use Cancel",
                        rec.spec.algorithm
                    ),
                ));
            }
            match (&rec.state, &rec.stop) {
                (SessionState::Running, Some(stop)) => {
                    stop.request_suspend();
                    Ok(())
                }
                (s, _) => Err(ErrorPayload::new(
                    ErrorCode::NotRunning,
                    format!("session {id} is {s:?}, not Running"),
                )),
            }
        })
    }

    /// Re-queue a suspended session; it resumes from its snapshot with the
    /// original spec's deterministic triggers cleared.
    pub fn resume(&self, id: u64) -> Result<(), ErrorPayload> {
        self.state.update(|st| {
            let rec = st
                .sessions
                .get_mut(&id)
                .ok_or_else(|| unknown_session(id))?;
            if rec.state != SessionState::Suspended {
                return Err(ErrorPayload::new(
                    ErrorCode::NotSuspended,
                    format!("session {id} is {:?}, not Suspended", rec.state),
                ));
            }
            rec.state = SessionState::Queued;
            rec.resumed = true;
            st.queue.push_back(id);
            Ok(())
        })
    }

    pub fn status(&self, id: u64) -> Result<StatusPayload, ErrorPayload> {
        self.state.with(|st| {
            let rec = st.sessions.get(&id).ok_or_else(|| unknown_session(id))?;
            // Streamed telemetry: the live progress published by the
            // running tuner, or the final result's counters once done.
            let progress = rec
                .stop
                .as_ref()
                .and_then(|s| s.progress())
                .or(rec.progress);
            let (telemetry, best) = match (&rec.result, progress) {
                (Some(r), _) => (r.telemetry, r.improvement),
                (None, Some(p)) => (p.telemetry, p.best_improvement),
                (None, None) => (Default::default(), 0.0),
            };
            Ok(StatusPayload {
                id,
                state: rec.state,
                algorithm: rec.spec.algorithm,
                workload: rec.spec.workload.key(),
                telemetry,
                best_improvement: best,
                wall_clock_ms: rec.wall_clock_ms,
                error: rec.error.clone(),
            })
        })
    }

    pub fn result(&self, id: u64) -> Result<ResultPayload, ErrorPayload> {
        self.state.with(|st| {
            let rec = st.sessions.get(&id).ok_or_else(|| unknown_session(id))?;
            rec.result.clone().ok_or_else(|| {
                ErrorPayload::new(
                    ErrorCode::NoResult,
                    format!("session {id} has no result (state {:?})", rec.state),
                )
            })
        })
    }

    /// Render the Prometheus text exposition. Queue depth, per-state
    /// session counts, and the per-shard cache hit ratios are gauges
    /// computed at scrape time; everything else accumulates live.
    pub fn metrics(&self) -> String {
        let (depth, counts) = self.state.with(|st| {
            let mut counts = [0usize; SESSION_STATES.len()];
            for rec in st.sessions.values() {
                counts[state_index(rec.state)] += 1;
            }
            (st.queue.len(), counts)
        });
        self.registry
            .gauge("ixtune_queue_depth", "Sessions waiting for a worker", &[])
            .set(depth as f64);
        for (i, (_, label)) in SESSION_STATES.iter().enumerate() {
            self.registry
                .gauge(
                    "ixtune_sessions",
                    "Known sessions by lifecycle state",
                    &[("state", label)],
                )
                .set(counts[i] as f64);
        }
        let warm = self.warm.stats();
        let warm_gauges: [(&str, &str, f64); 5] = [
            (
                "ixtune_warm_store_bytes",
                "Estimated resident bytes of the warm cost store",
                warm.bytes as f64,
            ),
            (
                "ixtune_warm_store_entries",
                "Cost entries held by the warm cost store",
                warm.entries as f64,
            ),
            (
                "ixtune_warm_store_workloads",
                "Distinct workload snapshots in the warm cost store",
                warm.workloads as f64,
            ),
            (
                "ixtune_warm_store_epoch",
                "Publication epoch of the warm cost store",
                warm.epoch as f64,
            ),
            (
                "ixtune_warm_store_evictions",
                "Warm store snapshots evicted by the byte bound",
                warm.evictions as f64,
            ),
        ];
        self.registry
            .gauge(
                "ixtune_warm_interned_configs",
                "Distinct interned configurations across warm store snapshots",
                &[],
            )
            .set(warm.interned_configs as f64);
        for (name, help, value) in warm_gauges {
            self.registry.gauge(name, help, &[]).set(value);
        }
        publish_cache_hit_ratios(&self.registry);
        self.registry.render()
    }

    /// Chrome-trace-viewer JSON of the spans recorded for session `id`.
    /// Valid (possibly empty) for any known session — a session that has
    /// not run yet simply has no spans.
    pub fn trace_json(&self, id: u64) -> Result<String, ErrorPayload> {
        let known = self.state.with(|st| st.sessions.contains_key(&id));
        if !known {
            return Err(unknown_session(id));
        }
        Ok(self.tracer.chrome_trace(Some(id)))
    }

    pub fn list(&self) -> Vec<SessionSummary> {
        self.state.with(|st| {
            st.sessions
                .iter()
                .map(|(&id, rec)| SessionSummary {
                    id,
                    state: rec.state,
                    algorithm: rec.spec.algorithm,
                    workload: rec.spec.workload.key(),
                })
                .collect()
        })
    }

    /// Block until session `id` reaches a state where it no longer holds a
    /// worker (terminal or suspended). `None` on timeout.
    pub fn wait_settled(&self, id: u64, timeout: Duration) -> Option<SessionState> {
        let settled = |st: &ManagerState| {
            st.sessions
                .get(&id)
                .is_some_and(|r| r.state.terminal() || r.state == SessionState::Suspended)
        };
        self.state
            .wait_update_timeout(timeout, settled, |st| st.sessions[&id].state)
    }

    pub fn is_shutdown(&self) -> bool {
        self.state.with(|st| st.shutdown)
    }

    /// Stop accepting work and cancel whatever is queued or running.
    pub fn initiate_shutdown(&self) {
        self.state.update(|st| {
            st.shutdown = true;
            st.queue.clear();
            for rec in st.sessions.values_mut() {
                match rec.state {
                    SessionState::Queued => rec.state = SessionState::Cancelled,
                    SessionState::Running => {
                        if let Some(stop) = &rec.stop {
                            stop.cancel();
                        }
                    }
                    _ => {}
                }
            }
        });
    }

    /// Shut down and join every worker.
    pub fn shutdown(mut self) {
        self.initiate_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn unknown_session(id: u64) -> ErrorPayload {
    ErrorPayload::new(ErrorCode::UnknownSession, format!("no session {id}"))
}

/// Session states and their `ixtune_sessions{state=…}` gauge labels, in
/// `state_index` order.
const SESSION_STATES: [(SessionState, &str); 6] = [
    (SessionState::Queued, "queued"),
    (SessionState::Running, "running"),
    (SessionState::Suspended, "suspended"),
    (SessionState::Done, "done"),
    (SessionState::Cancelled, "cancelled"),
    (SessionState::Failed, "failed"),
];

fn state_index(s: SessionState) -> usize {
    SESSION_STATES
        .iter()
        .position(|&(st, _)| st == s)
        .expect("every state is listed")
}

/// One worker: claim the next queued session, run it to a settled state,
/// repeat until shutdown.
fn worker_loop(
    state: &Arc<Monitor<ManagerState>>,
    cfg: &ServiceConfig,
    registry: &Arc<MetricsRegistry>,
    tracer: &Arc<TraceRecorder>,
    warm_store: &Arc<WarmStore>,
) {
    loop {
        // Claim: wait for work or shutdown, atomically marking the
        // session Running with a freshly armed StopSignal.
        let claimed = state.wait_update(
            |st| st.shutdown || !st.queue.is_empty(),
            |st| {
                if st.shutdown {
                    return None;
                }
                while let Some(id) = st.queue.pop_front() {
                    let rec = st.sessions.get_mut(&id)?;
                    // A session cancelled while queued stays terminal.
                    if rec.state != SessionState::Queued {
                        continue;
                    }
                    let mut stop = StopSignal::armed();
                    if let Some(ms) = rec.spec.deadline_ms {
                        stop = stop.with_deadline(Duration::from_millis(ms));
                    }
                    // Deterministic triggers fire once, in the first run
                    // segment only — a resumed session would otherwise
                    // re-suspend immediately (its call count is already
                    // past the trigger).
                    if !rec.resumed {
                        if let Some(n) = rec.spec.cancel_after_calls {
                            stop = stop.cancel_after_calls(n);
                        }
                        if let Some(n) = rec.spec.pause_after_calls {
                            stop = stop.suspend_after_calls(n);
                        }
                    }
                    rec.state = SessionState::Running;
                    rec.stop = Some(stop.clone());
                    return Some((id, rec.spec.clone(), rec.snapshot.clone(), stop));
                }
                None
            },
        );
        let Some((id, spec, snapshot, stop)) = claimed else {
            if state.with(|st| st.shutdown) {
                return;
            }
            continue;
        };

        // Prepare the workload outside the lock (TPC-DS generation is not
        // cheap); insert into the shared LRU-bounded cache afterwards.
        let key = spec.workload.key();
        let prepared = match state.with(|st| st.touch_workload(&key)) {
            Some(p) => Ok(p),
            None => spec.workload.prepare().map(|p| {
                let p = Arc::new(p);
                // Count the per-query plan tables compiled for this
                // workload (0 when `IXTUNE_COMPILED=0` forces the
                // interpreted path).
                registry
                    .counter(
                        "ixtune_compiled_queries_total",
                        "Per-query plan tables compiled at workload preparation",
                        &[],
                    )
                    .add(p.opt.compiled_query_count() as u64);
                state.with(|st| {
                    st.insert_workload(key.clone(), &p, cfg.prepared_capacity);
                });
                p
            }),
        };

        let settled = match prepared {
            Err(e) => Settled::Failed(e),
            Ok(p) => {
                // Check out the workload's warm snapshot at admission:
                // known costs are served without invoking the optimizer,
                // and the calls this session does pay for are ledgered for
                // write-back when it settles.
                let fingerprint = p.opt.content_fingerprint();
                let warm = Arc::new(WarmState::new(warm_store.checkout(
                    &key,
                    fingerprint,
                    ixtune_optimizer::WhatIfOptimizer::num_queries(&p.opt),
                    p.cands.len(),
                )));
                let start = Instant::now();
                let obs = Obs::enabled(Arc::clone(registry), Some(Arc::clone(tracer)), id);
                let warm_run = Arc::clone(&warm);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_session(
                        &p,
                        &spec,
                        snapshot.as_deref(),
                        &stop,
                        cfg,
                        id,
                        obs,
                        warm_run,
                    )
                }));
                // Absorb the ledger whatever the outcome — completed,
                // suspended, failed, or panicked segments all paid for real
                // optimizer calls worth sharing. Costs are pure functions,
                // so partial segments contribute correct entries.
                warm_store.absorb(
                    &key,
                    fingerprint,
                    ixtune_optimizer::WhatIfOptimizer::num_queries(&p.opt),
                    p.cands.len(),
                    warm.drain(),
                );
                let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                match outcome {
                    Ok(s) => {
                        // The wall clock is stamped by the service (the
                        // satellite requirement): each segment's time is
                        // accumulated on the record and mirrored into the
                        // final telemetry below.
                        state.with(|st| {
                            if let Some(rec) = st.sessions.get_mut(&id) {
                                rec.wall_clock_ms += elapsed_ms;
                            }
                        });
                        s
                    }
                    Err(panic) => Settled::Failed(panic_message(panic)),
                }
            }
        };

        let consumed = state.update(|st| {
            let rec = st.sessions.get_mut(&id)?;
            if let Some(p) = rec.stop.as_ref().and_then(|s| s.progress()) {
                rec.progress = Some(p);
            }
            rec.stop = None;
            match settled {
                Settled::Finished(result) => {
                    let mut payload = ResultPayload::from_result(&result);
                    payload.telemetry.wall_clock_ms = rec.wall_clock_ms;
                    rec.state = match result.stop_reason {
                        Some(StopReason::Cancelled) | Some(StopReason::Deadline) => {
                            SessionState::Cancelled
                        }
                        _ => SessionState::Done,
                    };
                    rec.result = Some(payload);
                    rec.snapshot.take()
                }
                Settled::Suspended(path) => {
                    rec.state = SessionState::Suspended;
                    rec.snapshot = Some(path);
                    None
                }
                Settled::Failed(msg) => {
                    rec.state = SessionState::Failed;
                    rec.error = Some(msg);
                    None
                }
            }
        });
        // A resumed session that ran to completion has consumed its
        // snapshot; remove the file outside the lock.
        if let Some(path) = consumed {
            let _ = std::fs::remove_file(path);
        }
    }
}

enum Settled {
    Finished(TuningResult),
    Suspended(PathBuf),
    Failed(String),
}

/// Run one session segment: fresh or resumed, any algorithm.
#[allow(clippy::too_many_arguments)]
fn run_session(
    prepared: &Prepared,
    spec: &SubmitSpec,
    snapshot: Option<&std::path::Path>,
    stop: &StopSignal,
    cfg: &ServiceConfig,
    id: u64,
    obs: Obs,
    warm: Arc<WarmState>,
) -> Settled {
    let ctx = TuningContext::new(&prepared.opt, &prepared.cands)
        .with_obs(obs.clone())
        .with_warm(warm);
    let req = spec.request(cfg.max_session_threads);
    use crate::spec::AlgorithmSpec;
    match spec.algorithm {
        AlgorithmSpec::Mcts => {
            let tuner = MctsTuner::default();
            let outcome = match snapshot {
                Some(path) => {
                    let json = match std::fs::read_to_string(path) {
                        Ok(j) => j,
                        Err(e) => return Settled::Failed(format!("read snapshot: {e}")),
                    };
                    let ckpt = match MctsCheckpoint::from_json(&json) {
                        Ok(c) => c,
                        Err(e) => return Settled::Failed(e),
                    };
                    match tuner.resume(&ctx, &ckpt, stop) {
                        Ok(o) => o,
                        Err(e) => return Settled::Failed(e),
                    }
                }
                None => tuner.run_resumable(&ctx, &req, stop),
            };
            match outcome {
                MctsOutcome::Finished(result, _) => Settled::Finished(result),
                MctsOutcome::Suspended(ckpt) => {
                    let path = cfg.snapshot_dir.join(format!("s-{id}.ckpt.json"));
                    if let Err(e) = std::fs::create_dir_all(&cfg.snapshot_dir) {
                        return Settled::Failed(format!("snapshot dir: {e}"));
                    }
                    let json = ckpt.to_json();
                    let t0 = obs.span_start();
                    let written = std::fs::write(&path, &json);
                    if let Some(t0) = t0 {
                        obs.span_end(
                            t0,
                            "snapshot-write",
                            "checkpoint",
                            vec![("bytes".into(), json.len().to_string())],
                        );
                    }
                    match written {
                        Ok(()) => Settled::Suspended(path),
                        Err(e) => Settled::Failed(format!("write snapshot: {e}")),
                    }
                }
            }
        }
        AlgorithmSpec::VanillaGreedy => {
            Settled::Finished(ixtune_core::VanillaGreedy.tune_with_stop(&ctx, &req, stop))
        }
        AlgorithmSpec::TwoPhase => {
            Settled::Finished(ixtune_core::TwoPhaseGreedy.tune_with_stop(&ctx, &req, stop))
        }
        AlgorithmSpec::AutoAdmin => Settled::Finished(
            ixtune_core::AutoAdminGreedy::default().tune_with_stop(&ctx, &req, stop),
        ),
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("session panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("session panicked: {s}")
    } else {
        "session panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlgorithmSpec, WorkloadSpec};

    fn config(dir: &str) -> ServiceConfig {
        ServiceConfig {
            max_concurrent: 2,
            queue_capacity: 4,
            max_session_threads: 2,
            snapshot_dir: std::env::temp_dir().join(dir),
            ..ServiceConfig::default()
        }
    }

    fn spec(algo: AlgorithmSpec, budget: usize) -> SubmitSpec {
        let mut s = SubmitSpec::new(WorkloadSpec::Synth(3), algo, 3, budget);
        s.seed = 7;
        s
    }

    #[test]
    fn submit_run_and_fetch_result() {
        let mgr = SessionManager::start(config("ixtuned-test-basic"));
        let id = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 40)).unwrap();
        assert_eq!(
            mgr.wait_settled(id, Duration::from_secs(30)),
            Some(SessionState::Done)
        );
        let r = mgr.result(id).unwrap();
        assert_eq!(r.calls_used, r.layout_len);
        assert!(r.calls_used <= 40);
        assert_eq!(r.stop_reason, Some(StopReason::BudgetExhausted));
        assert!(r.telemetry.wall_clock_ms > 0.0, "service stamps wall clock");
        let status = mgr.status(id).unwrap();
        assert_eq!(status.state, SessionState::Done);
        assert!(status.wall_clock_ms > 0.0);
        mgr.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let mut cfg = config("ixtuned-test-admission");
        cfg.max_concurrent = 1;
        cfg.queue_capacity = 2;
        let mgr = SessionManager::start(cfg);
        // Two slow sessions fill the table; the third is rejected.
        let a = mgr.submit(spec(AlgorithmSpec::Mcts, 1_000_000)).unwrap();
        let b = mgr.submit(spec(AlgorithmSpec::Mcts, 1_000_000)).unwrap();
        let err = mgr.submit(spec(AlgorithmSpec::Mcts, 10)).unwrap_err();
        assert_eq!(err.code, ErrorCode::QueueFull, "{err}");
        mgr.cancel(a).unwrap();
        mgr.cancel(b).unwrap();
        assert_eq!(
            mgr.wait_settled(a, Duration::from_secs(30)),
            Some(SessionState::Cancelled)
        );
        assert_eq!(
            mgr.wait_settled(b, Duration::from_secs(30)),
            Some(SessionState::Cancelled)
        );
        // Terminal sessions free their slots.
        assert!(mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 10)).is_ok());
        mgr.shutdown();
    }

    #[test]
    fn cancel_queued_session_never_runs() {
        let mut cfg = config("ixtuned-test-cancel-queued");
        cfg.max_concurrent = 1;
        let mgr = SessionManager::start(cfg);
        let blocker = mgr.submit(spec(AlgorithmSpec::Mcts, 1_000_000)).unwrap();
        let queued = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 10)).unwrap();
        mgr.cancel(queued).unwrap();
        assert_eq!(mgr.status(queued).unwrap().state, SessionState::Cancelled);
        assert!(mgr.result(queued).is_err(), "never ran, no result");
        mgr.cancel(blocker).unwrap();
        mgr.shutdown();
    }

    #[test]
    fn metrics_and_trace_cover_completed_sessions() {
        let mgr = SessionManager::start(config("ixtuned-test-metrics"));
        let id = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 40)).unwrap();
        assert_eq!(
            mgr.wait_settled(id, Duration::from_secs(30)),
            Some(SessionState::Done)
        );
        let text = mgr.metrics();
        assert!(text.contains("ixtune_whatif_calls_total"), "{text}");
        assert!(text.contains("ixtune_sessions{state=\"done\"} 1"), "{text}");
        assert!(text.contains("ixtune_queue_depth 0"), "{text}");
        let trace = mgr.trace_json(id).unwrap();
        assert!(trace.starts_with('[') && trace.trim_end().ends_with(']'));
        assert!(trace.contains("greedy-step"), "{trace}");
        assert_eq!(
            mgr.trace_json(999).unwrap_err().code,
            ErrorCode::UnknownSession
        );
        mgr.shutdown();
    }

    #[test]
    fn prepared_workload_cache_evicts_at_capacity() {
        let mut cfg = config("ixtuned-test-prepared-lru");
        cfg.prepared_capacity = 2;
        let mgr = SessionManager::start(cfg);
        for seed in [10u64, 11, 12] {
            let mut s = SubmitSpec::new(
                WorkloadSpec::Synth(seed),
                AlgorithmSpec::VanillaGreedy,
                2,
                10,
            );
            s.seed = 1;
            let id = mgr.submit(s).unwrap();
            assert_eq!(
                mgr.wait_settled(id, Duration::from_secs(30)),
                Some(SessionState::Done)
            );
        }
        let (len, evictions) = mgr
            .state
            .with(|st| (st.workloads.len(), st.workload_evictions));
        assert!(len <= 2, "cache bounded at capacity, got {len}");
        assert!(evictions >= 1, "third workload must evict one");
        mgr.shutdown();
    }

    #[test]
    fn warm_store_serves_the_second_identical_session() {
        let mgr = SessionManager::start(config("ixtuned-test-warm"));
        let submit = || {
            let id = mgr.submit(spec(AlgorithmSpec::VanillaGreedy, 40)).unwrap();
            assert_eq!(
                mgr.wait_settled(id, Duration::from_secs(30)),
                Some(SessionState::Done)
            );
            mgr.result(id).unwrap()
        };
        let a = submit();
        assert_eq!(a.telemetry.warm_hits, 0, "store starts cold");
        assert!(mgr.store_stats().entries > 0, "session A fed the store");
        let b = submit();
        assert!(b.telemetry.warm_seeded > 0, "session B admitted warm");
        assert_eq!(
            b.telemetry.warm_hits, b.telemetry.what_if_calls,
            "identical session: every budgeted call warm-served"
        );
        // Identity: the warm path changes who answers, never the answer.
        assert_eq!(a.config, b.config);
        assert_eq!(a.calls_used, b.calls_used);
        assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
        assert_eq!(a.layout_fingerprint, b.layout_fingerprint);
        // Flush empties the store; a third session runs cold again.
        assert!(mgr.store_flush() > 0);
        assert_eq!(mgr.store_stats().entries, 0);
        let c = submit();
        assert_eq!(c.telemetry.warm_hits, 0);
        mgr.shutdown();
    }

    #[test]
    fn suspend_rejects_non_resumable() {
        let mgr = SessionManager::start(config("ixtuned-test-suspend-reject"));
        let id = mgr
            .submit(spec(AlgorithmSpec::TwoPhase, 1_000_000))
            .unwrap();
        // Whether Queued or Running, suspension must be refused for the
        // greedy family.
        let err = mgr.suspend(id).unwrap_err();
        assert_eq!(err.code, ErrorCode::NotResumable, "{err}");
        mgr.cancel(id).unwrap();
        mgr.wait_settled(id, Duration::from_secs(30));
        mgr.shutdown();
    }
}
