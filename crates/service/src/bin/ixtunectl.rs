//! CLI client for `ixtuned`.
//!
//! ```text
//! ixtunectl [--addr 127.0.0.1:7311] <command> [args]
//!
//! Commands:
//!   ping
//!   submit --workload W --algorithm A --k K --budget B
//!          [--storage BYTES] [--seed S] [--threads T]
//!          [--deadline-ms MS] [--pause-after N] [--cancel-after N]
//!          [--wait]
//!   status  <id>
//!   result  <id>
//!   cancel  <id>
//!   suspend <id>
//!   resume  <id>
//!   list
//!   top
//!   metrics
//!   trace   <id>
//!   store   stats|flush
//!   persist
//!   shutdown
//! ```

use ixtune_service::{AlgorithmSpec, Client, SubmitSpec, WorkloadSpec};
use std::process::exit;
use std::time::Duration;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7311".to_string();
    if args.len() >= 2 && args[0] == "--addr" {
        addr = args[1].clone();
        args.drain(..2);
    }
    let Some(cmd) = args.first().cloned() else {
        usage();
        exit(2);
    };
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        usage();
        return;
    }
    let rest = &args[1..];
    let client = Client::new(addr);

    // Every daemon-side failure surfaces here as `Err` carrying the typed
    // `ErrorCode` string ("UnknownSession: no session 7"), and the process
    // exits nonzero — scripts can trust the exit status, not just stdout.
    if let Err(e) = run(&cmd, rest, &client) {
        eprintln!("error: {e}");
        if e.starts_with("unknown command") {
            usage();
            exit(2);
        }
        exit(1);
    }
}

/// Dispatch one verb against the daemon. Unit-testable: the binary's
/// stdout is plain progress text, all failures come back as `Err`.
fn run(cmd: &str, rest: &[String], client: &Client) -> Result<(), String> {
    match cmd {
        "ping" => client.ping().map(|()| println!("pong")),
        "submit" => submit(client, rest),
        "status" => client
            .status(id_arg(rest)?)
            .map(|s| println!("{}", serde_json::to_string(&s).unwrap())),
        "result" => client
            .result(id_arg(rest)?)
            .map(|r| println!("{}", serde_json::to_string(&r).unwrap())),
        "cancel" => client.cancel(id_arg(rest)?).map(|()| println!("cancelled")),
        "suspend" => client
            .suspend(id_arg(rest)?)
            .map(|()| println!("suspended")),
        "resume" => client.resume(id_arg(rest)?).map(|()| println!("resumed")),
        "list" => client.list().map(|sessions| {
            for s in sessions {
                println!("{}", serde_json::to_string(&s).unwrap());
            }
        }),
        "top" => top(client),
        "metrics" => client.metrics().map(|text| print!("{text}")),
        "trace" => client.trace(id_arg(rest)?).map(|json| println!("{json}")),
        "store" => store(client, rest),
        "persist" => client
            .persist_stats()
            .map(|s| println!("{}", serde_json::to_string(&s).unwrap())),
        "shutdown" => client.shutdown().map(|()| println!("shutdown requested")),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn submit(client: &Client, rest: &[String]) -> Result<(), String> {
    let mut workload: Option<String> = None;
    let mut algorithm: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut budget: Option<usize> = None;
    let mut storage: Option<u64> = None;
    let mut seed: u64 = 0;
    let mut threads: usize = 1;
    let mut deadline_ms: Option<u64> = None;
    let mut pause_after: Option<usize> = None;
    let mut cancel_after: Option<usize> = None;
    let mut wait = false;

    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--wait" {
            wait = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag.as_str() {
            "--workload" => workload = Some(value.clone()),
            "--algorithm" => algorithm = Some(value.clone()),
            "--k" => k = Some(num(value)?),
            "--budget" => budget = Some(num(value)?),
            "--storage" => storage = Some(num(value)?),
            "--seed" => seed = num(value)?,
            "--threads" => threads = num(value)?,
            "--deadline-ms" => deadline_ms = Some(num(value)?),
            "--pause-after" => pause_after = Some(num(value)?),
            "--cancel-after" => cancel_after = Some(num(value)?),
            other => return Err(format!("unknown submit flag `{other}`")),
        }
    }

    let workload = workload.ok_or("submit requires --workload")?;
    let workload =
        WorkloadSpec::parse(&workload).ok_or_else(|| format!("unknown workload `{workload}`"))?;
    let algorithm = algorithm.ok_or("submit requires --algorithm")?;
    let algorithm = AlgorithmSpec::parse(&algorithm)
        .ok_or_else(|| format!("unknown algorithm `{algorithm}`"))?;
    let mut spec = SubmitSpec::new(
        workload,
        algorithm,
        k.ok_or("submit requires --k")?,
        budget.ok_or("submit requires --budget")?,
    );
    spec.storage_bytes = storage;
    spec.seed = seed;
    spec.session_threads = threads;
    spec.deadline_ms = deadline_ms;
    spec.pause_after_calls = pause_after;
    spec.cancel_after_calls = cancel_after;

    let id = client.submit(spec)?;
    println!("submitted session {id}");
    if wait {
        let status = client.wait_terminal(id, Duration::from_secs(3600))?;
        println!("{}", serde_json::to_string(&status).unwrap());
        // Propagate, don't swallow: a session that settled Failed has no
        // result, and `--wait` must exit nonzero with the typed code
        // (`NoResult: …`) rather than pretend the tuning succeeded.
        let result = client.result(id)?;
        println!("{}", serde_json::to_string(&result).unwrap());
    }
    Ok(())
}

/// One-shot operator view: a session table from `list` + `status`, and
/// the daemon-level counters pulled from the metrics exposition.
fn top(client: &Client) -> Result<(), String> {
    let sessions = client.list()?;
    println!(
        "{:>5}  {:<10} {:<14} {:<12} {:>10} {:>8} {:>10}",
        "ID", "STATE", "ALGORITHM", "WORKLOAD", "CALLS", "BEST%", "WALL_MS"
    );
    for s in &sessions {
        let status = client.status(s.id)?;
        println!(
            "{:>5}  {:<10} {:<14} {:<12} {:>10} {:>8.2} {:>10.1}",
            s.id,
            format!("{:?}", s.state),
            format!("{:?}", s.algorithm),
            s.workload,
            status.telemetry.what_if_calls,
            status.best_improvement * 100.0,
            status.wall_clock_ms,
        );
    }
    let metrics = client.metrics()?;
    let sum_series = |prefix: &str| -> u64 {
        metrics
            .lines()
            .filter(|l| l.starts_with(prefix))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
            .sum::<f64>() as u64
    };
    let total = sum_series("ixtune_whatif_calls_total");
    let warm_hits = sum_series("ixtune_warm_hits_total");
    let warm_seeded = sum_series("ixtune_warm_seeded_total");
    let store_bytes = sum_series("ixtune_warm_store_bytes");
    println!(
        "\n{} sessions · {total} what-if calls served · {warm_hits} warm hits · \
         {warm_seeded} warm-seeded · {store_bytes} store bytes",
        sessions.len()
    );
    Ok(())
}

/// `store stats` / `store flush`: inspect or empty the daemon's warm cost
/// store.
fn store(client: &Client, rest: &[String]) -> Result<(), String> {
    match rest.first().map(String::as_str) {
        Some("stats") => {
            let s = client.store_stats()?;
            println!("{}", serde_json::to_string(&s).unwrap());
            Ok(())
        }
        Some("flush") => {
            let n = client.store_flush()?;
            println!("flushed {n} entries");
            Ok(())
        }
        other => Err(format!("store requires `stats` or `flush`, got {other:?}")),
    }
}

fn id_arg(rest: &[String]) -> Result<u64, String> {
    let raw = rest.first().ok_or("expected a session id")?;
    raw.parse()
        .map_err(|_| format!("invalid session id `{raw}`"))
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("expected a number, got `{s}`"))
}

fn usage() {
    eprintln!(
        "ixtunectl [--addr ADDR] <ping|submit|status|result|cancel|suspend|resume|list|top|metrics|trace|store|persist|shutdown>\n\
         submit: --workload tpch|tpcds|job|reald|realm|synth:<seed> --algorithm mcts|greedy|twophase|autoadmin\n\
         \x20       --k K --budget B [--storage BYTES] [--seed S] [--threads T]\n\
         \x20       [--deadline-ms MS] [--pause-after N] [--cancel-after N] [--wait]\n\
         top:     one-shot session table + daemon counters\n\
         metrics: Prometheus text exposition of the daemon registry\n\
         trace:   <id> — Chrome-trace JSON for one session (load in a trace viewer)\n\
         store:   stats|flush — inspect or empty the warm cost store\n\
         persist: durable store statistics (WAL, generation, recovery)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_service::{Daemon, ServiceConfig};

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn test_config(tag: &str) -> ServiceConfig {
        let data_dir = std::env::temp_dir().join(format!("ixtunectl-test-{tag}"));
        let _ = std::fs::remove_dir_all(&data_dir);
        ServiceConfig {
            max_concurrent: 1,
            queue_capacity: 4,
            max_session_threads: 1,
            data_dir,
            ..ServiceConfig::default()
        }
    }

    /// Every verb against a live daemon: successes return `Ok`, and every
    /// daemon-side failure comes back as `Err` carrying the typed
    /// `ErrorCode` string — which `main` turns into a nonzero exit.
    #[test]
    fn each_verb_reports_daemon_errors_as_err() {
        let daemon = Daemon::start(test_config("verbs"), "127.0.0.1:0").unwrap();
        let client = Client::new(daemon.addr().to_string());

        assert!(run("ping", &[], &client).is_ok());
        assert!(run("list", &[], &client).is_ok());
        assert!(run("top", &[], &client).is_ok());
        assert!(run("metrics", &[], &client).is_ok());
        assert!(run("persist", &[], &client).is_ok());
        assert!(run("store", &strs(&["stats"]), &client).is_ok());
        assert!(run("store", &strs(&["flush"]), &client).is_ok());

        // A full happy-path submit --wait prints the result and is Ok.
        let submit_args = strs(&[
            "--workload",
            "synth:3",
            "--algorithm",
            "greedy",
            "--k",
            "3",
            "--budget",
            "30",
            "--wait",
        ]);
        assert!(run("submit", &submit_args, &client).is_ok());
        assert!(run("status", &strs(&["0"]), &client).is_ok());
        assert!(run("result", &strs(&["0"]), &client).is_ok());
        assert!(run("trace", &strs(&["0"]), &client).is_ok());

        // Daemon-side errors carry the ErrorCode name, never exit 0.
        for (cmd, id, code) in [
            ("status", "99", "UnknownSession"),
            ("result", "99", "UnknownSession"),
            ("cancel", "99", "UnknownSession"),
            ("suspend", "99", "UnknownSession"),
            ("resume", "99", "UnknownSession"),
            ("trace", "99", "UnknownSession"),
            ("cancel", "0", "AlreadyTerminal"),
            ("suspend", "0", "NotResumable"),
            ("resume", "0", "NotSuspended"),
        ] {
            let err = run(cmd, &strs(&[id]), &client).unwrap_err();
            assert!(
                err.starts_with(code),
                "`{cmd} {id}` should fail with {code}, got: {err}"
            );
        }

        // Client-side argument errors are Err too (no silent success).
        assert!(run("status", &[], &client).is_err());
        assert!(run("status", &strs(&["abc"]), &client).is_err());
        assert!(run("store", &strs(&["bogus"]), &client).is_err());
        assert!(run("bogus", &[], &client).is_err());

        assert!(run("shutdown", &[], &client).is_ok());
        daemon.join();
    }

    /// The `--wait` path must propagate a missing result: a session that
    /// settles `Failed` (here via an injected worker panic) makes
    /// `submit --wait` return `Err(NoResult: …)` instead of printing the
    /// terminal status and exiting 0.
    #[test]
    fn submit_wait_propagates_failed_sessions() {
        let mut cfg = test_config("wait-fail");
        cfg.fault_spec = "seed=1;worker.panic=every1".into();
        let daemon = Daemon::start(cfg, "127.0.0.1:0").unwrap();
        let client = Client::new(daemon.addr().to_string());

        let submit_args = strs(&[
            "--workload",
            "synth:3",
            "--algorithm",
            "greedy",
            "--k",
            "3",
            "--budget",
            "30",
            "--wait",
        ]);
        let err = run("submit", &submit_args, &client).unwrap_err();
        assert!(
            err.starts_with("NoResult"),
            "failed session must surface the typed code, got: {err}"
        );

        assert!(run("shutdown", &[], &client).is_ok());
        daemon.join();
    }
}
