//! CLI client for `ixtuned`.
//!
//! ```text
//! ixtunectl [--addr 127.0.0.1:7311] <command> [args]
//!
//! Commands:
//!   ping
//!   submit --workload W --algorithm A --k K --budget B
//!          [--storage BYTES] [--seed S] [--threads T]
//!          [--deadline-ms MS] [--pause-after N] [--cancel-after N]
//!          [--wait]
//!   status  <id>
//!   result  <id>
//!   cancel  <id>
//!   suspend <id>
//!   resume  <id>
//!   list
//!   top
//!   metrics
//!   trace   <id>
//!   store   stats|flush
//!   persist
//!   shutdown
//! ```

use ixtune_service::{AlgorithmSpec, Client, SubmitSpec, WorkloadSpec};
use std::process::exit;
use std::time::Duration;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7311".to_string();
    if args.len() >= 2 && args[0] == "--addr" {
        addr = args[1].clone();
        args.drain(..2);
    }
    let Some(cmd) = args.first().cloned() else {
        usage();
        exit(2);
    };
    let rest = &args[1..];
    let client = Client::new(addr);

    let outcome = match cmd.as_str() {
        "ping" => client.ping().map(|()| println!("pong")),
        "submit" => submit(&client, rest),
        "status" => client
            .status(id_arg(rest))
            .map(|s| println!("{}", serde_json::to_string(&s).unwrap())),
        "result" => client
            .result(id_arg(rest))
            .map(|r| println!("{}", serde_json::to_string(&r).unwrap())),
        "cancel" => client.cancel(id_arg(rest)).map(|()| println!("cancelled")),
        "suspend" => client.suspend(id_arg(rest)).map(|()| println!("suspended")),
        "resume" => client.resume(id_arg(rest)).map(|()| println!("resumed")),
        "list" => client.list().map(|sessions| {
            for s in sessions {
                println!("{}", serde_json::to_string(&s).unwrap());
            }
        }),
        "top" => top(&client),
        "metrics" => client.metrics().map(|text| print!("{text}")),
        "trace" => client.trace(id_arg(rest)).map(|json| println!("{json}")),
        "store" => store(&client, rest),
        "persist" => client
            .persist_stats()
            .map(|s| println!("{}", serde_json::to_string(&s).unwrap())),
        "shutdown" => client.shutdown().map(|()| println!("shutdown requested")),
        "--help" | "-h" | "help" => {
            usage();
            return;
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            exit(2);
        }
    };

    if let Err(e) = outcome {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn submit(client: &Client, rest: &[String]) -> Result<(), String> {
    let mut workload: Option<String> = None;
    let mut algorithm: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut budget: Option<usize> = None;
    let mut storage: Option<u64> = None;
    let mut seed: u64 = 0;
    let mut threads: usize = 1;
    let mut deadline_ms: Option<u64> = None;
    let mut pause_after: Option<usize> = None;
    let mut cancel_after: Option<usize> = None;
    let mut wait = false;

    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--wait" {
            wait = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag.as_str() {
            "--workload" => workload = Some(value.clone()),
            "--algorithm" => algorithm = Some(value.clone()),
            "--k" => k = Some(num(value)?),
            "--budget" => budget = Some(num(value)?),
            "--storage" => storage = Some(num(value)?),
            "--seed" => seed = num(value)?,
            "--threads" => threads = num(value)?,
            "--deadline-ms" => deadline_ms = Some(num(value)?),
            "--pause-after" => pause_after = Some(num(value)?),
            "--cancel-after" => cancel_after = Some(num(value)?),
            other => return Err(format!("unknown submit flag `{other}`")),
        }
    }

    let workload = workload.ok_or("submit requires --workload")?;
    let workload =
        WorkloadSpec::parse(&workload).ok_or_else(|| format!("unknown workload `{workload}`"))?;
    let algorithm = algorithm.ok_or("submit requires --algorithm")?;
    let algorithm = AlgorithmSpec::parse(&algorithm)
        .ok_or_else(|| format!("unknown algorithm `{algorithm}`"))?;
    let mut spec = SubmitSpec::new(
        workload,
        algorithm,
        k.ok_or("submit requires --k")?,
        budget.ok_or("submit requires --budget")?,
    );
    spec.storage_bytes = storage;
    spec.seed = seed;
    spec.session_threads = threads;
    spec.deadline_ms = deadline_ms;
    spec.pause_after_calls = pause_after;
    spec.cancel_after_calls = cancel_after;

    let id = client.submit(spec)?;
    println!("submitted session {id}");
    if wait {
        let status = client.wait_terminal(id, Duration::from_secs(3600))?;
        println!("{}", serde_json::to_string(&status).unwrap());
        if let Ok(result) = client.result(id) {
            println!("{}", serde_json::to_string(&result).unwrap());
        }
    }
    Ok(())
}

/// One-shot operator view: a session table from `list` + `status`, and
/// the daemon-level counters pulled from the metrics exposition.
fn top(client: &Client) -> Result<(), String> {
    let sessions = client.list()?;
    println!(
        "{:>5}  {:<10} {:<14} {:<12} {:>10} {:>8} {:>10}",
        "ID", "STATE", "ALGORITHM", "WORKLOAD", "CALLS", "BEST%", "WALL_MS"
    );
    for s in &sessions {
        let status = client.status(s.id)?;
        println!(
            "{:>5}  {:<10} {:<14} {:<12} {:>10} {:>8.2} {:>10.1}",
            s.id,
            format!("{:?}", s.state),
            format!("{:?}", s.algorithm),
            s.workload,
            status.telemetry.what_if_calls,
            status.best_improvement * 100.0,
            status.wall_clock_ms,
        );
    }
    let metrics = client.metrics()?;
    let sum_series = |prefix: &str| -> u64 {
        metrics
            .lines()
            .filter(|l| l.starts_with(prefix))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
            .sum::<f64>() as u64
    };
    let total = sum_series("ixtune_whatif_calls_total");
    let warm_hits = sum_series("ixtune_warm_hits_total");
    let warm_seeded = sum_series("ixtune_warm_seeded_total");
    let store_bytes = sum_series("ixtune_warm_store_bytes");
    println!(
        "\n{} sessions · {total} what-if calls served · {warm_hits} warm hits · \
         {warm_seeded} warm-seeded · {store_bytes} store bytes",
        sessions.len()
    );
    Ok(())
}

/// `store stats` / `store flush`: inspect or empty the daemon's warm cost
/// store.
fn store(client: &Client, rest: &[String]) -> Result<(), String> {
    match rest.first().map(String::as_str) {
        Some("stats") => {
            let s = client.store_stats()?;
            println!("{}", serde_json::to_string(&s).unwrap());
            Ok(())
        }
        Some("flush") => {
            let n = client.store_flush()?;
            println!("flushed {n} entries");
            Ok(())
        }
        other => Err(format!("store requires `stats` or `flush`, got {other:?}")),
    }
}

fn id_arg(rest: &[String]) -> u64 {
    let Some(raw) = rest.first() else {
        eprintln!("expected a session id");
        exit(2);
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid session id `{raw}`");
        exit(2);
    })
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("expected a number, got `{s}`"))
}

fn usage() {
    eprintln!(
        "ixtunectl [--addr ADDR] <ping|submit|status|result|cancel|suspend|resume|list|top|metrics|trace|store|persist|shutdown>\n\
         submit: --workload tpch|tpcds|job|reald|realm|synth:<seed> --algorithm mcts|greedy|twophase|autoadmin\n\
         \x20       --k K --budget B [--storage BYTES] [--seed S] [--threads T]\n\
         \x20       [--deadline-ms MS] [--pause-after N] [--cancel-after N] [--wait]\n\
         top:     one-shot session table + daemon counters\n\
         metrics: Prometheus text exposition of the daemon registry\n\
         trace:   <id> — Chrome-trace JSON for one session (load in a trace viewer)\n\
         store:   stats|flush — inspect or empty the warm cost store\n\
         persist: durable store statistics (WAL, generation, recovery)"
    );
}
