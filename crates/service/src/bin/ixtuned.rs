//! The tuning daemon. Serves the line-delimited JSON protocol on a
//! localhost TCP port until a `Shutdown` request arrives.
//!
//! ```text
//! ixtuned [--bind 127.0.0.1:7311] [--max-concurrent N] \
//!         [--queue-capacity N] [--max-session-threads N] \
//!         [--data-dir DIR] [--durability always|batch|never] \
//!         [--wal-compact-bytes N] [--warm-store-bytes N] \
//!         [--prepared-capacity N] [--fault-spec SPEC]
//! ```
//!
//! `--fault-spec` (or the `IXTUNE_FAULT_SPEC` environment variable; the
//! flag wins) arms the deterministic fault-injection plane, e.g.
//! `seed=42;whatif.error=p0.05;wire.drop=every7` — see DESIGN.md §11.
//!
//! `--data-dir` is the daemon's durable root: restarting on the same
//! directory replays the write-ahead log, so suspended sessions reappear
//! resumable, completed results stay queryable, and the warm cost store
//! opens with every cost prior sessions paid for.

use ixtune_service::{Daemon, ServiceConfig};
use std::process::exit;

fn main() {
    let mut bind = "127.0.0.1:7311".to_string();
    let mut cfg = ServiceConfig::default();
    if let Ok(spec) = std::env::var("IXTUNE_FAULT_SPEC") {
        cfg.fault_spec = spec;
    }

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                exit(2);
            })
        };
        match flag.as_str() {
            "--bind" => bind = value("--bind"),
            "--max-concurrent" => cfg.max_concurrent = parse(&value("--max-concurrent")),
            "--queue-capacity" => cfg.queue_capacity = parse(&value("--queue-capacity")),
            "--max-session-threads" => {
                cfg.max_session_threads = parse(&value("--max-session-threads"))
            }
            "--data-dir" => cfg.data_dir = value("--data-dir").into(),
            "--durability" => {
                let v = value("--durability");
                cfg.durability = v.parse().unwrap_or_else(|e| {
                    eprintln!("--durability: {e}");
                    exit(2);
                })
            }
            "--wal-compact-bytes" => {
                cfg.wal_compact_bytes = parse(&value("--wal-compact-bytes")) as u64
            }
            "--warm-store-bytes" => {
                cfg.warm_store_bytes = parse(&value("--warm-store-bytes")) as u64
            }
            "--prepared-capacity" => cfg.prepared_capacity = parse(&value("--prepared-capacity")),
            "--fault-spec" => {
                let v = value("--fault-spec");
                if let Err(e) = ixtune_common::fault::FaultPlan::parse(&v) {
                    eprintln!("--fault-spec: {e}");
                    exit(2);
                }
                cfg.fault_spec = v;
            }
            "--help" | "-h" => {
                println!(
                    "ixtuned [--bind ADDR] [--max-concurrent N] [--queue-capacity N] \
                     [--max-session-threads N] [--data-dir DIR] \
                     [--durability always|batch|never] [--wal-compact-bytes N] \
                     [--warm-store-bytes N] [--prepared-capacity N] \
                     [--fault-spec SPEC]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                exit(2);
            }
        }
    }

    match Daemon::start(cfg, &bind) {
        Ok(daemon) => {
            println!("ixtuned listening on {}", daemon.addr());
            daemon.join();
            println!("ixtuned stopped");
        }
        Err(e) => {
            eprintln!("failed to bind {bind}: {e}");
            exit(1);
        }
    }
}

fn parse(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got `{s}`");
        exit(2);
    })
}
