//! The tuning daemon. Serves the line-delimited JSON protocol on a
//! localhost TCP port until a `Shutdown` request arrives.
//!
//! ```text
//! ixtuned [--bind 127.0.0.1:7311] [--max-concurrent N] \
//!         [--queue-capacity N] [--max-session-threads N] \
//!         [--snapshot-dir DIR] [--warm-store-bytes N] \
//!         [--prepared-capacity N]
//! ```

use ixtune_service::{Daemon, ServiceConfig};
use std::process::exit;

fn main() {
    let mut bind = "127.0.0.1:7311".to_string();
    let mut cfg = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                exit(2);
            })
        };
        match flag.as_str() {
            "--bind" => bind = value("--bind"),
            "--max-concurrent" => cfg.max_concurrent = parse(&value("--max-concurrent")),
            "--queue-capacity" => cfg.queue_capacity = parse(&value("--queue-capacity")),
            "--max-session-threads" => {
                cfg.max_session_threads = parse(&value("--max-session-threads"))
            }
            "--snapshot-dir" => cfg.snapshot_dir = value("--snapshot-dir").into(),
            "--warm-store-bytes" => {
                cfg.warm_store_bytes = parse(&value("--warm-store-bytes")) as u64
            }
            "--prepared-capacity" => cfg.prepared_capacity = parse(&value("--prepared-capacity")),
            "--help" | "-h" => {
                println!(
                    "ixtuned [--bind ADDR] [--max-concurrent N] [--queue-capacity N] \
                     [--max-session-threads N] [--snapshot-dir DIR] \
                     [--warm-store-bytes N] [--prepared-capacity N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                exit(2);
            }
        }
    }

    match Daemon::start(cfg, &bind) {
        Ok(daemon) => {
            println!("ixtuned listening on {}", daemon.addr());
            daemon.join();
            println!("ixtuned stopped");
        }
        Err(e) => {
            eprintln!("failed to bind {bind}: {e}");
            exit(1);
        }
    }
}

fn parse(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got `{s}`");
        exit(2);
    })
}
