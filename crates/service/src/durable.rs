//! Glue between the session manager and the `ixtune-persist` durability
//! layer.
//!
//! The persist crate is std-only and speaks primitives; this module owns
//! the translation in both directions — warm-store ledgers and session
//! transitions become [`Record`]s on the way down, a recovered
//! [`PersistState`] becomes warm-store absorptions on the way up — and
//! mirrors every durable operation into the daemon's metrics registry
//! (`ixtune_persist_*`) and trace ring (`recovery`/`compaction`/
//! `wal-append` spans).
//!
//! Durability failures (disk full, permission lost) are surfaced as a
//! counter and stderr line but never take the daemon down: tuning keeps
//! its in-memory correctness, only restart recovery degrades.

use ixtune_common::fault::FaultPlan;
use ixtune_common::{IndexSet, QueryId};
use ixtune_core::warm::WarmStore;
use ixtune_obs::{Counter, Gauge, MetricsRegistry, TraceRecorder};
use ixtune_persist::{
    CompactOutcome, Durability, Persist, PersistState, PersistStats, Record, WarmBatch, WarmEntry,
};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Trace scope for daemon-level persist spans. Session spans use the
/// session id as their scope; `u64::MAX` can never collide with one
/// (admission control caps live sessions far below it).
pub const DAEMON_SCOPE: u64 = u64::MAX;

/// Bucket bounds for the recovery-duration histogram, in milliseconds.
const RECOVERY_BOUNDS: [f64; 8] = [1.0, 5.0, 25.0, 100.0, 500.0, 2_500.0, 10_000.0, 60_000.0];

/// Attempts per durable operation before the degradation ladder engages.
const IO_ATTEMPTS: u32 = 3;

/// Deterministic exponential backoff with seeded jitter: attempt `a`
/// (1-based) sleeps `2^(a-1)` ms plus up to one extra millisecond derived
/// from the seed — reproducible under a fixed fault plan, and never
/// synchronized across daemons running with different seeds.
fn backoff(seed: u64, attempt: u32) -> Duration {
    let base_us = 1_000u64 << u64::from((attempt - 1).min(6));
    let mut z = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(attempt) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    Duration::from_micros(base_us + z % 1_000)
}

/// The manager's handle on the durable store: append + compact with
/// observability, opened once at daemon start.
pub struct DurableLog {
    persist: Persist,
    tracer: Arc<TraceRecorder>,
    records_total: Arc<Counter>,
    fsyncs_total: Arc<Counter>,
    torn_tails_total: Arc<Counter>,
    io_errors_total: Arc<Counter>,
    compactions_total: Arc<Counter>,
    wal_bytes: Arc<Gauge>,
    degraded_gauge: Arc<Gauge>,
    demoted: AtomicBool,
    backoff_seed: u64,
}

impl DurableLog {
    /// Open (or create) the store under `data_dir`, recover, and publish
    /// the recovery metrics/span. Returns the recovered state for the
    /// manager to import.
    pub fn open(
        data_dir: &Path,
        durability: Durability,
        registry: &Arc<MetricsRegistry>,
        tracer: &Arc<TraceRecorder>,
        faults: &FaultPlan,
    ) -> io::Result<(Self, PersistState)> {
        let t0 = tracer.now_us();
        let (persist, state, info) = Persist::open(data_dir, durability)?;
        if faults.enabled() {
            let plan = faults.clone();
            persist.set_fault_hook(Arc::new(move |site| plan.fire(site)));
        }

        let records_total = registry.counter(
            "ixtune_persist_records_total",
            "WAL records appended since daemon start",
            &[],
        );
        let fsyncs_total = registry.counter(
            "ixtune_persist_fsyncs_total",
            "fsync calls issued by the persist layer",
            &[],
        );
        let torn_tails_total = registry.counter(
            "ixtune_persist_torn_tails_total",
            "Torn WAL tails truncated during recovery",
            &[],
        );
        let io_errors_total = registry.counter(
            "ixtune_persist_io_errors_total",
            "Durability operations that failed (state kept in memory only)",
            &[],
        );
        let compactions_total = registry.counter(
            "ixtune_persist_compactions_total",
            "Snapshot compactions since daemon start",
            &[],
        );
        let wal_bytes = registry.gauge(
            "ixtune_persist_wal_bytes",
            "Live write-ahead log size in bytes",
            &[],
        );
        let degraded_gauge = registry.gauge(
            "ixtune_persist_degraded",
            "1 once persistent IO failure demoted durability to in-memory only",
            &[],
        );
        registry
            .histogram(
                "ixtune_persist_recovery_duration_ms",
                "Wall-clock recovery duration at daemon start, in milliseconds",
                &[],
                &RECOVERY_BOUNDS,
            )
            .observe(info.duration_ms);
        if info.torn_tail {
            torn_tails_total.inc();
        }
        wal_bytes.set(persist.stats().wal_bytes as f64);
        tracer.complete(
            "recovery",
            "persist",
            DAEMON_SCOPE,
            t0,
            vec![
                ("generation".into(), info.generation.to_string()),
                ("snapshot_loaded".into(), info.snapshot_loaded.to_string()),
                ("wal_records".into(), info.wal_records.to_string()),
                ("torn_bytes".into(), info.torn_bytes.to_string()),
                ("sessions".into(), state.sessions.len().to_string()),
                ("warm_entries".into(), state.warm_entries().to_string()),
            ],
        );

        Ok((
            Self {
                persist,
                tracer: Arc::clone(tracer),
                records_total,
                fsyncs_total,
                torn_tails_total,
                io_errors_total,
                compactions_total,
                wal_bytes,
                degraded_gauge,
                demoted: AtomicBool::new(false),
                backoff_seed: faults.seed(),
            },
            state,
        ))
    }

    /// Whether the degradation ladder has demoted durability to
    /// in-memory only.
    pub fn degraded(&self) -> bool {
        self.demoted.load(Ordering::SeqCst)
    }

    /// The degradation ladder's last rung: persistent IO failure stops
    /// the store from issuing fsyncs and the log from retrying. Tuning
    /// keeps its in-memory correctness; restart recovery is forfeited
    /// until an operator intervenes. Idempotent.
    fn demote(&self, err: &io::Error) {
        if self.demoted.swap(true, Ordering::SeqCst) {
            return;
        }
        self.persist.set_durability(Durability::Never);
        self.degraded_gauge.set(1.0);
        let t0 = self.tracer.now_us();
        self.tracer.complete(
            "persist-degraded",
            "persist",
            DAEMON_SCOPE,
            t0,
            vec![("error".into(), err.to_string())],
        );
        eprintln!("ixtuned: persistence degraded to in-memory only: {err}");
    }

    /// Append one record, mirroring the outcome into metrics and a
    /// `wal-append` span. Errors are counted, retried with deterministic
    /// backoff, and finally absorbed by the degradation ladder — never
    /// propagated. A retry after a failed *fsync* may re-append the record;
    /// replay folds are idempotent so duplicates are harmless.
    pub fn append(&self, rec: &Record) {
        let t0 = self.tracer.now_us();
        let max = if self.degraded() { 1 } else { IO_ATTEMPTS };
        let mut attempt = 0u32;
        loop {
            match self.persist.append(rec) {
                Ok(out) => {
                    self.records_total.inc();
                    if out.synced {
                        self.fsyncs_total.inc();
                    }
                    self.wal_bytes.set(out.wal_bytes as f64);
                    self.tracer.complete(
                        "wal-append",
                        "persist",
                        DAEMON_SCOPE,
                        t0,
                        vec![
                            ("bytes".into(), out.bytes.to_string()),
                            ("synced".into(), out.synced.to_string()),
                        ],
                    );
                    return;
                }
                Err(e) => {
                    self.io_errors_total.inc();
                    attempt += 1;
                    if attempt >= max {
                        eprintln!("ixtuned: WAL append failed after {attempt} attempt(s): {e}");
                        self.demote(&e);
                        return;
                    }
                    std::thread::sleep(backoff(self.backoff_seed, attempt));
                }
            }
        }
    }

    /// Compact when the WAL has outgrown `threshold` bytes. Called after a
    /// session settles — off every tuning hot path. An aborted compaction
    /// keeps the previous generation intact, so retrying is always safe.
    pub fn maybe_compact(&self, threshold: u64) -> Option<CompactOutcome> {
        if self.persist.stats().wal_bytes <= threshold {
            return None;
        }
        let t0 = self.tracer.now_us();
        let max = if self.degraded() { 1 } else { IO_ATTEMPTS };
        let mut attempt = 0u32;
        loop {
            match self.persist.compact() {
                Ok(out) => {
                    self.compactions_total.inc();
                    self.fsyncs_total.inc();
                    self.wal_bytes.set(0.0);
                    self.tracer.complete(
                        "compaction",
                        "persist",
                        DAEMON_SCOPE,
                        t0,
                        vec![
                            ("generation".into(), out.generation.to_string()),
                            ("snapshot_bytes".into(), out.snapshot_bytes.to_string()),
                            ("pruned_files".into(), out.pruned_files.to_string()),
                        ],
                    );
                    return Some(out);
                }
                Err(e) => {
                    self.io_errors_total.inc();
                    attempt += 1;
                    if attempt >= max {
                        eprintln!("ixtuned: compaction failed after {attempt} attempt(s): {e}");
                        self.demote(&e);
                        return None;
                    }
                    std::thread::sleep(backoff(self.backoff_seed, attempt));
                }
            }
        }
    }

    /// Flush any unsynced batch (clean shutdown).
    pub fn sync(&self) {
        if let Err(e) = self.persist.sync() {
            self.io_errors_total.inc();
            eprintln!("ixtuned: WAL sync failed: {e}");
        }
    }

    /// Point-in-time store statistics for `ixtunectl persist`.
    pub fn stats(&self) -> PersistStats {
        self.persist.stats()
    }

    /// Torn tails observed (recovery); test/assertion convenience.
    pub fn torn_tails(&self) -> u64 {
        self.torn_tails_total.get()
    }
}

/// Build the WAL record for one settled session's warm contribution.
/// Costs are captured as exact bit patterns; replay through
/// [`import_warm`] reconstructs values bit-identically.
pub fn warm_batch_record(
    key: &str,
    fingerprint: u64,
    num_queries: usize,
    universe: usize,
    ledger: &[(QueryId, IndexSet, f64)],
) -> Record {
    Record::WarmBatch(WarmBatch {
        key: key.to_string(),
        fingerprint,
        num_queries: num_queries as u32,
        universe: universe as u32,
        entries: ledger
            .iter()
            .map(|(q, config, cost)| WarmEntry {
                query: q.index() as u32,
                blocks: config.as_blocks().to_vec(),
                cost_bits: cost.to_bits(),
            })
            .collect(),
    })
}

/// Re-absorb recovered warm tables into the live store. Rows that fail
/// structural validation (foreign block counts, out-of-range queries) are
/// poisoned: each is dropped individually and counted, so a partially
/// valid table still contributes. Returns `(imported, dropped)` entry
/// counts.
pub fn import_warm(state: &PersistState, store: &WarmStore) -> (usize, usize) {
    let mut imported = 0;
    let mut dropped = 0;
    for ((key, fingerprint), table) in &state.warm {
        let num_queries = table.num_queries as usize;
        let universe = table.universe as usize;
        let ledger: Vec<(QueryId, IndexSet, f64)> = table
            .entries
            .iter()
            .filter_map(|e| {
                let row = ((e.query as usize) < num_queries)
                    .then(|| IndexSet::from_blocks(universe, e.blocks.clone()))
                    .flatten()
                    .map(|set| (QueryId::new(e.query), set, f64::from_bits(e.cost_bits)));
                if row.is_none() {
                    dropped += 1;
                }
                row
            })
            .collect();
        imported += store.absorb(key, *fingerprint, num_queries, universe, ledger);
    }
    (imported, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ixtuned-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> (DurableLog, PersistState, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(TraceRecorder::new(256));
        let (log, state) = DurableLog::open(
            dir,
            Durability::Always,
            &registry,
            &tracer,
            &FaultPlan::none(),
        )
        .unwrap();
        (log, state, registry)
    }

    /// A crash mid-append leaves a torn WAL tail; reopening must bump
    /// `ixtune_persist_torn_tails_total` (visible to operators through the
    /// exposition) while recovering the valid prefix.
    #[test]
    fn torn_tail_bumps_the_recovery_counter() {
        let dir = scratch("torn");
        {
            let (log, _, _) = open(&dir);
            log.append(&Record::SessionSubmitted {
                id: 0,
                spec_json: "{}".into(),
            });
            assert_eq!(log.torn_tails(), 0, "clean open reports no tears");
        }
        // Simulate a crash mid-frame: half a header after the good record.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal-0.log"))
            .unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        drop(f);

        let (log, state, registry) = open(&dir);
        assert_eq!(log.torn_tails(), 1);
        assert_eq!(state.sessions.len(), 1, "valid prefix survives the tear");
        let text = registry.render();
        assert!(
            text.contains("ixtune_persist_torn_tails_total 1"),
            "torn counter missing from exposition:\n{text}"
        );
        // The append path keeps working and reports through metrics too.
        log.append(&Record::SessionRunning { id: 0 });
        assert!(registry.render().contains("ixtune_persist_records_total 1"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Recovered warm tables re-absorb with costs bit-identical, and rows
    /// that fail structural validation are dropped individually rather than
    /// poisoning the table.
    #[test]
    fn import_warm_revalidates_rows_individually() {
        let mut state = PersistState::default();
        state.apply(Record::WarmBatch(WarmBatch {
            key: "synth:1|mcts".into(),
            fingerprint: 42,
            num_queries: 4,
            universe: 8,
            entries: vec![
                WarmEntry {
                    query: 0,
                    blocks: vec![0b101],
                    cost_bits: 1.5f64.to_bits(),
                },
                // Out-of-range query: dropped.
                WarmEntry {
                    query: 9,
                    blocks: vec![0b1],
                    cost_bits: 2.0f64.to_bits(),
                },
                // Wrong block count for universe=8: dropped.
                WarmEntry {
                    query: 1,
                    blocks: vec![1, 2, 3],
                    cost_bits: 3.0f64.to_bits(),
                },
            ],
        }));
        let store = WarmStore::new(1 << 20);
        assert_eq!(import_warm(&state, &store), (1, 2));
        let set = IndexSet::from_blocks(8, vec![0b101]).unwrap();
        let snap = store.checkout("synth:1|mcts", 42, 4, 8);
        let cost = snap.get(QueryId::new(0), &set).expect("imported row");
        assert_eq!(cost.to_bits(), 1.5f64.to_bits());
    }

    /// Under a fault plan that fails every append, the retry ladder runs
    /// out and demotes durability to in-memory only — once. The daemon
    /// keeps serving; the degraded gauge flips to 1.
    #[test]
    fn persistent_append_failure_engages_the_degradation_ladder() {
        let dir = scratch("ladder");
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(TraceRecorder::new(256));
        let plan = FaultPlan::parse("seed=7;persist.append=p1").unwrap();
        let (log, _) =
            DurableLog::open(&dir, Durability::Always, &registry, &tracer, &plan).unwrap();
        assert!(!log.degraded());
        log.append(&Record::SessionSubmitted {
            id: 0,
            spec_json: "{}".into(),
        });
        assert!(log.degraded(), "three failed attempts demote the store");
        assert_eq!(log.stats().durability, Durability::Never);
        let text = registry.render();
        assert!(
            text.contains("ixtune_persist_degraded 1"),
            "degraded gauge missing from exposition:\n{text}"
        );
        // Demoted stores stop retrying: exactly one more io error per call.
        let before = plan.injected(ixtune_persist::fault_site::APPEND);
        log.append(&Record::SessionRunning { id: 0 });
        assert_eq!(
            plan.injected(ixtune_persist::fault_site::APPEND),
            before + 1
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
