//! Client-side helper used by `ixtunectl` and the e2e tests: one TCP
//! connection per call, simple poll-based waiting.

use crate::proto::{
    read_line, write_line, PersistStatsPayload, Request, Response, ResultPayload, SessionSummary,
    StatusPayload, StoreStatsPayload,
};
use crate::spec::SubmitSpec;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

pub struct Client {
    addr: String,
}

impl Client {
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    /// One request/response exchange on a fresh connection.
    pub fn call(&self, req: &Request) -> Result<Response, String> {
        let stream = TcpStream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| format!("socket: {e}"))?;
        write_line(&mut writer, req).map_err(|e| format!("send: {e}"))?;
        let mut reader = BufReader::new(stream);
        match read_line::<Response>(&mut reader) {
            Ok(Some(Ok(resp))) => Ok(resp),
            Ok(Some(Err(e))) => Err(e),
            Ok(None) => Err("daemon closed the connection".into()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    fn expect_ok(&self, req: &Request) -> Result<(), String> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    pub fn ping(&self) -> Result<(), String> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    pub fn submit(&self, spec: SubmitSpec) -> Result<u64, String> {
        match self.call(&Request::Submit(spec))? {
            Response::Submitted(id) => Ok(id),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    pub fn status(&self, id: u64) -> Result<StatusPayload, String> {
        match self.call(&Request::Status(id))? {
            Response::Status(s) => Ok(s),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    pub fn result(&self, id: u64) -> Result<ResultPayload, String> {
        match self.call(&Request::Result(id))? {
            Response::Result(r) => Ok(r),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    pub fn cancel(&self, id: u64) -> Result<(), String> {
        self.expect_ok(&Request::Cancel(id))
    }

    pub fn suspend(&self, id: u64) -> Result<(), String> {
        self.expect_ok(&Request::Suspend(id))
    }

    pub fn resume(&self, id: u64) -> Result<(), String> {
        self.expect_ok(&Request::Resume(id))
    }

    pub fn list(&self) -> Result<Vec<SessionSummary>, String> {
        match self.call(&Request::List)? {
            Response::Sessions(s) => Ok(s),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Prometheus text exposition of the daemon's metrics registry.
    pub fn metrics(&self) -> Result<String, String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Chrome-trace-viewer JSON of one session's recorded spans.
    pub fn trace(&self, id: u64) -> Result<String, String> {
        match self.call(&Request::Trace(id))? {
            Response::Trace(json) => Ok(json),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Aggregate counters of the daemon's warm cost store.
    pub fn store_stats(&self) -> Result<StoreStatsPayload, String> {
        match self.call(&Request::StoreStats)? {
            Response::StoreStats(s) => Ok(s),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Statistics of the daemon's durable store (WAL, generation, last
    /// recovery outcome).
    pub fn persist_stats(&self) -> Result<PersistStatsPayload, String> {
        match self.call(&Request::PersistStats)? {
            Response::PersistStats(s) => Ok(s),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Drop every warm store snapshot; returns the entries discarded.
    pub fn store_flush(&self) -> Result<usize, String> {
        match self.call(&Request::StoreFlush)? {
            Response::Flushed(n) => Ok(n),
            Response::Error(e) => Err(e.to_string()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    pub fn shutdown(&self) -> Result<(), String> {
        self.expect_ok(&Request::Shutdown)
    }

    /// Poll until the session satisfies `done`, or the timeout passes.
    pub fn wait_until(
        &self,
        id: u64,
        timeout: Duration,
        mut done: impl FnMut(&StatusPayload) -> bool,
    ) -> Result<StatusPayload, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if done(&status) {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "timeout waiting on session {id} (state {:?})",
                    status.state
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Wait until the session is terminal (Done/Cancelled/Failed).
    pub fn wait_terminal(&self, id: u64, timeout: Duration) -> Result<StatusPayload, String> {
        self.wait_until(id, timeout, |s| s.state.terminal())
    }
}
