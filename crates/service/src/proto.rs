//! Line-delimited JSON protocol between `ixtunectl` and `ixtuned`.
//!
//! One request per line, one response per line, externally tagged enums
//! (serde's JSON default): `{"Submit":{...}}`, `"Pong"`, `{"Error":"..."}`.
//! The framing is trivially inspectable with `nc` and needs no length
//! prefixes; newlines cannot appear inside a JSON document encoded by
//! `serde_json::to_string`.

use crate::spec::{AlgorithmSpec, SubmitSpec};
use ixtune_core::budget::SessionTelemetry;
use ixtune_core::stop::StopReason;
use ixtune_core::tuner::TuningResult;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// What a client can ask the daemon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a new tuning session; answered with `Submitted(id)` or
    /// `Error` when the queue is full (admission control).
    Submit(SubmitSpec),
    /// Per-session state plus streamed telemetry.
    Status(u64),
    /// The final result of a terminal session.
    Result(u64),
    /// Stop a session; it keeps its best-so-far result.
    Cancel(u64),
    /// Checkpoint a running (resumable) session and park it.
    Suspend(u64),
    /// Re-queue a suspended session from its snapshot.
    Resume(u64),
    /// Summaries of every known session.
    List,
    /// Prometheus text exposition of the daemon's metrics registry.
    Metrics,
    /// Chrome-trace-viewer JSON of one session's recorded spans.
    Trace(u64),
    /// Aggregate counters of the daemon's warm cost store.
    StoreStats,
    /// Drop every warm store snapshot; answered with `Flushed(entries)`.
    /// Running sessions keep their checked-out snapshots.
    StoreFlush,
    /// Statistics of the durable store (WAL size, generation, last
    /// recovery outcome).
    PersistStats,
    /// Stop accepting work, cancel running sessions, and exit.
    Shutdown,
}

/// What the daemon answers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Pong,
    Submitted(u64),
    Status(StatusPayload),
    Result(ResultPayload),
    Sessions(Vec<SessionSummary>),
    /// Prometheus text exposition (answer to `Metrics`).
    Metrics(String),
    /// Chrome-trace JSON for one session (answer to `Trace`).
    Trace(String),
    /// Warm store counters (answer to `StoreStats`).
    StoreStats(StoreStatsPayload),
    /// Entries discarded by `StoreFlush`.
    Flushed(usize),
    /// Durable store statistics (answer to `PersistStats`).
    PersistStats(PersistStatsPayload),
    /// Generic success for cancel/suspend/resume/shutdown.
    Ok,
    Error(ErrorPayload),
}

/// Wire form of the warm store's aggregate counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStatsPayload {
    /// Distinct `(workload, fingerprint)` snapshots held.
    pub workloads: usize,
    /// Total `(query, config) → cost` entries across snapshots.
    pub entries: usize,
    /// Distinct interned configurations across snapshots.
    pub interned_configs: usize,
    /// Estimated resident bytes.
    pub bytes: usize,
    /// Publication epoch (bumped per absorbed snapshot).
    pub epoch: u64,
    /// Snapshots evicted by the byte bound since daemon start.
    pub evictions: u64,
    /// Configured byte bound.
    pub max_bytes: usize,
}

impl From<ixtune_core::warm::WarmStoreStats> for StoreStatsPayload {
    fn from(s: ixtune_core::warm::WarmStoreStats) -> Self {
        Self {
            workloads: s.workloads,
            entries: s.entries,
            interned_configs: s.interned_configs,
            bytes: s.bytes,
            epoch: s.epoch,
            evictions: s.evictions,
            max_bytes: s.max_bytes,
        }
    }
}

/// Wire form of the durable store's statistics: live WAL/snapshot
/// counters plus the outcome of the recovery the daemon performed at
/// start.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PersistStatsPayload {
    /// Current snapshot/WAL generation.
    pub generation: u64,
    /// Live write-ahead log size in bytes.
    pub wal_bytes: u64,
    /// Records appended since daemon start.
    pub records_total: u64,
    /// fsyncs issued since daemon start.
    pub fsyncs_total: u64,
    /// Snapshot compactions since daemon start.
    pub compactions_total: u64,
    /// Configured policy: `"always"`, `"batch"`, or `"never"`.
    pub durability: String,
    /// Whether start-up recovery loaded a snapshot.
    pub recovered_snapshot: bool,
    /// WAL records replayed at start-up.
    pub recovered_wal_records: u64,
    /// Whether recovery truncated a torn WAL tail.
    pub recovery_torn_tail: bool,
    /// Bytes dropped by the torn-tail truncation.
    pub recovery_torn_bytes: u64,
    /// Wall-clock recovery duration, milliseconds.
    pub recovery_ms: f64,
}

impl From<ixtune_persist::PersistStats> for PersistStatsPayload {
    fn from(s: ixtune_persist::PersistStats) -> Self {
        Self {
            generation: s.generation,
            wal_bytes: s.wal_bytes,
            records_total: s.records_total,
            fsyncs_total: s.fsyncs_total,
            compactions_total: s.compactions_total,
            durability: s.durability.as_str().to_string(),
            recovered_snapshot: s.recovery.snapshot_loaded,
            recovered_wal_records: s.recovery.wal_records,
            recovery_torn_tail: s.recovery.torn_tail,
            recovery_torn_bytes: s.recovery.torn_bytes,
            recovery_ms: s.recovery.duration_ms,
        }
    }
}

/// Closed set of daemon error conditions. Serialized as the stable
/// variant name (`"QueueFull"`, …) so clients and tests dispatch on the
/// code instead of matching message text; the human-readable detail rides
/// along in [`ErrorPayload::message`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The daemon is draining and admits no new work.
    ShuttingDown,
    /// Admission control: too many open sessions.
    QueueFull,
    /// No session with the given id.
    UnknownSession,
    /// The submitted spec failed validation.
    InvalidSpec,
    /// Suspend requested for an algorithm that cannot checkpoint.
    NotResumable,
    /// The verb requires a Running session.
    NotRunning,
    /// Resume requires a Suspended session.
    NotSuspended,
    /// The session is already terminal.
    AlreadyTerminal,
    /// The session has no result (yet, or ever).
    NoResult,
    /// The request line could not be parsed.
    BadRequest,
}

/// A typed error on the wire: a machine-readable code plus detail text.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ErrorPayload {
    pub code: ErrorCode,
    pub message: String,
}

impl ErrorPayload {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ErrorPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Lifecycle of a session inside the daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is tuning it.
    Running,
    /// Checkpointed to disk; `Resume` re-queues it.
    Suspended,
    /// Finished on its own (budget exhausted or converged).
    Done,
    /// Stopped by `Cancel` (or a deadline); best-so-far result retained.
    Cancelled,
    /// The worker panicked or the session could not be constructed.
    Failed,
}

impl SessionState {
    /// Whether the session can never run again.
    pub fn terminal(self) -> bool {
        matches!(self, Self::Done | Self::Cancelled | Self::Failed)
    }
}

/// Live view of one session.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusPayload {
    pub id: u64,
    pub state: SessionState,
    pub algorithm: AlgorithmSpec,
    pub workload: String,
    /// Latest streamed telemetry (zeroes until the first progress
    /// publication; frozen at its last value once terminal).
    pub telemetry: SessionTelemetry,
    /// Latest streamed improvement estimate in `[0, 1]`.
    pub best_improvement: f64,
    /// Wall-clock spent tuning, accumulated across run segments (a
    /// suspended-then-resumed session keeps the time of every segment).
    pub wall_clock_ms: f64,
    /// Error message for `Failed` sessions.
    pub error: Option<String>,
}

/// One row of `List`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    pub id: u64,
    pub state: SessionState,
    pub algorithm: AlgorithmSpec,
    pub workload: String,
}

/// Wire form of a [`TuningResult`]. Configurations and layouts are
/// summarized (member ids, length, order-sensitive fingerprint) instead of
/// shipping the full call trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResultPayload {
    pub algorithm: String,
    /// Member indexes of the recommended configuration, ascending.
    pub config: Vec<u32>,
    pub calls_used: usize,
    /// Oracle improvement fraction in `[0, 1]`.
    pub improvement: f64,
    pub stop_reason: Option<StopReason>,
    /// Number of budget-consuming calls in the layout (= calls_used).
    pub layout_len: usize,
    /// Order-sensitive digest of the call layout — equal digests mean the
    /// budget was spent on the same cells in the same order.
    pub layout_fingerprint: u64,
    pub telemetry: SessionTelemetry,
}

impl ResultPayload {
    pub fn from_result(r: &TuningResult) -> Self {
        Self {
            algorithm: r.algorithm.clone(),
            config: r.config.iter().map(|id| id.0).collect(),
            calls_used: r.calls_used,
            improvement: r.improvement,
            stop_reason: r.stop_reason,
            layout_len: r.layout.len(),
            layout_fingerprint: r.layout.fingerprint(),
            telemetry: r.telemetry,
        }
    }
}

/// Write one protocol message as a JSON line.
pub fn write_line<T: Serialize>(w: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let mut line = serde_json::to_string(msg).map_err(|e| std::io::Error::other(format!("{e}")))?;
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Read one protocol message from a JSON line. `Ok(None)` on clean EOF.
pub fn read_line<T: Deserialize>(
    r: &mut impl BufRead,
) -> std::io::Result<Option<Result<T, String>>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(Some(Err("empty line".into())));
    }
    Ok(Some(
        serde_json::from_str(trimmed).map_err(|e| format!("malformed message: {e}")),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Ping,
            Request::Submit(SubmitSpec::new(
                WorkloadSpec::Bench("tpch".into()),
                AlgorithmSpec::Mcts,
                5,
                200,
            )),
            Request::Status(3),
            Request::Result(4),
            Request::Cancel(5),
            Request::Suspend(6),
            Request::Resume(7),
            Request::List,
            Request::Metrics,
            Request::Trace(8),
            Request::StoreStats,
            Request::StoreFlush,
            Request::PersistStats,
            Request::Shutdown,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "{json}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = vec![
            Response::Pong,
            Response::Submitted(9),
            Response::Status(StatusPayload {
                id: 9,
                state: SessionState::Running,
                algorithm: AlgorithmSpec::TwoPhase,
                workload: "synth:3".into(),
                telemetry: SessionTelemetry::default(),
                best_improvement: 0.25,
                wall_clock_ms: 12.5,
                error: None,
            }),
            Response::Result(ResultPayload {
                algorithm: "MCTS".into(),
                config: vec![1, 4, 7],
                calls_used: 100,
                improvement: 0.375,
                stop_reason: Some(StopReason::BudgetExhausted),
                layout_len: 100,
                layout_fingerprint: 0xdead_beef,
                telemetry: SessionTelemetry::default(),
            }),
            Response::Sessions(vec![SessionSummary {
                id: 1,
                state: SessionState::Suspended,
                algorithm: AlgorithmSpec::Mcts,
                workload: "tpch".into(),
            }]),
            Response::Metrics("# HELP ixtune_whatif_calls_total …\n".into()),
            Response::Trace("[{\"ph\":\"X\"}]".into()),
            Response::StoreStats(StoreStatsPayload {
                workloads: 2,
                entries: 512,
                interned_configs: 64,
                bytes: 40_960,
                epoch: 7,
                evictions: 1,
                max_bytes: 64 << 20,
            }),
            Response::Flushed(512),
            Response::PersistStats(PersistStatsPayload {
                generation: 3,
                wal_bytes: 4096,
                records_total: 17,
                fsyncs_total: 2,
                compactions_total: 1,
                durability: "batch".into(),
                recovered_snapshot: true,
                recovered_wal_records: 5,
                recovery_torn_tail: true,
                recovery_torn_bytes: 12,
                recovery_ms: 1.25,
            }),
            Response::Ok,
            Response::Error(ErrorPayload::new(
                ErrorCode::QueueFull,
                "queue full (16/16 sessions open)",
            )),
        ];
        for resp in resps {
            let json = serde_json::to_string(&resp).unwrap();
            assert!(!json.contains('\n'), "line framing requires one line");
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back, resp, "{json}");
        }
    }

    #[test]
    fn error_codes_serialize_as_stable_strings() {
        // The wire form is the variant name itself — renaming a variant is
        // a protocol break, which this test turns into a compile-visible
        // diff instead of a silent drift.
        for (code, wire) in [
            (ErrorCode::ShuttingDown, "\"ShuttingDown\""),
            (ErrorCode::QueueFull, "\"QueueFull\""),
            (ErrorCode::UnknownSession, "\"UnknownSession\""),
            (ErrorCode::InvalidSpec, "\"InvalidSpec\""),
            (ErrorCode::NotResumable, "\"NotResumable\""),
            (ErrorCode::NotRunning, "\"NotRunning\""),
            (ErrorCode::NotSuspended, "\"NotSuspended\""),
            (ErrorCode::AlreadyTerminal, "\"AlreadyTerminal\""),
            (ErrorCode::NoResult, "\"NoResult\""),
            (ErrorCode::BadRequest, "\"BadRequest\""),
        ] {
            assert_eq!(serde_json::to_string(&code).unwrap(), wire);
            let back: ErrorCode = serde_json::from_str(wire).unwrap();
            assert_eq!(back, code);
        }
    }

    #[test]
    fn line_codec_roundtrip() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Ping).unwrap();
        write_line(&mut buf, &Request::List).unwrap();
        let mut r = std::io::BufReader::new(buf.as_slice());
        let a: Request = read_line(&mut r).unwrap().unwrap().unwrap();
        let b: Request = read_line(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(a, Request::Ping);
        assert_eq!(b, Request::List);
        assert!(read_line::<Request>(&mut r).unwrap().is_none(), "EOF");
    }
}
