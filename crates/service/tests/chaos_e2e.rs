//! Chaos end-to-end tests: boot the **real** `ixtuned` binary under a
//! seeded fault plan (`--fault-spec`) and check the hardening contract
//! from the client's side of the wire:
//!
//! * the daemon never hangs — every session reaches a settled state and
//!   every client error is a member of the closed error vocabulary
//!   (typed `ErrorCode` strings or clean transport errors);
//! * the injected fault schedule is a pure function of the seed: two
//!   daemons driven identically under the same spec inject bit-identical
//!   fault sequences (asserted via `ixtune_fault_injected_total`);
//! * a what-if source that starts failing degrades the session to a
//!   derivation-only salvage (`stop_reason: Degraded`) instead of losing
//!   the work;
//! * fsync faults are retried; after a SIGKILL the restarted daemon
//!   replays results bit-identically;
//! * faults that never touch the tuning path (wire chaos, latency
//!   spikes) leave `TuningResult` bit-identical to a fault-free run.

use ixtune_service::{
    AlgorithmSpec, Client, ResultPayload, SessionState, SubmitSpec, WorkloadSpec,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

/// The three fixed seeds CI pins (the scheduled leg adds a rotating one).
const SEEDS: [u64; 3] = [42, 1337, 31415];

struct DaemonProc {
    child: Child,
    addr: String,
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl DaemonProc {
    /// Spawn the real binary; `fault_spec` arms the injection plane
    /// (empty = inert).
    fn spawn(data_dir: &Path, durability: &str, fault_spec: &str) -> Self {
        let mut args = vec![
            "--bind".to_string(),
            "127.0.0.1:0".to_string(),
            "--data-dir".to_string(),
            data_dir.to_str().unwrap().to_string(),
            "--durability".to_string(),
            durability.to_string(),
            "--max-concurrent".to_string(),
            "1".to_string(),
            "--max-session-threads".to_string(),
            "1".to_string(),
        ];
        if !fault_spec.is_empty() {
            args.push("--fault-spec".to_string());
            args.push(fault_spec.to_string());
        }
        let mut child = Command::new(env!("CARGO_BIN_EXE_ixtuned"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ixtuned");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut this = Self {
            child,
            addr: String::new(),
        };
        let mut lines = BufReader::new(stdout).lines();
        this.addr = loop {
            let line = lines
                .next()
                .expect("daemon prints its address before exiting")
                .expect("read daemon stdout");
            if let Some(addr) = line.strip_prefix("ixtuned listening on ") {
                break addr.trim().to_string();
            }
        };
        std::thread::spawn(move || for _ in lines {});
        this
    }

    fn client(&self) -> Client {
        Client::new(self.addr.clone())
    }

    fn kill(mut self) {
        self.child.kill().expect("deliver SIGKILL");
        self.child.wait().expect("reap killed daemon");
    }

    fn shutdown(mut self, client: &Client) {
        retrying(|| client.shutdown()).expect("shutdown request lands");
        self.child.wait().expect("daemon exits");
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ixtuned-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn greedy_spec(workload_seed: u64, budget: usize) -> SubmitSpec {
    let mut spec = SubmitSpec::new(
        WorkloadSpec::Synth(workload_seed),
        AlgorithmSpec::VanillaGreedy,
        3,
        budget,
    );
    spec.seed = 7;
    spec
}

fn mcts_spec(budget: usize) -> SubmitSpec {
    let mut spec = SubmitSpec::new(WorkloadSpec::Synth(11), AlgorithmSpec::Mcts, 3, budget);
    spec.seed = 42;
    spec
}

/// The closed vocabulary a chaos client may observe. Anything outside it
/// — a panic message, a partial JSON dump, a hang — fails the test.
fn assert_clean_error(e: &str) {
    const CODES: [&str; 10] = [
        "ShuttingDown",
        "QueueFull",
        "UnknownSession",
        "InvalidSpec",
        "NotResumable",
        "NotRunning",
        "NotSuspended",
        "AlreadyTerminal",
        "NoResult",
        "BadRequest",
    ];
    let clean = CODES.iter().any(|c| e.starts_with(c))
        || e.starts_with("connect:")
        || e.starts_with("send:")
        || e.starts_with("recv:")
        || e.starts_with("socket:")
        || e.starts_with("malformed message")
        || e == "daemon closed the connection";
    assert!(clean, "error outside the closed vocabulary: {e}");
}

/// Retry through injected wire faults. Every intermediate failure must
/// still be a clean, typed error.
fn retrying<T>(mut f: impl FnMut() -> Result<T, String>) -> Result<T, String> {
    let mut last = String::new();
    for _ in 0..50 {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) => {
                assert_clean_error(&e);
                last = e;
            }
        }
    }
    Err(last)
}

/// Poll a session to a settled terminal state, tolerating wire faults on
/// individual polls but never exceeding the deadline (hang detection).
fn wait_terminal_chaos(client: &Client, id: u64) -> SessionState {
    let deadline = Instant::now() + WAIT;
    loop {
        match client.status(id) {
            Ok(s) if s.state.terminal() => return s.state,
            Ok(_) => {}
            Err(e) => assert_clean_error(&e),
        }
        assert!(
            Instant::now() < deadline,
            "session {id} failed to settle under chaos (hang)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Parse `ixtune_fault_injected_total{site="…"} N` rows from the
/// Prometheus exposition.
fn injected_counters(metrics: &str) -> BTreeMap<String, u64> {
    metrics
        .lines()
        .filter(|l| l.starts_with("ixtune_fault_injected_total{"))
        .filter_map(|l| {
            let site = l.split("site=\"").nth(1)?.split('"').next()?.to_string();
            let value = l.rsplit(' ').next()?.parse::<f64>().ok()?;
            Some((site, value as u64))
        })
        .collect()
}

fn strip_wall_clock(mut payload: ResultPayload) -> ResultPayload {
    payload.telemetry.wall_clock_ms = 0.0;
    payload.telemetry.warm_hits = 0;
    payload.telemetry.warm_seeded = 0;
    payload
}

/// Drive one daemon under the given plan through a fixed, serial session
/// schedule and return the injected-fault counters it accumulated.
fn run_schedule(spec: &str, tag: &str) -> BTreeMap<String, u64> {
    let dir = scratch(tag);
    let daemon = DaemonProc::spawn(&dir, "always", spec);
    let client = daemon.client();
    retrying(|| client.ping()).expect("daemon answers ping");
    for workload_seed in [3u64, 5, 3, 9] {
        let id = retrying(|| client.submit(greedy_spec(workload_seed, 40))).expect("submit");
        let state = wait_terminal_chaos(&client, id);
        assert!(
            matches!(state, SessionState::Done | SessionState::Failed),
            "serial greedy session settled as {state:?}"
        );
    }
    let metrics = retrying(|| client.metrics()).expect("metrics under chaos");
    let counters = injected_counters(&metrics);
    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&dir);
    counters
}

/// Replaying the same seed injects the identical fault sequence: the
/// per-site counters — position-sensitive accumulations of every decision
/// — agree exactly between two daemons driven identically. A different
/// seed produces a different schedule (same sites, different counts).
#[test]
fn seeded_fault_schedule_replays_identically() {
    // CI's scheduled chaos leg explores a fresh date-derived seed on top
    // of the pinned ones; a failure reproduces locally from the same env.
    let mut seeds = SEEDS.to_vec();
    if let Ok(extra) = std::env::var("IXTUNE_CHAOS_SEED") {
        seeds.push(extra.parse().expect("IXTUNE_CHAOS_SEED must be a u64"));
    }
    for (i, seed) in seeds.iter().enumerate() {
        let spec = format!(
            "seed={seed};whatif.error=p0.02;whatif.latency=p0.1;persist.fsync=every5;worker.panic=every4"
        );
        let first = run_schedule(&spec, &format!("replay-a{i}"));
        let second = run_schedule(&spec, &format!("replay-b{i}"));
        assert_eq!(
            first, second,
            "seed {seed}: identical runs must inject identical fault sequences"
        );
        let total: u64 = first.values().sum();
        assert!(
            total > 0,
            "seed {seed}: the plan injected nothing: {first:?}"
        );
    }
}

/// A what-if source that fails on the session's first uncached call
/// triggers the degradation ladder: the session salvages a valid
/// configuration through derivation-only enumeration and reports
/// `stop_reason: Degraded` — never a hang, never a lost session.
#[test]
fn whatif_error_degrades_to_salvaged_result() {
    let dir = scratch("degrade");
    let daemon = DaemonProc::spawn(&dir, "batch", "seed=42;whatif.error=every1");
    let client = daemon.client();
    let id = client.submit(greedy_spec(3, 40)).expect("submit");
    let status = client.wait_terminal(id, WAIT).expect("session settles");
    assert_eq!(status.state, SessionState::Done, "salvage settles Done");
    let r = client.result(id).expect("salvaged result");
    assert_eq!(
        r.stop_reason.map(|s| format!("{s:?}")),
        Some("Degraded".to_string()),
        "stop reason names the ladder"
    );
    assert!(r.config.len() <= 3, "constraint respected: {:?}", r.config);
    assert!(r.calls_used <= 40, "budget respected: {}", r.calls_used);
    let metrics = client.metrics().expect("metrics");
    let counters = injected_counters(&metrics);
    assert!(
        counters.get("whatif.error").copied().unwrap_or(0) >= 1,
        "injection accounted: {counters:?}"
    );
    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wire chaos and latency spikes never touch the enumeration path: the
/// tuning result under heavy wire faults is bit-identical to the result
/// of a fault-free daemon, with the same stop reason.
#[test]
fn wire_chaos_leaves_results_bit_identical() {
    let clean_dir = scratch("wire-clean");
    let daemon = DaemonProc::spawn(&clean_dir, "batch", "");
    let client = daemon.client();
    let id = client.submit(mcts_spec(120)).expect("submit clean");
    client
        .wait_terminal(id, WAIT)
        .expect("clean session settles");
    let clean = client.result(id).expect("clean result");
    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&clean_dir);

    let dir = scratch("wire-chaos");
    let spec =
        "seed=1337;wire.drop=every7;wire.truncate=every5;wire.garble=every3;whatif.latency=p0.2";
    let daemon = DaemonProc::spawn(&dir, "batch", spec);
    let client = daemon.client();
    retrying(|| client.ping()).expect("ping through chaos");
    let id = retrying(|| client.submit(mcts_spec(120))).expect("submit through chaos");
    let state = wait_terminal_chaos(&client, id);
    assert_eq!(state, SessionState::Done);
    let chaotic = retrying(|| client.result(id)).expect("result through chaos");

    assert_eq!(chaotic.stop_reason, clean.stop_reason, "same stop reason");
    assert_eq!(
        strip_wall_clock(chaotic),
        strip_wall_clock(clean),
        "wire chaos must never perturb the tuning result"
    );

    let metrics = retrying(|| client.metrics()).expect("metrics through chaos");
    let counters = injected_counters(&metrics);
    let wire_total = counters
        .iter()
        .filter(|(site, _)| site.starts_with("wire."))
        .map(|(_, n)| n)
        .sum::<u64>();
    assert!(wire_total > 0, "wire chaos actually fired: {counters:?}");

    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&dir);
}

/// fsync faults are retried (the record is already in the WAL when fsync
/// fails, and replay folds are idempotent), so a SIGKILL mid-chaos loses
/// nothing: the restarted, fault-free daemon replays the result
/// bit-identically.
#[test]
fn fsync_faults_recover_bit_identical_after_sigkill() {
    let dir = scratch("fsync");
    let daemon = DaemonProc::spawn(&dir, "always", "seed=42;persist.fsync=every4");
    let client = daemon.client();
    let id = client.submit(mcts_spec(120)).expect("submit");
    let status = client.wait_terminal(id, WAIT).expect("session settles");
    assert_eq!(status.state, SessionState::Done);
    let before = client.result(id).expect("result before crash");
    let metrics = client.metrics().expect("metrics");
    assert!(
        injected_counters(&metrics)
            .get("persist.fsync")
            .copied()
            .unwrap_or(0)
            >= 1,
        "fsync faults actually fired"
    );
    assert!(
        metrics.contains("ixtune_persist_degraded 0"),
        "every-4 faults retry through, never demote:\n{}",
        metrics
            .lines()
            .filter(|l| l.contains("degraded"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    daemon.kill();

    let daemon = DaemonProc::spawn(&dir, "always", "");
    let client = daemon.client();
    let after = client.result(id).expect("result survives the crash");
    assert_eq!(after, before, "recovered result is bit-identical");
    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected worker panic is contained: the session settles `Failed`
/// with a clean error, the worker thread survives, and the next session
/// on the same worker runs to completion.
#[test]
fn worker_panic_is_contained_and_worker_survives() {
    let dir = scratch("panic");
    // `after0` fires on the first session only... `every` counts forever,
    // so use after-then-count: first session panics, later ones run.
    let daemon = DaemonProc::spawn(&dir, "batch", "seed=7;worker.panic=every2");
    let client = daemon.client();

    // Session 0: the site's first decision (n=0) does not fire under
    // every2; session 1 (n=1) panics. Submit serially to keep ordering.
    let a = client.submit(greedy_spec(3, 40)).expect("submit a");
    assert_eq!(
        client.wait_terminal(a, WAIT).expect("a settles").state,
        SessionState::Done
    );
    let b = client.submit(greedy_spec(5, 40)).expect("submit b");
    let b_status = client.wait_terminal(b, WAIT).expect("b settles");
    assert_eq!(b_status.state, SessionState::Failed, "injected panic");
    assert!(
        b_status
            .error
            .as_deref()
            .unwrap_or_default()
            .contains("injected"),
        "panic surfaced as a clean session error: {:?}",
        b_status.error
    );
    // The worker thread survived the unwind: a third session completes.
    let c = client.submit(greedy_spec(9, 40)).expect("submit c");
    assert_eq!(
        client.wait_terminal(c, WAIT).expect("c settles").state,
        SessionState::Done
    );
    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&dir);
}
