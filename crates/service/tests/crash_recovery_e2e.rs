//! Crash-recovery end-to-end tests: boot the **real** `ixtuned` binary,
//! hard-kill it with SIGKILL (no shutdown hooks, no Drop), restart it on
//! the same `--data-dir`, and check the durability contract from the
//! client's side of the wire:
//!
//! * completed results stay queryable bit-identically across the crash;
//! * the warm cost store reopens with every cost paid before the crash —
//!   the first identical session after restart is served entirely warm;
//! * a session suspended before the crash reappears resumable, and the
//!   resumed run is bit-identical to an uninterrupted control;
//! * `--durability never` issues zero fsyncs yet still recovers after a
//!   process kill (the page cache survives SIGKILL; only a machine crash
//!   defeats it).

use ixtune_service::{
    AlgorithmSpec, Client, ResultPayload, SessionState, SubmitSpec, WorkloadSpec,
};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

/// A daemon subprocess bound to an ephemeral port. The `Drop` impl reaps
/// the child even when an assertion panics first, so a failing test can
/// never leak a daemon that outlives the harness (an orphan holding the
/// inherited stderr pipe open stalls CI log collection indefinitely).
struct DaemonProc {
    child: Child,
    addr: String,
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        // Both calls are no-ops (errors ignored / cached status) when
        // `kill()`/`shutdown()` already reaped the child.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl DaemonProc {
    fn spawn(data_dir: &Path, durability: &str) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ixtuned"))
            .args([
                "--bind",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().unwrap(),
                "--durability",
                durability,
                "--max-concurrent",
                "2",
                "--max-session-threads",
                "2",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn ixtuned");
        // The daemon announces its bound address on the first stdout line.
        // The guard exists before the first read, so a daemon that dies
        // without printing is reaped by Drop when the expect panics.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut this = Self {
            child,
            addr: String::new(),
        };
        let mut lines = BufReader::new(stdout).lines();
        this.addr = loop {
            let line = lines
                .next()
                .expect("daemon prints its address before exiting")
                .expect("read daemon stdout");
            if let Some(addr) = line.strip_prefix("ixtuned listening on ") {
                break addr.trim().to_string();
            }
        };
        // Drain the rest of stdout so the daemon never blocks on a full
        // pipe; the thread dies with the child.
        std::thread::spawn(move || for _ in lines {});
        this
    }

    fn client(&self) -> Client {
        let client = Client::new(self.addr.clone());
        client.ping().expect("daemon answers ping");
        client
    }

    /// SIGKILL — the point of these tests: no flush, no Drop, no shutdown
    /// request reaches the daemon.
    fn kill(mut self) {
        self.child.kill().expect("deliver SIGKILL");
        self.child.wait().expect("reap killed daemon");
    }

    /// Graceful stop via the protocol (used for final cleanup only).
    fn shutdown(mut self, client: &Client) {
        client.shutdown().expect("shutdown request");
        self.child.wait().expect("daemon exits");
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ixtuned-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mcts_spec(budget: usize) -> SubmitSpec {
    let mut spec = SubmitSpec::new(WorkloadSpec::Synth(11), AlgorithmSpec::Mcts, 3, budget);
    spec.seed = 42;
    spec
}

/// Wall clock and warm-store provenance are execution detail; everything
/// else must be bit-identical.
fn strip_wall_clock(mut payload: ResultPayload) -> ResultPayload {
    payload.telemetry.wall_clock_ms = 0.0;
    payload.telemetry.warm_hits = 0;
    payload.telemetry.warm_seeded = 0;
    payload
}

#[test]
fn sigkill_then_restart_replays_results_and_warm_capital() {
    let dir = scratch("warm");

    // Generation 1: run one session to completion, then die mid-air.
    let daemon = DaemonProc::spawn(&dir, "always");
    let client = daemon.client();
    let a = client.submit(mcts_spec(200)).expect("submit");
    let status = client.wait_terminal(a, WAIT).expect("session settles");
    assert_eq!(status.state, SessionState::Done);
    let before = client.result(a).expect("result before crash");
    assert_eq!(before.telemetry.warm_hits, 0, "cold store before crash");
    daemon.kill();

    // A checkpoint file no live suspension references — as if a session
    // went terminal right as the process died. Restart must sweep it and
    // account for the sweep on the orphan counter.
    let orphan = dir.join("checkpoints").join("s-999.ckpt.json");
    std::fs::write(&orphan, "{}").expect("plant orphan checkpoint");

    // Generation 2: same data dir. The finished session and its result
    // must have survived, and the warm store reopens fully charged.
    let daemon = DaemonProc::spawn(&dir, "always");
    let client = daemon.client();
    let after = client.result(a).expect("result survives the crash");
    assert_eq!(after, before, "recovered result is bit-identical");

    assert!(!orphan.exists(), "orphaned checkpoint swept at start");
    let metrics = client.metrics().expect("metrics verb");
    assert!(
        metrics.contains("ixtune_persist_orphans_swept_total 1"),
        "sweep is accounted on the counter:\n{}",
        metrics
            .lines()
            .filter(|l| l.contains("orphans"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    let persist = client.persist_stats().expect("persist verb");
    assert!(
        persist.recovered_snapshot || persist.recovered_wal_records > 0,
        "restart actually replayed durable state: {persist:?}"
    );

    let b = client.submit(mcts_spec(200)).expect("submit after restart");
    assert!(b > a, "session ids continue across the crash");
    let status = client.wait_terminal(b, WAIT).expect("session settles");
    assert_eq!(status.state, SessionState::Done);
    let replayed = client.result(b).expect("result");
    assert!(replayed.telemetry.warm_seeded > 0, "store recovered");
    assert_eq!(
        replayed.telemetry.warm_hits, replayed.telemetry.what_if_calls,
        "every budgeted call served from the recovered warm store"
    );
    assert_eq!(
        strip_wall_clock(replayed),
        strip_wall_clock(before),
        "warm-served run is bit-identical to the pre-crash run"
    );

    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suspended_session_survives_sigkill_and_resumes_bit_identical() {
    let dir = scratch("suspend");

    // Generation 1: a control run to completion, and a twin that suspends
    // itself mid-search. Crash while it sits suspended.
    let daemon = DaemonProc::spawn(&dir, "always");
    let client = daemon.client();
    let control_id = client.submit(mcts_spec(160)).expect("submit control");
    let mut paused = mcts_spec(160);
    paused.pause_after_calls = Some(60);
    let paused_id = client.submit(paused).expect("submit paused");

    let control = {
        let status = client
            .wait_terminal(control_id, WAIT)
            .expect("control ends");
        assert_eq!(status.state, SessionState::Done);
        client.result(control_id).expect("control result")
    };
    client
        .wait_until(paused_id, WAIT, |s| s.state == SessionState::Suspended)
        .expect("twin reaches Suspended");
    daemon.kill();

    // Generation 2: the suspended session reappears resumable and spends
    // the rest of its budget on exactly the calls the uninterrupted run
    // made — the DESIGN.md §6 guarantee now crossing a process crash.
    let daemon = DaemonProc::spawn(&dir, "always");
    let client = daemon.client();
    let status = client.status(paused_id).expect("status after restart");
    assert_eq!(
        status.state,
        SessionState::Suspended,
        "replayed as suspended"
    );

    client.resume(paused_id).expect("resume across the crash");
    let status = client.wait_terminal(paused_id, WAIT).expect("resumed ends");
    assert_eq!(status.state, SessionState::Done);
    let resumed = client.result(paused_id).expect("resumed result");
    assert_eq!(
        strip_wall_clock(resumed),
        strip_wall_clock(control),
        "crash + resume must be bit-identical to the uninterrupted run"
    );

    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durability_never_skips_fsync_but_survives_process_kill() {
    let dir = scratch("never");

    let daemon = DaemonProc::spawn(&dir, "never");
    let client = daemon.client();
    let a = client.submit(mcts_spec(200)).expect("submit");
    client.wait_terminal(a, WAIT).expect("session settles");
    let before = client.result(a).expect("result");

    let persist = client.persist_stats().expect("persist verb");
    assert_eq!(persist.durability, "never");
    assert_eq!(persist.fsyncs_total, 0, "never policy issues no fsyncs");
    assert!(persist.records_total > 0, "records still written");
    daemon.kill();

    // SIGKILL only loses what the *process* buffered — the persist layer
    // write()s every record, so the page cache still has the full WAL.
    let daemon = DaemonProc::spawn(&dir, "never");
    let client = daemon.client();
    let after = client.result(a).expect("result survives without fsync");
    assert_eq!(after, before);
    let b = client.submit(mcts_spec(200)).expect("submit");
    client.wait_terminal(b, WAIT).expect("session settles");
    let replayed = client.result(b).expect("result");
    assert_eq!(
        replayed.telemetry.warm_hits, replayed.telemetry.what_if_calls,
        "warm capital recovered without fsync"
    );

    daemon.shutdown(&client);
    let _ = std::fs::remove_dir_all(&dir);
}
