//! End-to-end smoke tests over the wire: boot `ixtuned` on an ephemeral
//! port, drive it with the blocking client, and check the headline
//! guarantees — cancellation returns best-so-far, suspend/resume is
//! bit-identical to an uninterrupted run, and admission control holds.

use ixtune_service::{
    AlgorithmSpec, Client, Daemon, ResultPayload, ServiceConfig, SessionState, SubmitSpec,
    WorkloadSpec,
};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn config(dir: &str) -> ServiceConfig {
    let data_dir = std::env::temp_dir().join(dir);
    // Durable state survives the process; wipe the directory so every run
    // starts from the cold-store behavior the tests assert.
    let _ = std::fs::remove_dir_all(&data_dir);
    ServiceConfig {
        max_concurrent: 2,
        queue_capacity: 8,
        max_session_threads: 2,
        data_dir,
        ..ServiceConfig::default()
    }
}

fn boot(dir: &str, tweak: impl FnOnce(&mut ServiceConfig)) -> (Daemon, Client) {
    let mut cfg = config(dir);
    tweak(&mut cfg);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind ephemeral port");
    let client = Client::new(daemon.addr().to_string());
    client.ping().expect("daemon answers ping");
    (daemon, client)
}

fn mcts_spec(budget: usize) -> SubmitSpec {
    let mut spec = SubmitSpec::new(WorkloadSpec::Synth(11), AlgorithmSpec::Mcts, 3, budget);
    spec.seed = 42;
    spec
}

/// Everything except execution detail: wall clock and warm-store
/// provenance counters may differ between an interrupted and an
/// uninterrupted run (an earlier session can seed the daemon store).
fn strip_wall_clock(mut payload: ResultPayload) -> ResultPayload {
    payload.telemetry.wall_clock_ms = 0.0;
    payload.telemetry.warm_hits = 0;
    payload.telemetry.warm_seeded = 0;
    payload
}

#[test]
fn cancel_mid_flight_returns_best_so_far() {
    let (daemon, client) = boot("ixtuned-e2e-cancel", |_| {});
    // A budget this size would run for a very long time; cancellation must
    // bring it back within one episode.
    let id = client.submit(mcts_spec(1_000_000)).expect("submit");

    // Wait until the session is actually spending budget, then cancel.
    client
        .wait_until(id, WAIT, |s| {
            s.state == SessionState::Running && s.telemetry.what_if_calls > 0
        })
        .expect("session starts running");
    client.cancel(id).expect("cancel running session");

    let status = client.wait_terminal(id, WAIT).expect("session settles");
    assert_eq!(status.state, SessionState::Cancelled);

    let result = client.result(id).expect("best-so-far result is kept");
    assert_eq!(
        result.stop_reason,
        Some(ixtune_core::stop::StopReason::Cancelled)
    );
    assert!(
        result.calls_used < 1_000_000,
        "stopped long before the budget: {}",
        result.calls_used
    );
    assert!(result.telemetry.wall_clock_ms > 0.0, "service stamps time");

    let sessions = client.list().expect("list");
    assert!(sessions.iter().any(|s| s.id == id));

    client.shutdown().expect("shutdown");
    daemon.join();
}

#[test]
fn suspend_resume_matches_uninterrupted_run() {
    let (daemon, client) = boot("ixtuned-e2e-resume", |_| {});

    // Session B pauses itself deterministically mid-search; session C is
    // the identical request left alone.
    let mut paused = mcts_spec(160);
    paused.pause_after_calls = Some(60);
    let b = client.submit(paused).expect("submit paused session");
    let c = client
        .submit(mcts_spec(160))
        .expect("submit control session");

    let status = client
        .wait_until(b, WAIT, |s| s.state == SessionState::Suspended)
        .expect("session reaches Suspended");
    assert!(
        status.telemetry.what_if_calls >= 60,
        "suspended after the trigger: {:?}",
        status.telemetry
    );

    client.resume(b).expect("resume suspended session");
    let b_status = client.wait_terminal(b, WAIT).expect("resumed session ends");
    assert_eq!(b_status.state, SessionState::Done);
    let c_status = client.wait_terminal(c, WAIT).expect("control session ends");
    assert_eq!(c_status.state, SessionState::Done);

    let b_result = client.result(b).expect("resumed result");
    let c_result = client.result(c).expect("control result");
    assert_eq!(
        strip_wall_clock(b_result.clone()),
        strip_wall_clock(c_result),
        "suspend/resume must be bit-identical to the uninterrupted run"
    );
    // Both segments' time is accounted for.
    assert!(b_result.telemetry.wall_clock_ms > 0.0);
    client.shutdown().expect("shutdown");
    daemon.join();
    // The snapshot file is consumed (deleted) on successful completion
    // (checked after join so the worker's post-settle removal has run).
    let leftover = std::env::temp_dir()
        .join("ixtuned-e2e-resume")
        .join("checkpoints")
        .join(format!("s-{b}.ckpt.json"));
    assert!(!leftover.exists(), "snapshot consumed on completion");
}

#[test]
fn admission_control_over_the_wire() {
    let (daemon, client) = boot("ixtuned-e2e-admission", |cfg| {
        cfg.max_concurrent = 1;
        cfg.queue_capacity = 2;
    });

    let a = client.submit(mcts_spec(1_000_000)).expect("first admitted");
    let b = client
        .submit(mcts_spec(1_000_000))
        .expect("second admitted");
    let err = client.submit(mcts_spec(10)).expect_err("third rejected");
    assert!(err.starts_with("QueueFull"), "typed error code: {err}");

    client.cancel(a).expect("cancel a");
    client.cancel(b).expect("cancel b");
    client.wait_terminal(a, WAIT).expect("a settles");
    client.wait_terminal(b, WAIT).expect("b settles");

    // Terminal sessions no longer count against the queue.
    let c = client.submit(mcts_spec(10)).expect("slot freed");
    let status = client.wait_terminal(c, WAIT).expect("c finishes");
    assert_eq!(status.state, SessionState::Done);

    client.shutdown().expect("shutdown");
    daemon.join();
}

/// Assert `text` is well-formed Prometheus text exposition: every line is
/// a `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample whose
/// value parses as a float. Returns the sum over samples of `series`.
fn parse_exposition(text: &str, series: &str) -> f64 {
    let mut sum = 0.0;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line has no value: {line:?}"));
        let value: f64 = value_part
            .parse()
            .unwrap_or_else(|_| panic!("unparsable sample value: {line:?}"));
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        if name == series {
            sum += value;
        }
    }
    sum
}

#[test]
fn metrics_scrape_mid_run_and_trace_download() {
    let (daemon, client) = boot("ixtuned-e2e-metrics", |_| {});

    // A long session, scraped while it is still spending budget — the CI
    // service-e2e check: exposition parses, call counter is live.
    let id = client.submit(mcts_spec(1_000_000)).expect("submit");
    client
        .wait_until(id, WAIT, |s| {
            s.state == SessionState::Running && s.telemetry.what_if_calls > 0
        })
        .expect("session starts running");

    let text = client.metrics().expect("metrics verb");
    let calls = parse_exposition(&text, "ixtune_whatif_calls_total");
    assert!(calls > 0.0, "live what-if counter:\n{text}");
    assert!(
        parse_exposition(&text, "ixtune_sessions") >= 1.0,
        "session-state gauges present"
    );
    assert!(
        text.contains("ixtune_whatif_latency_seconds_bucket"),
        "latency histogram present"
    );
    assert!(
        text.contains("ixtune_cache_shard_hit_ratio"),
        "per-shard hit ratios present"
    );

    client.cancel(id).expect("cancel");
    client.wait_terminal(id, WAIT).expect("session settles");

    // Counters survive the session; the scrape still parses afterwards.
    let after = client.metrics().expect("metrics after terminal");
    assert!(parse_exposition(&after, "ixtune_whatif_calls_total") >= calls);

    // Trace download: loadable Chrome-trace JSON (an array of events with
    // the fields a trace viewer needs) containing this session's spans.
    let trace = client.trace(id).expect("trace verb");
    let parsed = serde_json::value_from_str(&trace).expect("trace parses as JSON");
    let serde::Value::Arr(events) = parsed else {
        panic!("chrome trace must be a JSON array");
    };
    assert!(!events.is_empty(), "completed session recorded spans");
    for ev in &events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph field");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        assert!(ev.get("ts").is_some() && ev.get("pid").is_some());
        assert_eq!(ev.get("pid").and_then(|v| v.as_u64()), Some(id));
    }
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(|v| v.as_str()) == Some("episode")),
        "MCTS episode spans present"
    );

    // Unknown ids get the typed error.
    let err = client.trace(999_999).expect_err("unknown session");
    assert!(err.starts_with("UnknownSession"), "{err}");

    // The durable store is live and observable over the wire.
    let persist = client.persist_stats().expect("persist verb");
    assert_eq!(persist.durability, "batch", "default policy");
    assert!(persist.records_total > 0, "transitions were logged");
    assert!(!persist.recovered_snapshot, "fresh data dir: no snapshot");
    assert!(
        parse_exposition(&text, "ixtune_persist_records_total") > 0.0,
        "persist counters reach the exposition"
    );

    client.shutdown().expect("shutdown");
    daemon.join();
}

#[test]
fn warm_store_collapses_second_identical_session_over_the_wire() {
    let (daemon, client) = boot("ixtuned-e2e-warm", |_| {});

    let run = || {
        let id = client.submit(mcts_spec(200)).expect("submit");
        let status = client.wait_terminal(id, WAIT).expect("session settles");
        assert_eq!(status.state, SessionState::Done);
        client.result(id).expect("result")
    };

    let a = run();
    assert_eq!(a.telemetry.warm_hits, 0, "cold store: no warm hits");

    let stats = client.store_stats().expect("store stats verb");
    assert!(stats.entries > 0, "first session populated the store");
    assert!(stats.bytes > 0 && stats.bytes <= stats.max_bytes);

    // The identical request again: every budgeted what-if call is now
    // answered from the warm store (a 100% reduction in simulated calls,
    // comfortably past the >=50% acceptance bar), and the result is
    // bit-identical to the cold run.
    let b = run();
    assert!(b.telemetry.warm_seeded > 0, "second session seeded");
    assert_eq!(
        b.telemetry.warm_hits, b.telemetry.what_if_calls,
        "every budgeted call warm-served"
    );
    assert!(
        b.telemetry.warm_hits * 2 >= b.telemetry.what_if_calls,
        ">=50% of simulated what-if calls eliminated"
    );
    assert_eq!(strip_wall_clock(a), strip_wall_clock(b.clone()));

    // Flush empties the store; a third run is cold again.
    let flushed = client.store_flush().expect("store flush verb");
    assert!(flushed > 0, "flush reports discarded entries");
    let stats = client.store_stats().expect("stats after flush");
    assert_eq!(stats.entries, 0);
    let c = run();
    assert_eq!(c.telemetry.warm_hits, 0, "flushed store serves nothing");
    assert_eq!(strip_wall_clock(b), strip_wall_clock(c));

    // The warm counters reach the daemon metrics exposition.
    let text = client.metrics().expect("metrics");
    assert!(parse_exposition(&text, "ixtune_warm_hits_total") > 0.0);
    assert!(parse_exposition(&text, "ixtune_warm_seeded_total") > 0.0);

    client.shutdown().expect("shutdown");
    daemon.join();
}

#[test]
fn protocol_rejects_garbage_and_unknown_sessions() {
    use std::io::{BufRead, BufReader, Write};

    let (daemon, client) = boot("ixtuned-e2e-proto", |_| {});

    // Unknown session ids come back as structured errors carrying the
    // stable code name, not free-form text.
    let err = client.status(999).expect_err("no such session");
    assert!(err.starts_with("UnknownSession"), "{err}");

    // A malformed line gets an Error response, not a dropped connection.
    let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    stream.write_all(b"{not json}\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains("Error"), "got: {line}");

    client.shutdown().expect("shutdown");
    daemon.join();
}
