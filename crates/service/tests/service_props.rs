//! Property tests at the service layer.
//!
//! * The wire codec round-trips every protocol message through the
//!   line-delimited JSON framing byte-exactly.
//! * The full service path — submit with a deterministic pause trigger,
//!   snapshot to disk, resume — yields the same `ResultPayload` (modulo
//!   wall-clock) as an uninterrupted session, for arbitrary instances,
//!   budgets, and pause points. This is the DESIGN.md §6 resume guarantee
//!   checked end to end through the manager rather than the tuner API.

use ixtune_core::stop::StopReason;
use ixtune_service::proto::{read_line, write_line};
use ixtune_service::{
    AlgorithmSpec, Request, ResultPayload, ServiceConfig, SessionManager, SessionState, SubmitSpec,
    WorkloadSpec,
};
use proptest::prelude::*;
use std::io::BufReader;
use std::time::Duration;

fn roundtrip_request(req: &Request) -> Request {
    let mut buf = Vec::new();
    write_line(&mut buf, req).unwrap();
    let mut reader = BufReader::new(&buf[..]);
    read_line::<Request>(&mut reader).unwrap().unwrap().unwrap()
}

fn algorithm_strategy() -> impl Strategy<Value = AlgorithmSpec> {
    (0u8..4).prop_map(|i| match i {
        0 => AlgorithmSpec::Mcts,
        1 => AlgorithmSpec::VanillaGreedy,
        2 => AlgorithmSpec::TwoPhase,
        _ => AlgorithmSpec::AutoAdmin,
    })
}

/// `Option<T>` strategy for the vendored proptest stand-in: a coin flip
/// plus a value from `range`.
fn maybe<S: Strategy>(range: S) -> impl Strategy<Value = Option<S::Value>> {
    (0u8..2, range).prop_map(|(flag, v)| (flag == 1).then_some(v))
}

fn spec_strategy() -> impl Strategy<Value = SubmitSpec> {
    (
        (0u64..100, algorithm_strategy(), 1usize..12, 1usize..5_000),
        (any::<u64>(), 0usize..8, maybe(1u64..(1u64 << 40))),
        (maybe(1u64..100_000), maybe(1usize..500), maybe(1usize..500)),
    )
        .prop_map(
            |((wl, algorithm, k, budget), (seed, threads, storage), (deadline, pause, cancel))| {
                let mut spec = SubmitSpec::new(WorkloadSpec::Synth(wl), algorithm, k, budget);
                spec.storage_bytes = storage;
                spec.seed = seed;
                spec.session_threads = threads;
                spec.deadline_ms = deadline;
                spec.pause_after_calls = pause;
                spec.cancel_after_calls = cancel;
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn wire_codec_roundtrips_every_request(spec in spec_strategy(), id in any::<u64>()) {
        for req in [
            Request::Ping,
            Request::Submit(spec.clone()),
            Request::Status(id),
            Request::Result(id),
            Request::Cancel(id),
            Request::Suspend(id),
            Request::Resume(id),
            Request::List,
            Request::Metrics,
            Request::Trace(id),
            Request::StoreStats,
            Request::StoreFlush,
            Request::Shutdown,
        ] {
            prop_assert_eq!(roundtrip_request(&req), req);
        }
    }
}

fn config(tag: u64) -> ServiceConfig {
    let data_dir = std::env::temp_dir().join(format!("ixtuned-props-{tag}"));
    // Durable state survives the process; wipe the directory so every
    // proptest case starts cold.
    let _ = std::fs::remove_dir_all(&data_dir);
    ServiceConfig {
        max_concurrent: 2,
        queue_capacity: 8,
        max_session_threads: 2,
        data_dir,
        ..ServiceConfig::default()
    }
}

fn strip_wall_clock(mut payload: ResultPayload) -> ResultPayload {
    payload.telemetry.wall_clock_ms = 0.0;
    // Warm-store provenance is execution detail too: a concurrent session
    // over the same workload may have seeded the store mid-run.
    payload.telemetry.warm_hits = 0;
    payload.telemetry.warm_seeded = 0;
    payload
}

proptest! {
    // Each case runs two full MCTS sessions; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn service_resume_matches_uninterrupted_session(
        wl in 0u64..6,
        seed in 0u64..64,
        budget in 30usize..90,
        pause in 3usize..30,
    ) {
        let mgr = SessionManager::start(config(wl * 1_000 + pause as u64));

        let mut paused = SubmitSpec::new(WorkloadSpec::Synth(wl), AlgorithmSpec::Mcts, 3, budget);
        paused.seed = seed;
        paused.pause_after_calls = Some(pause);
        let control = {
            let mut s = paused.clone();
            s.pause_after_calls = None;
            s
        };

        let a = mgr.submit(paused).unwrap();
        let b = mgr.submit(control).unwrap();

        // The paused session settles as Suspended unless the search ended
        // before the trigger's episode boundary; resume until terminal.
        loop {
            match mgr.wait_settled(a, Duration::from_secs(120)) {
                Some(SessionState::Suspended) => mgr.resume(a).unwrap(),
                Some(s) if s.terminal() => break,
                other => prop_assert!(false, "session a stuck: {:?}", other),
            }
        }
        prop_assert_eq!(mgr.wait_settled(b, Duration::from_secs(120)), Some(SessionState::Done));

        let ra = mgr.result(a).unwrap();
        let rb = mgr.result(b).unwrap();
        prop_assert_eq!(strip_wall_clock(ra), strip_wall_clock(rb));
        mgr.shutdown();
    }
}

/// Regression: a suspended session that is resumed and then terminates on
/// its own stopping rule (budget left over) must report
/// `StopReason::Completed` and settle `Done` — not carry the stale
/// suspend reason (which maps to `Cancelled`) into the final result.
#[test]
fn resumed_session_completing_normally_reports_completed() {
    let mgr = SessionManager::start(config(990_001));

    // Budget far above what MCTS needs on this instance, so the resumed
    // segment ends by idle-streak convergence, not budget exhaustion.
    let mut spec = SubmitSpec::new(WorkloadSpec::Synth(3), AlgorithmSpec::Mcts, 3, 1_000_000);
    spec.seed = 7;
    spec.pause_after_calls = Some(20);
    let id = mgr.submit(spec).unwrap();

    assert_eq!(
        mgr.wait_settled(id, Duration::from_secs(120)),
        Some(SessionState::Suspended),
        "pause trigger must land before the search converges"
    );
    mgr.resume(id).unwrap();
    assert_eq!(
        mgr.wait_settled(id, Duration::from_secs(300)),
        Some(SessionState::Done)
    );

    let r = mgr.result(id).unwrap();
    assert_eq!(r.stop_reason, Some(StopReason::Completed), "{r:?}");
    assert!(
        r.calls_used < 1_000_000,
        "budget must not be the stopping rule here"
    );
    assert_eq!(mgr.status(id).unwrap().state, SessionState::Done);
    mgr.shutdown();
}
