//! Negative-path wire-codec tests: hostile or broken request frames must
//! come back as typed [`ErrorCode`]s from the closed set — assertions
//! dispatch on the code, never on message text — and must never wedge the
//! daemon or leak a handler thread.

use ixtune_service::proto::{read_line, write_line};
use ixtune_service::{Daemon, ErrorCode, Request, Response, ServiceConfig};
use std::io::{BufReader, Write};
use std::net::TcpStream;

fn test_config(tag: &str) -> ServiceConfig {
    let data_dir = std::env::temp_dir().join(format!("ixtuned-wire-neg-{tag}"));
    let _ = std::fs::remove_dir_all(&data_dir);
    ServiceConfig {
        max_concurrent: 1,
        queue_capacity: 4,
        max_session_threads: 1,
        data_dir,
        ..ServiceConfig::default()
    }
}

/// Send raw bytes on a fresh connection; return the first response line
/// (None when the daemon closed without answering).
fn raw_exchange(addr: &str, payload: &[u8]) -> Option<Result<Response, String>> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(payload).expect("send raw frame");
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    read_line::<Response>(&mut reader).expect("read response")
}

fn expect_code(resp: Option<Result<Response, String>>, want: ErrorCode) {
    match resp {
        Some(Ok(Response::Error(e))) => assert_eq!(e.code, want, "got {e:?}"),
        other => panic!("expected Error({want:?}), got {other:?}"),
    }
}

#[test]
fn hostile_frames_answer_with_typed_codes() {
    let daemon = Daemon::start(test_config("frames"), "127.0.0.1:0").unwrap();
    let addr = daemon.addr().to_string();

    // Unknown verb: syntactically valid JSON that is no Request variant.
    expect_code(
        raw_exchange(&addr, b"{\"Bogus\":1}\n"),
        ErrorCode::BadRequest,
    );
    // Structurally broken JSON.
    expect_code(raw_exchange(&addr, b"{nope\n"), ErrorCode::BadRequest);
    // An empty request line.
    expect_code(raw_exchange(&addr, b"\n"), ErrorCode::BadRequest);
    // Bytes that are not UTF-8 at all.
    expect_code(
        raw_exchange(&addr, &[0xff, 0xfe, 0x80, b'\n']),
        ErrorCode::BadRequest,
    );
    // A frame past the hard size cap (the daemon answers before the
    // buffer can grow unboundedly, then closes).
    let mut huge = vec![b'x'; (1 << 20) + 64];
    huge.push(b'\n');
    expect_code(raw_exchange(&addr, &huge), ErrorCode::BadRequest);

    // None of that wedged the daemon: a well-formed request still works.
    let mut line = serde_json::to_string(&Request::Ping).unwrap();
    line.push('\n');
    match raw_exchange(&addr, line.as_bytes()) {
        Some(Ok(Response::Pong)) => {}
        other => panic!("daemon should still answer Ping, got {other:?}"),
    }

    daemon.initiate_shutdown();
    daemon.join();
}

/// A parse error is recoverable: the same connection can carry a valid
/// request afterwards (the stream is still line-synchronized). Non-UTF8
/// garbage is not, and the daemon closes after the typed answer.
#[test]
fn parse_errors_keep_the_connection_alive() {
    let daemon = Daemon::start(test_config("resync"), "127.0.0.1:0").unwrap();
    let addr = daemon.addr().to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer.write_all(b"{\"Bogus\":1}\n").unwrap();
    match read_line::<Response>(&mut reader).expect("first response") {
        Some(Ok(Response::Error(e))) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    write_line(&mut writer, &Request::Ping).unwrap();
    match read_line::<Response>(&mut reader).expect("second response") {
        Some(Ok(Response::Pong)) => {}
        other => panic!("same connection should answer Ping, got {other:?}"),
    }

    daemon.initiate_shutdown();
    daemon.join();
}
