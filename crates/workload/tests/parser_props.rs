//! Property tests for the mini-SQL front end: generated SQL over a random
//! schema always parses into a valid query with the expected structure.

use ixtune_workload::sql::parse_query;
use ixtune_workload::{ColType, FilterKind, Schema, TableBuilder};
use proptest::prelude::*;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(
        TableBuilder::new("t0", 100_000)
            .key("id", ColType::Int)
            .col("a", ColType::Int, 500)
            .col("b", ColType::Int, 2_000)
            .col("s", ColType::VarChar(40), 90_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("t1", 500_000)
            .key("id", ColType::Int)
            .col("fk", ColType::Int, 100_000)
            .col("c", ColType::Date, 3_000)
            .build(),
    )
    .unwrap();
    s
}

/// Strategy: a conjunctive WHERE clause over known columns.
fn predicate() -> impl Strategy<Value = (String, FilterKind)> {
    prop_oneof![
        (1..10_000i64).prop_map(|v| (format!("t0.a = {v}"), FilterKind::Equality)),
        (1..10_000i64).prop_map(|v| (format!("t0.b > {v}"), FilterKind::Range)),
        (1..500i64, 500..10_000i64)
            .prop_map(|(lo, hi)| (format!("t0.b BETWEEN {lo} AND {hi}"), FilterKind::Range)),
        "[a-z]{1,6}".prop_map(|p| (format!("t0.s LIKE '{p}%'"), FilterKind::Like)),
        "[a-z]{1,6}".prop_map(|p| (format!("t0.s LIKE '%{p}%'"), FilterKind::Residual)),
        (1..100i64).prop_map(|v| (format!("t0.a <> {v}"), FilterKind::Residual)),
    ]
}

proptest! {
    #[test]
    fn conjunctions_parse_with_expected_kinds(preds in prop::collection::vec(predicate(), 1..6)) {
        let schema = schema();
        let where_clause: Vec<&str> = preds.iter().map(|(p, _)| p.as_str()).collect();
        let sql = format!(
            "SELECT t0.a, SUM(t0.b) FROM t0, t1 WHERE t0.id = t1.fk AND {} GROUP BY t0.a",
            where_clause.join(" AND ")
        );
        let q = parse_query(&schema, "prop", &sql).expect("must parse");
        q.validate(&schema).expect("must validate");
        prop_assert_eq!(q.num_joins(), 1);
        prop_assert_eq!(q.filters.len(), preds.len());
        // Filter kinds classified as expected, in order.
        for (f, (_, kind)) in q.filters.iter().zip(&preds) {
            prop_assert_eq!(f.kind, *kind);
            prop_assert!(f.selectivity > 0.0 && f.selectivity <= 1.0);
        }
        prop_assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn literal_text_never_changes_structure(a in 1..1_000_000i64, b in 1..1_000_000i64) {
        let schema = schema();
        let q1 = parse_query(&schema, "x", &format!("SELECT a FROM t0 WHERE a = {a}")).unwrap();
        let q2 = parse_query(&schema, "x", &format!("SELECT a FROM t0 WHERE a = {b}")).unwrap();
        // Equality selectivity depends on NDV, not the literal.
        prop_assert_eq!(q1.filters[0].selectivity, q2.filters[0].selectivity);
        prop_assert_eq!(q1.filters.len(), q2.filters.len());
    }

    #[test]
    fn garbage_tokens_never_panic(s in "[ -~]{0,60}") {
        let schema = schema();
        // Any ASCII input must either parse or return an error — no panic.
        let _ = parse_query(&schema, "fuzz", &s);
    }

    #[test]
    fn select_from_prefix_fuzz_never_panics(cols in "[a-z,. ]{0,30}", rest in "[a-z0-9=<>'. ]{0,40}") {
        let schema = schema();
        let _ = parse_query(&schema, "fuzz", &format!("SELECT {cols} FROM t0 WHERE {rest}"));
    }
}
