//! TPC-DS: the real 24-table retail schema at a configurable scale factor,
//! with the 99 queries generated from deterministic per-query specs.
//!
//! The official TPC-DS query text makes heavy use of SQL features that are
//! invisible to index tuning (CTEs, window functions, rollups). What the
//! tuner observes is each query's *structural* footprint — which fact and
//! dimension tables it touches, which columns it filters/joins/groups on,
//! and what it projects. We therefore generate the 99 queries from compact
//! per-query specs that follow the official templates' channel structure:
//! every query anchors on one (or two) of the three sales channels (store /
//! catalog / web), joins `date_dim` and a channel-appropriate set of
//! dimensions, optionally brings in the returns table or `inventory`, and
//! aggregates over a dimension attribute. Specs are derived deterministically
//! from the query number, so the workload is stable across runs.

use crate::query::{FilterKind, QCol, Query, QueryBuilder};
use crate::schema::{ColType, Schema, TableBuilder};
use crate::{BenchmarkInstance, Workload};
use ixtune_common::TableId;

/// Build the TPC-DS schema at scale factor `sf` (the paper uses sf = 10).
pub fn schema(sf: f64) -> Schema {
    let sf = sf.max(0.01);
    let n = |base: f64| (base * sf).round().max(1.0) as u64;
    let mut s = Schema::new();

    s.add_table(
        TableBuilder::new("store_sales", n(2_880_000.0))
            .col("ss_sold_date_sk", ColType::Int, 1_823)
            .col("ss_sold_time_sk", ColType::Int, 43_200)
            .col("ss_item_sk", ColType::Int, n(10_200.0))
            .col("ss_customer_sk", ColType::Int, n(50_000.0))
            .col("ss_cdemo_sk", ColType::Int, 1_920_800)
            .col("ss_hdemo_sk", ColType::Int, 7_200)
            .col("ss_addr_sk", ColType::Int, n(25_000.0))
            .col("ss_store_sk", ColType::Int, n(10.2))
            .col("ss_promo_sk", ColType::Int, n(50.0))
            .col("ss_ticket_number", ColType::BigInt, n(240_000.0))
            .col("ss_quantity", ColType::Int, 100)
            .col("ss_wholesale_cost", ColType::Decimal, 10_000)
            .col("ss_list_price", ColType::Decimal, 20_000)
            .col("ss_sales_price", ColType::Decimal, 20_000)
            .col("ss_ext_sales_price", ColType::Decimal, 1_000_000)
            .col("ss_net_profit", ColType::Decimal, 1_500_000)
            .col("ss_net_paid", ColType::Decimal, 1_200_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("store_returns", n(288_000.0))
            .col("sr_returned_date_sk", ColType::Int, 2_003)
            .col("sr_item_sk", ColType::Int, n(10_200.0))
            .col("sr_customer_sk", ColType::Int, n(50_000.0))
            .col("sr_ticket_number", ColType::BigInt, n(240_000.0))
            .col("sr_return_quantity", ColType::Int, 100)
            .col("sr_return_amt", ColType::Decimal, 500_000)
            .col("sr_store_sk", ColType::Int, n(10.2))
            .col("sr_reason_sk", ColType::Int, 45)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("catalog_sales", n(1_440_000.0))
            .col("cs_sold_date_sk", ColType::Int, 1_823)
            .col("cs_item_sk", ColType::Int, n(10_200.0))
            .col("cs_bill_customer_sk", ColType::Int, n(50_000.0))
            .col("cs_ship_customer_sk", ColType::Int, n(50_000.0))
            .col("cs_call_center_sk", ColType::Int, 24)
            .col("cs_catalog_page_sk", ColType::Int, n(1_200.0))
            .col("cs_ship_mode_sk", ColType::Int, 20)
            .col("cs_warehouse_sk", ColType::Int, 10)
            .col("cs_promo_sk", ColType::Int, n(50.0))
            .col("cs_order_number", ColType::BigInt, n(160_000.0))
            .col("cs_quantity", ColType::Int, 100)
            .col("cs_ext_sales_price", ColType::Decimal, 800_000)
            .col("cs_sales_price", ColType::Decimal, 20_000)
            .col("cs_net_profit", ColType::Decimal, 900_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("catalog_returns", n(144_000.0))
            .col("cr_returned_date_sk", ColType::Int, 2_100)
            .col("cr_item_sk", ColType::Int, n(10_200.0))
            .col("cr_order_number", ColType::BigInt, n(160_000.0))
            .col("cr_return_amount", ColType::Decimal, 300_000)
            .col("cr_returning_customer_sk", ColType::Int, n(50_000.0))
            .col("cr_call_center_sk", ColType::Int, 24)
            .col("cr_reason_sk", ColType::Int, 45)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("web_sales", n(720_000.0))
            .col("ws_sold_date_sk", ColType::Int, 1_823)
            .col("ws_item_sk", ColType::Int, n(10_200.0))
            .col("ws_bill_customer_sk", ColType::Int, n(50_000.0))
            .col("ws_web_site_sk", ColType::Int, 42)
            .col("ws_web_page_sk", ColType::Int, 200)
            .col("ws_ship_mode_sk", ColType::Int, 20)
            .col("ws_warehouse_sk", ColType::Int, 10)
            .col("ws_promo_sk", ColType::Int, n(50.0))
            .col("ws_order_number", ColType::BigInt, n(60_000.0))
            .col("ws_quantity", ColType::Int, 100)
            .col("ws_ext_sales_price", ColType::Decimal, 500_000)
            .col("ws_sales_price", ColType::Decimal, 20_000)
            .col("ws_net_profit", ColType::Decimal, 600_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("web_returns", n(72_000.0))
            .col("wr_returned_date_sk", ColType::Int, 2_185)
            .col("wr_item_sk", ColType::Int, n(10_200.0))
            .col("wr_order_number", ColType::BigInt, n(60_000.0))
            .col("wr_return_amt", ColType::Decimal, 200_000)
            .col("wr_returning_customer_sk", ColType::Int, n(50_000.0))
            .col("wr_web_page_sk", ColType::Int, 200)
            .col("wr_reason_sk", ColType::Int, 45)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("inventory", n(13_311_000.0))
            .col("inv_date_sk", ColType::Int, 261)
            .col("inv_item_sk", ColType::Int, n(10_200.0))
            .col("inv_warehouse_sk", ColType::Int, 10)
            .col("inv_quantity_on_hand", ColType::Int, 1_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("date_dim", 73_049)
            .key("d_date_sk", ColType::Int)
            .col("d_date", ColType::Date, 73_049)
            .col("d_year", ColType::Int, 201)
            .col("d_moy", ColType::Int, 12)
            .col("d_dom", ColType::Int, 31)
            .col("d_qoy", ColType::Int, 4)
            .col("d_dow", ColType::Int, 7)
            .col("d_month_seq", ColType::Int, 2_400)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("time_dim", 86_400)
            .key("t_time_sk", ColType::Int)
            .col("t_hour", ColType::Int, 24)
            .col("t_minute", ColType::Int, 60)
            .col("t_meal_time", ColType::Char(20), 4)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("item", n(10_200.0))
            .key("i_item_sk", ColType::Int)
            .col("i_item_id", ColType::Char(16), n(5_100.0))
            .col("i_category", ColType::Char(50), 10)
            .col("i_class", ColType::Char(50), 100)
            .col("i_brand", ColType::Char(50), 714)
            .col("i_manufact_id", ColType::Int, 1_000)
            .col("i_color", ColType::Char(20), 92)
            .col("i_size", ColType::Char(20), 7)
            .col("i_current_price", ColType::Decimal, 9_000)
            .col("i_manager_id", ColType::Int, 100)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("customer", n(50_000.0))
            .key("c_customer_sk", ColType::Int)
            .col("c_customer_id", ColType::Char(16), n(50_000.0))
            .col("c_current_cdemo_sk", ColType::Int, 1_200_000)
            .col("c_current_hdemo_sk", ColType::Int, 7_200)
            .col("c_current_addr_sk", ColType::Int, n(25_000.0))
            .col("c_first_name", ColType::Char(20), 5_000)
            .col("c_last_name", ColType::Char(30), 5_000)
            .col("c_birth_country", ColType::VarChar(20), 211)
            .col("c_birth_year", ColType::Int, 69)
            .col("c_preferred_cust_flag", ColType::Char(1), 2)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("customer_address", n(25_000.0))
            .key("ca_address_sk", ColType::Int)
            .col("ca_state", ColType::Char(2), 51)
            .col("ca_city", ColType::VarChar(60), 977)
            .col("ca_county", ColType::VarChar(30), 1_850)
            .col("ca_zip", ColType::Char(10), 9_797)
            .col("ca_gmt_offset", ColType::Decimal, 6)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("customer_demographics", 1_920_800)
            .key("cd_demo_sk", ColType::Int)
            .col("cd_gender", ColType::Char(1), 2)
            .col("cd_marital_status", ColType::Char(1), 5)
            .col("cd_education_status", ColType::Char(20), 7)
            .col("cd_purchase_estimate", ColType::Int, 20)
            .col("cd_credit_rating", ColType::Char(10), 4)
            .col("cd_dep_count", ColType::Int, 7)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("household_demographics", 7_200)
            .key("hd_demo_sk", ColType::Int)
            .col("hd_income_band_sk", ColType::Int, 20)
            .col("hd_buy_potential", ColType::Char(15), 6)
            .col("hd_dep_count", ColType::Int, 10)
            .col("hd_vehicle_count", ColType::Int, 6)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("store", n(10.2).max(12))
            .key("s_store_sk", ColType::Int)
            .col("s_store_name", ColType::VarChar(50), n(10.2).max(6))
            .col("s_state", ColType::Char(2), 9)
            .col("s_county", ColType::VarChar(30), 9)
            .col("s_city", ColType::VarChar(60), 18)
            .col("s_number_employees", ColType::Int, 100)
            .col("s_market_id", ColType::Int, 10)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("call_center", 24)
            .key("cc_call_center_sk", ColType::Int)
            .col("cc_name", ColType::VarChar(50), 12)
            .col("cc_class", ColType::VarChar(50), 3)
            .col("cc_county", ColType::VarChar(30), 8)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("catalog_page", n(1_200.0))
            .key("cp_catalog_page_sk", ColType::Int)
            .col("cp_catalog_number", ColType::Int, 109)
            .col("cp_catalog_page_number", ColType::Int, 188)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("web_site", 42)
            .key("web_site_sk", ColType::Int)
            .col("web_name", ColType::VarChar(50), 21)
            .col("web_class", ColType::VarChar(50), 1)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("web_page", 200)
            .key("wp_web_page_sk", ColType::Int)
            .col("wp_char_count", ColType::Int, 150)
            .col("wp_type", ColType::Char(50), 7)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("warehouse", 10)
            .key("w_warehouse_sk", ColType::Int)
            .col("w_warehouse_name", ColType::VarChar(20), 10)
            .col("w_state", ColType::Char(2), 8)
            .col("w_warehouse_sq_ft", ColType::Int, 10)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("ship_mode", 20)
            .key("sm_ship_mode_sk", ColType::Int)
            .col("sm_type", ColType::Char(30), 5)
            .col("sm_carrier", ColType::Char(20), 20)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("reason", 45)
            .key("r_reason_sk", ColType::Int)
            .col("r_reason_desc", ColType::Char(100), 45)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("income_band", 20)
            .key("ib_income_band_sk", ColType::Int)
            .col("ib_lower_bound", ColType::Int, 20)
            .col("ib_upper_bound", ColType::Int, 20)
            .build(),
    )
    .unwrap();
    s.add_table(
        TableBuilder::new("promotion", n(50.0))
            .key("p_promo_sk", ColType::Int)
            .col("p_channel_email", ColType::Char(1), 2)
            .col("p_channel_tv", ColType::Char(1), 2)
            .build(),
    )
    .unwrap();
    s
}

/// Sales channel a query anchors on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Channel {
    Store,
    Catalog,
    Web,
    Inventory,
}

/// Column handles for one channel's fact table.
struct Fact {
    table: &'static str,
    date_sk: &'static str,
    item_sk: &'static str,
    customer_sk: &'static str,
    outlet_sk: &'static str,
    outlet_dim: &'static str,
    outlet_key: &'static str,
    outlet_attr: &'static str,
    promo_sk: &'static str,
    order_no: &'static str,
    quantity: &'static str,
    sales_price: &'static str,
    profit: &'static str,
    returns_table: &'static str,
    returns_item: &'static str,
    returns_order: &'static str,
    returns_amt: &'static str,
}

fn fact(channel: Channel) -> Fact {
    match channel {
        Channel::Store => Fact {
            table: "store_sales",
            date_sk: "ss_sold_date_sk",
            item_sk: "ss_item_sk",
            customer_sk: "ss_customer_sk",
            outlet_sk: "ss_store_sk",
            outlet_dim: "store",
            outlet_key: "s_store_sk",
            outlet_attr: "s_state",
            promo_sk: "ss_promo_sk",
            order_no: "ss_ticket_number",
            quantity: "ss_quantity",
            sales_price: "ss_ext_sales_price",
            profit: "ss_net_profit",
            returns_table: "store_returns",
            returns_item: "sr_item_sk",
            returns_order: "sr_ticket_number",
            returns_amt: "sr_return_amt",
        },
        Channel::Catalog => Fact {
            table: "catalog_sales",
            date_sk: "cs_sold_date_sk",
            item_sk: "cs_item_sk",
            customer_sk: "cs_bill_customer_sk",
            outlet_sk: "cs_call_center_sk",
            outlet_dim: "call_center",
            outlet_key: "cc_call_center_sk",
            outlet_attr: "cc_county",
            promo_sk: "cs_promo_sk",
            order_no: "cs_order_number",
            quantity: "cs_quantity",
            sales_price: "cs_ext_sales_price",
            profit: "cs_net_profit",
            returns_table: "catalog_returns",
            returns_item: "cr_item_sk",
            returns_order: "cr_order_number",
            returns_amt: "cr_return_amount",
        },
        Channel::Web | Channel::Inventory => Fact {
            table: "web_sales",
            date_sk: "ws_sold_date_sk",
            item_sk: "ws_item_sk",
            customer_sk: "ws_bill_customer_sk",
            outlet_sk: "ws_web_site_sk",
            outlet_dim: "web_site",
            outlet_key: "web_site_sk",
            outlet_attr: "web_name",
            promo_sk: "ws_promo_sk",
            order_no: "ws_order_number",
            quantity: "ws_quantity",
            sales_price: "ws_ext_sales_price",
            profit: "ws_net_profit",
            returns_table: "web_returns",
            returns_item: "wr_item_sk",
            returns_order: "wr_order_number",
            returns_amt: "wr_return_amt",
        },
    }
}

struct Ctx<'a> {
    schema: &'a Schema,
}

impl<'a> Ctx<'a> {
    fn tid(&self, name: &str) -> TableId {
        self.schema.table_by_name(name).expect("tpcds table")
    }

    fn qcol(&self, table: TableId, slot: crate::query::ScanSlot, name: &str) -> QCol {
        let c = self
            .schema
            .table(table)
            .column(name)
            .unwrap_or_else(|| panic!("tpcds column {name}"));
        QCol::new(slot, c)
    }

    fn sel_eq(&self, table: TableId, name: &str) -> f64 {
        let c = self.schema.table(table).column(name).unwrap();
        (1.0 / self.schema.table(table).col(c).ndv as f64).clamp(1e-9, 1.0)
    }
}

/// Build query `qid` (1-based) over `schema`.
fn build_query(ctx: &Ctx<'_>, qid: u32) -> Query {
    let channel = match qid % 9 {
        0..=3 => Channel::Store,
        4..=6 => Channel::Catalog,
        7 => Channel::Web,
        _ => {
            if qid % 18 == 8 {
                Channel::Inventory
            } else {
                Channel::Web
            }
        }
    };
    let f = fact(channel);
    let mut b = QueryBuilder::new(format!("q{qid}"));

    if channel == Channel::Inventory {
        // Inventory queries: inventory ⋈ date_dim ⋈ item ⋈ warehouse.
        let inv_t = ctx.tid("inventory");
        let inv = b.scan(inv_t);
        let dd_t = ctx.tid("date_dim");
        let dd = b.scan(dd_t);
        let item_t = ctx.tid("item");
        let it = b.scan(item_t);
        let wh_t = ctx.tid("warehouse");
        let wh = b.scan(wh_t);
        b.join(
            ctx.qcol(inv_t, inv, "inv_date_sk"),
            ctx.qcol(dd_t, dd, "d_date_sk"),
        );
        b.join(
            ctx.qcol(inv_t, inv, "inv_item_sk"),
            ctx.qcol(item_t, it, "i_item_sk"),
        );
        b.join(
            ctx.qcol(inv_t, inv, "inv_warehouse_sk"),
            ctx.qcol(wh_t, wh, "w_warehouse_sk"),
        );
        b.eq(ctx.qcol(dd_t, dd, "d_year"), ctx.sel_eq(dd_t, "d_year"));
        b.range(ctx.qcol(item_t, it, "i_current_price"), 0.2);
        b.group_by(ctx.qcol(wh_t, wh, "w_warehouse_name"));
        b.project(ctx.qcol(wh_t, wh, "w_warehouse_name"));
        b.project(ctx.qcol(inv_t, inv, "inv_quantity_on_hand"));
        b.order_by(ctx.qcol(wh_t, wh, "w_warehouse_name"));
        return b.build();
    }

    let fact_t = ctx.tid(f.table);
    let fs = b.scan(fact_t);
    let dd_t = ctx.tid("date_dim");
    let dd = b.scan(dd_t);
    b.join(
        ctx.qcol(fact_t, fs, f.date_sk),
        ctx.qcol(dd_t, dd, "d_date_sk"),
    );
    // Date filter: the official queries bucket dates many different ways.
    match qid % 5 {
        0 => {
            b.eq(ctx.qcol(dd_t, dd, "d_year"), ctx.sel_eq(dd_t, "d_year"));
        }
        1 => {
            b.eq(ctx.qcol(dd_t, dd, "d_year"), ctx.sel_eq(dd_t, "d_year"));
            b.eq(ctx.qcol(dd_t, dd, "d_moy"), ctx.sel_eq(dd_t, "d_moy"));
        }
        2 => {
            b.range(ctx.qcol(dd_t, dd, "d_month_seq"), 12.0 / 2_400.0);
        }
        3 => {
            b.eq(ctx.qcol(dd_t, dd, "d_year"), ctx.sel_eq(dd_t, "d_year"));
            b.eq(ctx.qcol(dd_t, dd, "d_qoy"), ctx.sel_eq(dd_t, "d_qoy"));
        }
        _ => {
            b.range(ctx.qcol(dd_t, dd, "d_date"), 30.0 / 73_049.0);
        }
    }

    // Item dimension for most queries.
    let item_t = ctx.tid("item");
    let mut item_slot = None;
    if !qid.is_multiple_of(5) {
        let it = b.scan(item_t);
        item_slot = Some(it);
        b.join(
            ctx.qcol(fact_t, fs, f.item_sk),
            ctx.qcol(item_t, it, "i_item_sk"),
        );
        match qid % 4 {
            0 => {
                b.eq(
                    ctx.qcol(item_t, it, "i_category"),
                    ctx.sel_eq(item_t, "i_category"),
                );
            }
            1 => {
                b.eq(
                    ctx.qcol(item_t, it, "i_manufact_id"),
                    ctx.sel_eq(item_t, "i_manufact_id"),
                );
            }
            2 => {
                b.filter(
                    ctx.qcol(item_t, it, "i_color"),
                    FilterKind::Equality,
                    3.0 * ctx.sel_eq(item_t, "i_color"),
                );
            }
            _ => {}
        }
    }

    // Customer path: customer (+ address or demographics).
    if qid % 3 != 1 {
        let cust_t = ctx.tid("customer");
        let cs = b.scan(cust_t);
        b.join(
            ctx.qcol(fact_t, fs, f.customer_sk),
            ctx.qcol(cust_t, cs, "c_customer_sk"),
        );
        if qid.is_multiple_of(2) {
            let ca_t = ctx.tid("customer_address");
            let ca = b.scan(ca_t);
            b.join(
                ctx.qcol(cust_t, cs, "c_current_addr_sk"),
                ctx.qcol(ca_t, ca, "ca_address_sk"),
            );
            if qid.is_multiple_of(6) {
                b.eq(ctx.qcol(ca_t, ca, "ca_state"), ctx.sel_eq(ca_t, "ca_state"));
            }
            b.group_by(ctx.qcol(ca_t, ca, "ca_state"));
            b.project(ctx.qcol(ca_t, ca, "ca_state"));
            b.order_by(ctx.qcol(ca_t, ca, "ca_state"));
        } else {
            let cd_t = ctx.tid("customer_demographics");
            let cd = b.scan(cd_t);
            b.join(
                ctx.qcol(cust_t, cs, "c_current_cdemo_sk"),
                ctx.qcol(cd_t, cd, "cd_demo_sk"),
            );
            b.eq(
                ctx.qcol(cd_t, cd, "cd_gender"),
                ctx.sel_eq(cd_t, "cd_gender"),
            );
            if qid.is_multiple_of(7) {
                b.eq(
                    ctx.qcol(cd_t, cd, "cd_marital_status"),
                    ctx.sel_eq(cd_t, "cd_marital_status"),
                );
            }
            b.project(ctx.qcol(cd_t, cd, "cd_education_status"));
        }
        if qid.is_multiple_of(8) {
            let hd_t = ctx.tid("household_demographics");
            let hd = b.scan(hd_t);
            b.join(
                ctx.qcol(cust_t, cs, "c_current_hdemo_sk"),
                ctx.qcol(hd_t, hd, "hd_demo_sk"),
            );
            if qid.is_multiple_of(16) {
                let ib_t = ctx.tid("income_band");
                let ib = b.scan(ib_t);
                b.join(
                    ctx.qcol(hd_t, hd, "hd_income_band_sk"),
                    ctx.qcol(ib_t, ib, "ib_income_band_sk"),
                );
            }
        }
        b.project(ctx.qcol(cust_t, cs, "c_last_name"));
    }

    // Outlet dimension (store / call center / web site).
    if qid % 4 != 2 {
        let od_t = ctx.tid(f.outlet_dim);
        let od = b.scan(od_t);
        b.join(
            ctx.qcol(fact_t, fs, f.outlet_sk),
            ctx.qcol(od_t, od, f.outlet_key),
        );
        b.group_by(ctx.qcol(od_t, od, f.outlet_attr));
        b.project(ctx.qcol(od_t, od, f.outlet_attr));
    }

    // Promotion occasionally.
    if qid % 10 == 5 {
        let p_t = ctx.tid("promotion");
        let ps = b.scan(p_t);
        b.join(
            ctx.qcol(fact_t, fs, f.promo_sk),
            ctx.qcol(p_t, ps, "p_promo_sk"),
        );
        b.eq(
            ctx.qcol(p_t, ps, "p_channel_email"),
            ctx.sel_eq(p_t, "p_channel_email"),
        );
    }

    // Returns join (sales-with-returns analyses).
    if qid % 6 == 2 {
        let r_t = ctx.tid(f.returns_table);
        let rs = b.scan(r_t);
        b.join(
            ctx.qcol(fact_t, fs, f.item_sk),
            ctx.qcol(r_t, rs, f.returns_item),
        );
        b.join(
            ctx.qcol(fact_t, fs, f.order_no),
            ctx.qcol(r_t, rs, f.returns_order),
        );
        b.project(ctx.qcol(r_t, rs, f.returns_amt));
        if qid % 12 == 2 {
            let re_t = ctx.tid("reason");
            let re = b.scan(re_t);
            let r_reason = match channel {
                Channel::Store => "sr_reason_sk",
                Channel::Catalog => "cr_reason_sk",
                _ => "wr_reason_sk",
            };
            b.join(
                ctx.qcol(r_t, rs, r_reason),
                ctx.qcol(re_t, re, "r_reason_sk"),
            );
        }
    }

    // Cross-channel comparison: second fact joined through item.
    if qid % 11 == 7 {
        if let Some(it) = item_slot {
            let other = fact(match channel {
                Channel::Store => Channel::Catalog,
                Channel::Catalog => Channel::Web,
                _ => Channel::Store,
            });
            let of_t = ctx.tid(other.table);
            let os = b.scan(of_t);
            b.join(
                ctx.qcol(item_t, it, "i_item_sk"),
                ctx.qcol(of_t, os, other.item_sk),
            );
            b.project(ctx.qcol(of_t, os, other.sales_price));
        }
    }

    // Fact-level measure filter for some queries.
    if qid % 7 == 3 {
        b.range(ctx.qcol(fact_t, fs, f.quantity), 0.25);
    }

    // Aggregated measures: the official queries aggregate different
    // combinations of the fact measures, which changes what a covering
    // index must carry per query.
    let measures = [f.quantity, f.sales_price, f.profit, f.order_no];
    b.project(ctx.qcol(fact_t, fs, measures[qid as usize % 4]));
    b.project(ctx.qcol(fact_t, fs, measures[(qid as usize + 1) % 4]));
    if let Some(it) = item_slot {
        let group_cols = ["i_category", "i_class", "i_brand", "i_manager_id"];
        let gc = group_cols[qid as usize % 4];
        if qid % 2 == 1 {
            b.group_by(ctx.qcol(item_t, it, gc));
            b.project(ctx.qcol(item_t, it, gc));
        } else if qid % 4 == 2 {
            b.order_by(ctx.qcol(item_t, it, gc));
            b.project(ctx.qcol(item_t, it, gc));
        }
    }
    // A couple of wider queries sample an extra small dimension.
    if qid % 13 == 4 {
        let sm_t = ctx.tid("ship_mode");
        if f.table != "store_sales" {
            let sm = b.scan(sm_t);
            let fk = if f.table == "catalog_sales" {
                "cs_ship_mode_sk"
            } else {
                "ws_ship_mode_sk"
            };
            b.join(
                ctx.qcol(fact_t, fs, fk),
                ctx.qcol(sm_t, sm, "sm_ship_mode_sk"),
            );
        }
    }
    b.build()
}

/// Generate the TPC-DS benchmark instance at scale factor `sf`.
pub fn generate(sf: f64) -> BenchmarkInstance {
    let schema = schema(sf);
    let ctx = Ctx { schema: &schema };
    let queries: Vec<Query> = (1..=99).map(|qid| build_query(&ctx, qid)).collect();
    let workload = Workload::new("TPC-DS", queries);
    workload
        .validate(&schema)
        .expect("generated TPC-DS queries must validate");
    BenchmarkInstance::new(schema, workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_99_valid_queries() {
        let inst = generate(10.0);
        assert_eq!(inst.workload.len(), 99);
        inst.workload.validate(&inst.schema).unwrap();
    }

    #[test]
    fn schema_has_24_tables() {
        assert_eq!(schema(10.0).len(), 24);
    }

    #[test]
    fn stats_are_near_table1() {
        let stats = generate(10.0).stats();
        // Paper: 99 queries, 24 tables, avg joins 7.7, scans 8.8.
        assert_eq!(stats.num_queries, 99);
        assert_eq!(stats.num_tables, 24);
        assert!(stats.avg_joins > 3.0 && stats.avg_joins < 9.0, "{stats:?}");
        assert!(stats.avg_scans > 4.0 && stats.avg_scans < 10.0, "{stats:?}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(10.0);
        let b = generate(10.0);
        for (qa, qb) in a.workload.queries.iter().zip(&b.workload.queries) {
            assert_eq!(qa.scans, qb.scans);
            assert_eq!(qa.joins.len(), qb.joins.len());
        }
    }

    #[test]
    fn channels_vary_across_queries() {
        let inst = generate(1.0);
        let ss = inst.schema.table_by_name("store_sales").unwrap();
        let ws = inst.schema.table_by_name("web_sales").unwrap();
        let uses = |t| {
            inst.workload
                .queries
                .iter()
                .filter(|q| q.scans.contains(&t))
                .count()
        };
        assert!(uses(ss) > 20);
        assert!(uses(ws) > 10);
    }
}
