//! Benchmark workload generators.
//!
//! Five workloads, matching Table 1 of the paper:
//!
//! | name  | queries | tables | notes |
//! |-------|---------|--------|-------|
//! | TPC-H  | 22 | 8     | real schema at sf=10, all 22 templates in mini-SQL |
//! | TPC-DS | 99 | 24    | real schema at sf=10, 99 spec-generated queries |
//! | JOB    | 33 | 21    | IMDB schema, 33 join-order-benchmark templates |
//! | Real-D | 32 | 7,912 | synthetic stand-in for the proprietary workload |
//! | Real-M | 317 | 474  | synthetic stand-in for the proprietary workload |
//!
//! TPC-H and JOB queries are authored in the mini-SQL subset and go through
//! the parser; structural simplifications versus the official text
//! (subqueries flattened to joins, `OR` arms reduced to one) are documented
//! per query and do not change the indexable-column structure materially.
//! Real-D/Real-M are seeded synthetic generators matching every Table 1
//! statistic; see `DESIGN.md` §2 for the substitution rationale.

pub mod job;
pub mod real;
pub mod synth;
pub mod tpcds;
pub mod tpch;

use crate::BenchmarkInstance;

/// The five benchmark workloads of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BenchmarkKind {
    TpcH,
    TpcDs,
    Job,
    RealD,
    RealM,
}

impl BenchmarkKind {
    pub const ALL: [BenchmarkKind; 5] = [
        BenchmarkKind::Job,
        BenchmarkKind::TpcH,
        BenchmarkKind::TpcDs,
        BenchmarkKind::RealD,
        BenchmarkKind::RealM,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkKind::TpcH => "TPC-H",
            BenchmarkKind::TpcDs => "TPC-DS",
            BenchmarkKind::Job => "JOB",
            BenchmarkKind::RealD => "Real-D",
            BenchmarkKind::RealM => "Real-M",
        }
    }

    /// Parse a workload name (case-insensitive, punctuation ignored).
    pub fn parse(s: &str) -> Option<Self> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match norm.as_str() {
            "tpch" => Some(BenchmarkKind::TpcH),
            "tpcds" => Some(BenchmarkKind::TpcDs),
            "job" => Some(BenchmarkKind::Job),
            "reald" => Some(BenchmarkKind::RealD),
            "realm" => Some(BenchmarkKind::RealM),
            _ => None,
        }
    }

    /// Whether the paper treats this as a "small" workload (JOB, TPC-H) with
    /// budgets 50..1000, versus 1000..5000 for the large ones.
    pub fn is_small(self) -> bool {
        matches!(self, BenchmarkKind::TpcH | BenchmarkKind::Job)
    }

    /// The budget grid the paper sweeps for this workload.
    pub fn budget_grid(self) -> &'static [usize] {
        if self.is_small() {
            &[50, 100, 200, 500, 1000]
        } else {
            &[1000, 2000, 3000, 4000, 5000]
        }
    }

    /// Generate the benchmark instance at its paper-default scale.
    pub fn generate(self) -> BenchmarkInstance {
        match self {
            BenchmarkKind::TpcH => tpch::generate(10.0),
            BenchmarkKind::TpcDs => tpcds::generate(10.0),
            BenchmarkKind::Job => job::generate(),
            BenchmarkKind::RealD => real::generate_real_d(),
            BenchmarkKind::RealM => real::generate_real_m(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(BenchmarkKind::parse("TPC-H"), Some(BenchmarkKind::TpcH));
        assert_eq!(BenchmarkKind::parse("tpcds"), Some(BenchmarkKind::TpcDs));
        assert_eq!(BenchmarkKind::parse("Real-D"), Some(BenchmarkKind::RealD));
        assert_eq!(BenchmarkKind::parse("real_m"), Some(BenchmarkKind::RealM));
        assert_eq!(BenchmarkKind::parse("job"), Some(BenchmarkKind::Job));
        assert_eq!(BenchmarkKind::parse("mystery"), None);
    }

    #[test]
    fn budget_grids_match_paper() {
        assert_eq!(
            BenchmarkKind::TpcH.budget_grid(),
            &[50, 100, 200, 500, 1000]
        );
        assert_eq!(
            BenchmarkKind::RealM.budget_grid(),
            &[1000, 2000, 3000, 4000, 5000]
        );
    }
}
