//! JOB — the Join Order Benchmark of Leis et al. (VLDB 2015): the 21-table
//! IMDB schema and the 33 query templates (one instance per template, as in
//! the paper), authored in the mini-SQL subset.
//!
//! Row counts follow the published IMDB snapshot (≈9.2 GB). Per the paper's
//! protocol we pick one instance (the "a" variant) per template.
//! Simplifications: `NOT LIKE`/`IS NULL` predicates become `<>` residuals,
//! and `OR` groups are reduced to `IN` lists or a single arm.

use crate::schema::{ColType, Schema, TableBuilder};
use crate::sql::parse_workload;
use crate::BenchmarkInstance;

/// Build the 21-table IMDB schema.
pub fn schema() -> Schema {
    let mut s = Schema::new();
    let t = |name: &str, rows: u64| TableBuilder::new(name, rows);

    s.add_table(
        t("title", 2_528_312)
            .key("id", ColType::Int)
            .col("title", ColType::VarChar(100), 2_300_000)
            .col("kind_id", ColType::Int, 7)
            .col("production_year", ColType::Int, 133)
            .col("episode_of_id", ColType::Int, 100_000)
            .col("season_nr", ColType::Int, 60)
            .col("episode_nr", ColType::Int, 2_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("movie_companies", 2_609_129)
            .key("id", ColType::Int)
            .col("movie_id", ColType::Int, 1_087_000)
            .col("company_id", ColType::Int, 234_997)
            .col("company_type_id", ColType::Int, 2)
            .col("note", ColType::VarChar(100), 130_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("cast_info", 36_244_344)
            .key("id", ColType::Int)
            .col("person_id", ColType::Int, 4_051_810)
            .col("movie_id", ColType::Int, 2_331_601)
            .col("person_role_id", ColType::Int, 3_140_339)
            .col("role_id", ColType::Int, 11)
            .col("note", ColType::VarChar(100), 500_000)
            .col("nr_order", ColType::Int, 1_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("movie_info", 14_835_720)
            .key("id", ColType::Int)
            .col("movie_id", ColType::Int, 2_468_825)
            .col("info_type_id", ColType::Int, 71)
            .col("info", ColType::VarChar(50), 2_720_930)
            .col("note", ColType::VarChar(50), 133_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("movie_info_idx", 1_380_035)
            .key("id", ColType::Int)
            .col("movie_id", ColType::Int, 459_925)
            .col("info_type_id", ColType::Int, 5)
            .col("info", ColType::VarChar(10), 10_694)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("movie_keyword", 4_523_930)
            .key("id", ColType::Int)
            .col("movie_id", ColType::Int, 476_794)
            .col("keyword_id", ColType::Int, 134_170)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("movie_link", 29_997)
            .key("id", ColType::Int)
            .col("movie_id", ColType::Int, 6_411)
            .col("linked_movie_id", ColType::Int, 15_616)
            .col("link_type_id", ColType::Int, 16)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("name", 4_167_491)
            .key("id", ColType::Int)
            .col("name", ColType::VarChar(60), 3_900_000)
            .col("gender", ColType::Char(1), 3)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("char_name", 3_140_339)
            .key("id", ColType::Int)
            .col("name", ColType::VarChar(60), 3_000_000)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("company_name", 234_997)
            .key("id", ColType::Int)
            .col("name", ColType::VarChar(60), 230_000)
            .col("country_code", ColType::Char(6), 235)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("company_type", 4)
            .key("id", ColType::Int)
            .col("kind", ColType::VarChar(32), 4)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("comp_cast_type", 4)
            .key("id", ColType::Int)
            .col("kind", ColType::VarChar(32), 4)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("complete_cast", 135_086)
            .key("id", ColType::Int)
            .col("movie_id", ColType::Int, 93_514)
            .col("subject_id", ColType::Int, 2)
            .col("status_id", ColType::Int, 2)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("info_type", 113)
            .key("id", ColType::Int)
            .col("info", ColType::VarChar(32), 113)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("keyword", 134_170)
            .key("id", ColType::Int)
            .col("keyword", ColType::VarChar(30), 134_170)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("kind_type", 7)
            .key("id", ColType::Int)
            .col("kind", ColType::VarChar(15), 7)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("link_type", 18)
            .key("id", ColType::Int)
            .col("link", ColType::VarChar(32), 18)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("role_type", 12)
            .key("id", ColType::Int)
            .col("role", ColType::VarChar(32), 12)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("aka_name", 901_343)
            .key("id", ColType::Int)
            .col("person_id", ColType::Int, 588_222)
            .col("name", ColType::VarChar(60), 889_999)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("aka_title", 361_472)
            .key("id", ColType::Int)
            .col("movie_id", ColType::Int, 220_000)
            .col("title", ColType::VarChar(100), 340_000)
            .col("kind_id", ColType::Int, 7)
            .build(),
    )
    .unwrap();
    s.add_table(
        t("person_info", 2_963_664)
            .key("id", ColType::Int)
            .col("person_id", ColType::Int, 550_721)
            .col("info_type_id", ColType::Int, 22)
            .col("info", ColType::VarChar(80), 2_700_000)
            .col("note", ColType::VarChar(30), 15_000)
            .build(),
    )
    .unwrap();
    s
}

/// The 33 JOB templates (variant "a" of each) in mini-SQL.
pub fn query_texts() -> Vec<(&'static str, &'static str)> {
    vec![
        ("1a", "SELECT MIN(mc.note), MIN(t.title), MIN(t.production_year) \
          FROM company_type ct, info_type it, movie_companies mc, movie_info_idx mi_idx, title t \
          WHERE ct.kind = 'production companies' AND it.info = 'top 250 rank' \
          AND mc.note <> 'as Metro-Goldwyn-Mayer Pictures' \
          AND t.id = mc.movie_id AND t.id = mi_idx.movie_id \
          AND mc.company_type_id = ct.id AND it.id = mi_idx.info_type_id"),
        ("2a", "SELECT MIN(t.title) \
          FROM company_name cn, keyword k, movie_companies mc, movie_keyword mk, title t \
          WHERE cn.country_code = 'de' AND k.keyword = 'character-name-in-title' \
          AND cn.id = mc.company_id AND mc.movie_id = t.id AND t.id = mk.movie_id \
          AND mk.keyword_id = k.id AND mc.movie_id = mk.movie_id"),
        ("3a", "SELECT MIN(t.title) \
          FROM keyword k, movie_info mi, movie_keyword mk, title t \
          WHERE k.keyword LIKE 'sequel%' AND mi.info IN ('Sweden', 'Norway', 'Germany', 'Denmark') \
          AND t.production_year > 2005 AND t.id = mi.movie_id AND t.id = mk.movie_id \
          AND mk.movie_id = mi.movie_id AND k.id = mk.keyword_id"),
        ("4a", "SELECT MIN(mi_idx.info), MIN(t.title) \
          FROM info_type it, keyword k, movie_info_idx mi_idx, movie_keyword mk, title t \
          WHERE it.info = 'rating' AND k.keyword LIKE 'sequel%' AND mi_idx.info > '5.0' \
          AND t.production_year > 2005 AND t.id = mi_idx.movie_id AND t.id = mk.movie_id \
          AND mk.movie_id = mi_idx.movie_id AND k.id = mk.keyword_id AND it.id = mi_idx.info_type_id"),
        ("5a", "SELECT MIN(t.title) \
          FROM company_type ct, info_type it, movie_companies mc, movie_info mi, title t \
          WHERE ct.kind = 'production companies' AND mc.note LIKE '%(theatrical)%' \
          AND mi.info IN ('Sweden', 'Norway', 'Germany', 'Denmark') AND t.production_year > 2005 \
          AND t.id = mi.movie_id AND t.id = mc.movie_id AND mc.movie_id = mi.movie_id \
          AND ct.id = mc.company_type_id AND it.id = mi.info_type_id"),
        ("6a", "SELECT MIN(k.keyword), MIN(n.name), MIN(t.title) \
          FROM cast_info ci, keyword k, movie_keyword mk, name n, title t \
          WHERE k.keyword = 'marvel-cinematic-universe' AND n.name LIKE '%Downey%Robert%' \
          AND t.production_year > 2010 AND k.id = mk.keyword_id AND t.id = mk.movie_id \
          AND t.id = ci.movie_id AND ci.movie_id = mk.movie_id AND n.id = ci.person_id"),
        ("7a", "SELECT MIN(n.name), MIN(t.title) \
          FROM aka_name an, cast_info ci, info_type it, link_type lt, movie_link ml, name n, person_info pi, title t \
          WHERE an.name LIKE '%a%' AND it.info = 'mini biography' AND lt.link = 'features' \
          AND n.gender = 'm' AND pi.note = 'Volker Boehm' AND t.production_year BETWEEN 1980 AND 1995 \
          AND n.id = an.person_id AND n.id = pi.person_id AND ci.person_id = n.id \
          AND t.id = ci.movie_id AND ml.linked_movie_id = t.id AND lt.id = ml.link_type_id \
          AND it.id = pi.info_type_id"),
        ("8a", "SELECT MIN(an1.name), MIN(t.title) \
          FROM aka_name an1, cast_info ci, company_name cn, movie_companies mc, name n1, role_type rt, title t \
          WHERE ci.note = '(voice: English version)' AND cn.country_code = 'jp' \
          AND mc.note LIKE '%(Japan)%' AND n1.name LIKE '%Yo%' AND rt.role = 'actress' \
          AND an1.person_id = n1.id AND n1.id = ci.person_id AND ci.movie_id = t.id \
          AND t.id = mc.movie_id AND mc.company_id = cn.id AND ci.role_id = rt.id \
          AND mc.movie_id = ci.movie_id"),
        ("9a", "SELECT MIN(an.name), MIN(chn.name), MIN(t.title) \
          FROM aka_name an, char_name chn, cast_info ci, company_name cn, movie_companies mc, name n, role_type rt, title t \
          WHERE ci.note IN ('(voice)', '(voice: Japanese version)', '(voice) (uncredited)') \
          AND cn.country_code = 'us' AND n.gender = 'f' AND rt.role = 'actress' \
          AND t.production_year BETWEEN 2005 AND 2015 AND ci.movie_id = t.id \
          AND t.id = mc.movie_id AND ci.movie_id = mc.movie_id AND mc.company_id = cn.id \
          AND ci.role_id = rt.id AND n.id = ci.person_id AND chn.id = ci.person_role_id \
          AND an.person_id = n.id"),
        ("10a", "SELECT MIN(chn.name), MIN(t.title) \
          FROM char_name chn, cast_info ci, company_name cn, company_type ct, movie_companies mc, role_type rt, title t \
          WHERE ci.note LIKE '%(voice)%' AND cn.country_code = 'ru' AND rt.role = 'actor' \
          AND t.production_year > 2005 AND t.id = mc.movie_id AND t.id = ci.movie_id \
          AND ci.movie_id = mc.movie_id AND chn.id = ci.person_role_id AND rt.id = ci.role_id \
          AND cn.id = mc.company_id AND ct.id = mc.company_type_id"),
        ("11a", "SELECT MIN(cn.name), MIN(lt.link), MIN(t.title) \
          FROM company_name cn, company_type ct, keyword k, link_type lt, movie_companies mc, movie_keyword mk, movie_link ml, title t \
          WHERE cn.country_code <> 'pl' AND ct.kind = 'production companies' \
          AND k.keyword = 'sequel' AND lt.link LIKE '%follow%' AND t.production_year BETWEEN 1950 AND 2000 \
          AND lt.id = ml.link_type_id AND ml.movie_id = t.id AND t.id = mk.movie_id \
          AND mk.keyword_id = k.id AND t.id = mc.movie_id AND mc.company_type_id = ct.id \
          AND mc.company_id = cn.id AND ml.movie_id = mk.movie_id"),
        ("12a", "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) \
          FROM company_name cn, company_type ct, info_type it1, info_type it2, movie_companies mc, movie_info mi, movie_info_idx mi_idx, title t \
          WHERE cn.country_code = 'us' AND ct.kind = 'production companies' \
          AND it1.info = 'genres' AND it2.info = 'rating' \
          AND mi.info IN ('Drama', 'Horror') AND mi_idx.info > '8.0' \
          AND t.production_year BETWEEN 2005 AND 2008 AND t.id = mi.movie_id \
          AND t.id = mi_idx.movie_id AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id \
          AND t.id = mc.movie_id AND ct.id = mc.company_type_id AND cn.id = mc.company_id \
          AND mc.movie_id = mi.movie_id AND mc.movie_id = mi_idx.movie_id"),
        ("13a", "SELECT MIN(mi.info), MIN(mi_idx.info), MIN(t.title) \
          FROM company_name cn, company_type ct, info_type it1, info_type it2, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, title t \
          WHERE cn.country_code = 'de' AND ct.kind = 'production companies' \
          AND it1.info = 'rating' AND it2.info = 'release dates' AND kt.kind = 'movie' \
          AND kt.id = t.kind_id AND t.id = mi.movie_id AND t.id = mi_idx.movie_id \
          AND t.id = mc.movie_id AND ct.id = mc.company_type_id AND cn.id = mc.company_id \
          AND mi.info_type_id = it2.id AND mi_idx.info_type_id = it1.id"),
        ("14a", "SELECT MIN(mi_idx.info), MIN(t.title) \
          FROM info_type it1, info_type it2, keyword k, kind_type kt, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t \
          WHERE it1.info = 'countries' AND it2.info = 'rating' \
          AND k.keyword IN ('murder', 'murder-in-title', 'blood', 'violence') \
          AND kt.kind = 'movie' AND mi.info IN ('Sweden', 'Germany', 'Denmark') \
          AND mi_idx.info < '8.5' AND t.production_year > 2010 AND kt.id = t.kind_id \
          AND t.id = mi.movie_id AND t.id = mk.movie_id AND t.id = mi_idx.movie_id \
          AND mk.keyword_id = k.id AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id"),
        ("15a", "SELECT MIN(mi.info), MIN(t.title) \
          FROM aka_title at, company_name cn, company_type ct, info_type it1, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, title t \
          WHERE cn.country_code = 'us' AND it1.info = 'release dates' \
          AND mc.note LIKE '%(200%)%' AND mi.note LIKE '%internet%' \
          AND t.production_year > 2000 AND t.id = at.movie_id AND t.id = mi.movie_id \
          AND t.id = mk.movie_id AND t.id = mc.movie_id AND mk.movie_id = mi.movie_id \
          AND mk.keyword_id = k.id AND mi.info_type_id = it1.id AND mc.company_id = cn.id \
          AND mc.company_type_id = ct.id"),
        ("16a", "SELECT MIN(an.name), MIN(t.title) \
          FROM aka_name an, cast_info ci, company_name cn, keyword k, movie_companies mc, movie_keyword mk, name n, title t \
          WHERE cn.country_code = 'us' AND k.keyword = 'character-name-in-title' \
          AND t.episode_nr >= 50 AND t.episode_nr < 100 AND an.person_id = n.id \
          AND n.id = ci.person_id AND ci.movie_id = t.id AND t.id = mk.movie_id \
          AND mk.keyword_id = k.id AND t.id = mc.movie_id AND mc.company_id = cn.id \
          AND ci.movie_id = mc.movie_id AND ci.movie_id = mk.movie_id"),
        ("17a", "SELECT MIN(n.name) \
          FROM cast_info ci, company_name cn, keyword k, movie_companies mc, movie_keyword mk, name n, title t \
          WHERE cn.country_code = 'us' AND k.keyword = 'character-name-in-title' \
          AND n.name LIKE 'B%' AND n.id = ci.person_id AND ci.movie_id = t.id \
          AND t.id = mk.movie_id AND mk.keyword_id = k.id AND t.id = mc.movie_id \
          AND mc.company_id = cn.id AND ci.movie_id = mc.movie_id"),
        ("18a", "SELECT MIN(mi.info), MIN(mi_idx.info), MIN(t.title) \
          FROM cast_info ci, info_type it1, info_type it2, movie_info mi, movie_info_idx mi_idx, name n, title t \
          WHERE ci.note IN ('(producer)', '(executive producer)') AND it1.info = 'budget' \
          AND it2.info = 'votes' AND n.gender = 'm' AND n.name LIKE '%Tim%' \
          AND t.id = mi.movie_id AND t.id = mi_idx.movie_id AND t.id = ci.movie_id \
          AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id AND n.id = ci.person_id"),
        ("19a", "SELECT MIN(n.name), MIN(t.title) \
          FROM aka_name an, char_name chn, cast_info ci, company_name cn, info_type it, movie_companies mc, movie_info mi, name n, role_type rt, title t \
          WHERE ci.note IN ('(voice)', '(voice: Japanese version)') AND cn.country_code = 'us' \
          AND it.info = 'release dates' AND mi.info LIKE 'Japan:%200%' AND n.gender = 'f' \
          AND rt.role = 'actress' AND t.production_year BETWEEN 2000 AND 2010 \
          AND t.id = mi.movie_id AND t.id = mc.movie_id AND t.id = ci.movie_id \
          AND mc.company_id = cn.id AND mi.info_type_id = it.id AND n.id = ci.person_id \
          AND rt.id = ci.role_id AND n.id = an.person_id AND chn.id = ci.person_role_id"),
        ("20a", "SELECT MIN(t.title) \
          FROM comp_cast_type cct1, comp_cast_type cct2, char_name chn, cast_info ci, complete_cast cc, keyword k, kind_type kt, movie_keyword mk, name n, title t \
          WHERE cct1.kind = 'cast' AND cct2.kind LIKE '%complete%' AND chn.name <> 'Sherlock Holmes' \
          AND k.keyword IN ('superhero', 'sequel', 'marvel-comics') AND kt.kind = 'movie' \
          AND t.production_year > 1950 AND kt.id = t.kind_id AND t.id = mk.movie_id \
          AND t.id = ci.movie_id AND t.id = cc.movie_id AND mk.movie_id = ci.movie_id \
          AND chn.id = ci.person_role_id AND n.id = ci.person_id AND mk.keyword_id = k.id \
          AND cct1.id = cc.subject_id AND cct2.id = cc.status_id"),
        ("21a", "SELECT MIN(cn.name), MIN(t.title) \
          FROM company_name cn, company_type ct, keyword k, link_type lt, movie_companies mc, movie_info mi, movie_keyword mk, movie_link ml, title t \
          WHERE cn.country_code <> 'pl' AND ct.kind = 'production companies' \
          AND k.keyword = 'sequel' AND lt.link LIKE '%follow%' \
          AND mi.info IN ('Sweden', 'Germany') AND t.production_year BETWEEN 1950 AND 2000 \
          AND lt.id = ml.link_type_id AND ml.movie_id = t.id AND t.id = mk.movie_id \
          AND mk.keyword_id = k.id AND t.id = mc.movie_id AND mc.company_type_id = ct.id \
          AND mc.company_id = cn.id AND mi.movie_id = t.id"),
        ("22a", "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) \
          FROM company_name cn, company_type ct, info_type it1, info_type it2, keyword k, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t \
          WHERE cn.country_code <> 'us' AND it1.info = 'countries' AND it2.info = 'rating' \
          AND k.keyword IN ('murder', 'murder-in-title', 'blood', 'violence') AND kt.kind IN ('movie', 'episode') \
          AND mi.info IN ('Germany', 'Swedish', 'German') AND mi_idx.info < '7.0' \
          AND t.production_year > 2008 AND kt.id = t.kind_id AND t.id = mi.movie_id \
          AND t.id = mk.movie_id AND t.id = mi_idx.movie_id AND t.id = mc.movie_id \
          AND mk.keyword_id = k.id AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id \
          AND ct.id = mc.company_type_id AND cn.id = mc.company_id"),
        ("23a", "SELECT MIN(kt.kind), MIN(t.title) \
          FROM comp_cast_type cct1, complete_cast cc, company_name cn, company_type ct, info_type it1, kind_type kt, movie_companies mc, movie_info mi, title t \
          WHERE cct1.kind = 'complete+verified' AND cn.country_code = 'us' \
          AND it1.info = 'release dates' AND kt.kind IN ('movie') AND mi.note LIKE '%internet%' \
          AND t.production_year > 2000 AND kt.id = t.kind_id AND t.id = mi.movie_id \
          AND t.id = mc.movie_id AND t.id = cc.movie_id AND mc.company_id = cn.id \
          AND mc.company_type_id = ct.id AND mi.info_type_id = it1.id AND cct1.id = cc.status_id"),
        ("24a", "SELECT MIN(chn.name), MIN(t.title) \
          FROM aka_name an, char_name chn, cast_info ci, company_name cn, info_type it, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, name n, role_type rt, title t \
          WHERE ci.note IN ('(voice)', '(voice: Japanese version)') AND cn.country_code = 'us' \
          AND it.info = 'release dates' AND k.keyword IN ('hero', 'martial-arts', 'hand-to-hand-combat') \
          AND mi.info LIKE 'Japan:%201%' AND n.gender = 'f' AND rt.role = 'actress' \
          AND t.production_year > 2010 AND t.id = mi.movie_id AND t.id = mc.movie_id \
          AND t.id = ci.movie_id AND t.id = mk.movie_id AND mc.company_id = cn.id \
          AND mi.info_type_id = it.id AND n.id = ci.person_id AND rt.id = ci.role_id \
          AND n.id = an.person_id AND chn.id = ci.person_role_id AND mk.keyword_id = k.id"),
        ("25a", "SELECT MIN(mi.info), MIN(mi_idx.info), MIN(n.name), MIN(t.title) \
          FROM cast_info ci, info_type it1, info_type it2, keyword k, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t \
          WHERE ci.note = '(writer)' AND it1.info = 'genres' AND it2.info = 'votes' \
          AND k.keyword IN ('murder', 'blood', 'gore', 'death', 'female-nudity') \
          AND mi.info = 'Horror' AND n.gender = 'm' AND t.id = mi.movie_id \
          AND t.id = mi_idx.movie_id AND t.id = ci.movie_id AND t.id = mk.movie_id \
          AND ci.person_id = n.id AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id \
          AND mk.keyword_id = k.id"),
        ("26a", "SELECT MIN(chn.name), MIN(mi_idx.info), MIN(t.title) \
          FROM comp_cast_type cct1, comp_cast_type cct2, char_name chn, cast_info ci, complete_cast cc, info_type it2, keyword k, kind_type kt, movie_info_idx mi_idx, movie_keyword mk, title t \
          WHERE cct1.kind = 'cast' AND cct2.kind LIKE '%complete%' AND chn.name LIKE '%man%' \
          AND it2.info = 'rating' AND k.keyword IN ('superhero', 'marvel-comics', 'fight') \
          AND kt.kind = 'movie' AND mi_idx.info > '7.0' AND t.production_year > 2000 \
          AND kt.id = t.kind_id AND t.id = mk.movie_id AND t.id = ci.movie_id \
          AND t.id = cc.movie_id AND t.id = mi_idx.movie_id AND chn.id = ci.person_role_id \
          AND mk.keyword_id = k.id AND cct1.id = cc.subject_id AND cct2.id = cc.status_id \
          AND mi_idx.info_type_id = it2.id"),
        ("27a", "SELECT MIN(cn.name), MIN(lt.link), MIN(t.title) \
          FROM comp_cast_type cct1, comp_cast_type cct2, company_name cn, company_type ct, complete_cast cc, keyword k, link_type lt, movie_companies mc, movie_info mi, movie_keyword mk, movie_link ml, title t \
          WHERE cct1.kind = 'cast' AND cct2.kind = 'complete' AND cn.country_code <> 'pl' \
          AND ct.kind = 'production companies' AND k.keyword = 'sequel' AND lt.link LIKE '%follow%' \
          AND mi.info IN ('Sweden', 'Germany') AND t.production_year BETWEEN 1950 AND 2000 \
          AND lt.id = ml.link_type_id AND ml.movie_id = t.id AND t.id = mk.movie_id \
          AND mk.keyword_id = k.id AND t.id = mc.movie_id AND mc.company_type_id = ct.id \
          AND mc.company_id = cn.id AND mi.movie_id = t.id AND t.id = cc.movie_id \
          AND cct1.id = cc.subject_id AND cct2.id = cc.status_id"),
        ("28a", "SELECT MIN(cn.name), MIN(mi_idx.info), MIN(t.title) \
          FROM comp_cast_type cct1, comp_cast_type cct2, company_name cn, company_type ct, complete_cast cc, info_type it1, info_type it2, keyword k, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t \
          WHERE cct1.kind = 'crew' AND cct2.kind <> 'complete+verified' AND cn.country_code <> 'us' \
          AND it1.info = 'countries' AND it2.info = 'rating' \
          AND k.keyword IN ('murder', 'murder-in-title', 'blood', 'violence') \
          AND kt.kind IN ('movie', 'episode') AND mi.info IN ('Sweden', 'Germany', 'Swedish', 'German') \
          AND mi_idx.info < '8.5' AND t.production_year > 2000 AND kt.id = t.kind_id \
          AND t.id = mi.movie_id AND t.id = mk.movie_id AND t.id = mi_idx.movie_id \
          AND t.id = mc.movie_id AND t.id = cc.movie_id AND mk.keyword_id = k.id \
          AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id \
          AND ct.id = mc.company_type_id AND cn.id = mc.company_id \
          AND cct1.id = cc.subject_id AND cct2.id = cc.status_id"),
        ("29a", "SELECT MIN(chn.name), MIN(n.name), MIN(t.title) \
          FROM aka_name an, comp_cast_type cct1, comp_cast_type cct2, char_name chn, cast_info ci, complete_cast cc, company_name cn, info_type it, info_type it3, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, name n, person_info pi, role_type rt, title t \
          WHERE cct1.kind = 'cast' AND cct2.kind = 'complete+verified' AND chn.name = 'Queen' \
          AND ci.note IN ('(voice)', '(voice) (uncredited)') AND cn.country_code = 'us' \
          AND it.info = 'release dates' AND it3.info = 'trivia' AND k.keyword = 'computer-animation' \
          AND n.gender = 'f' AND n.name LIKE '%An%' AND rt.role = 'actress' \
          AND t.title = 'Shrek 2' AND t.production_year BETWEEN 2000 AND 2010 \
          AND t.id = mi.movie_id AND t.id = mc.movie_id AND t.id = ci.movie_id \
          AND t.id = mk.movie_id AND t.id = cc.movie_id AND mc.company_id = cn.id \
          AND mi.info_type_id = it.id AND n.id = ci.person_id AND rt.id = ci.role_id \
          AND n.id = an.person_id AND chn.id = ci.person_role_id AND n.id = pi.person_id \
          AND pi.info_type_id = it3.id AND mk.keyword_id = k.id \
          AND cct1.id = cc.subject_id AND cct2.id = cc.status_id"),
        ("30a", "SELECT MIN(mi.info), MIN(mi_idx.info), MIN(n.name), MIN(t.title) \
          FROM comp_cast_type cct1, comp_cast_type cct2, cast_info ci, complete_cast cc, info_type it1, info_type it2, keyword k, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t \
          WHERE cct1.kind = 'cast' AND cct2.kind = 'complete+verified' \
          AND ci.note IN ('(writer)', '(head writer)', '(story)') AND it1.info = 'genres' \
          AND it2.info = 'votes' AND k.keyword IN ('murder', 'violence', 'blood') \
          AND mi.info IN ('Horror', 'Thriller') AND n.gender = 'm' AND t.production_year > 2000 \
          AND t.id = mi.movie_id AND t.id = mi_idx.movie_id AND t.id = ci.movie_id \
          AND t.id = mk.movie_id AND t.id = cc.movie_id AND ci.person_id = n.id \
          AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id AND mk.keyword_id = k.id \
          AND cct1.id = cc.subject_id AND cct2.id = cc.status_id"),
        ("31a", "SELECT MIN(mi.info), MIN(mi_idx.info), MIN(n.name), MIN(t.title) \
          FROM cast_info ci, company_name cn, info_type it1, info_type it2, keyword k, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t \
          WHERE ci.note IN ('(writer)', '(head writer)', '(story)') AND cn.name LIKE 'Lionsgate%' \
          AND it1.info = 'genres' AND it2.info = 'votes' \
          AND k.keyword IN ('murder', 'violence', 'blood') AND mi.info IN ('Horror', 'Thriller') \
          AND n.gender = 'm' AND t.id = mi.movie_id AND t.id = mi_idx.movie_id \
          AND t.id = ci.movie_id AND t.id = mk.movie_id AND t.id = mc.movie_id \
          AND ci.person_id = n.id AND mi.info_type_id = it1.id AND mi_idx.info_type_id = it2.id \
          AND mk.keyword_id = k.id AND mc.company_id = cn.id"),
        ("32a", "SELECT MIN(lt.link), MIN(t1.title), MIN(t2.title) \
          FROM keyword k, link_type lt, movie_keyword mk, movie_link ml, title t1, title t2 \
          WHERE k.keyword = '10,000-mile-club' AND mk.keyword_id = k.id AND t1.id = mk.movie_id \
          AND ml.movie_id = t1.id AND ml.linked_movie_id = t2.id AND lt.id = ml.link_type_id"),
        ("33a", "SELECT MIN(cn1.name), MIN(mi_idx2.info), MIN(t2.title) \
          FROM company_name cn1, company_name cn2, info_type it1, info_type it2, kind_type kt1, kind_type kt2, link_type lt, movie_companies mc1, movie_companies mc2, movie_info_idx mi_idx1, movie_info_idx mi_idx2, movie_link ml, title t1, title t2 \
          WHERE cn1.country_code = 'us' AND it1.info = 'rating' AND it2.info = 'rating' \
          AND kt1.kind = 'tv series' AND kt2.kind = 'tv series' AND lt.link IN ('sequel', 'follows', 'followed by') \
          AND mi_idx2.info < '3.0' AND t2.production_year BETWEEN 2005 AND 2008 \
          AND lt.id = ml.link_type_id AND t1.id = ml.movie_id AND t2.id = ml.linked_movie_id \
          AND it1.id = mi_idx1.info_type_id AND t1.id = mi_idx1.movie_id \
          AND kt1.id = t1.kind_id AND cn1.id = mc1.company_id AND t1.id = mc1.movie_id \
          AND it2.id = mi_idx2.info_type_id AND t2.id = mi_idx2.movie_id \
          AND kt2.id = t2.kind_id AND cn2.id = mc2.company_id AND t2.id = mc2.movie_id"),
    ]
}

/// Generate the JOB benchmark instance.
pub fn generate() -> BenchmarkInstance {
    let schema = schema();
    let workload =
        parse_workload(&schema, "JOB", &query_texts()).expect("JOB templates must parse");
    BenchmarkInstance::new(schema, workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_33_queries_parse_and_validate() {
        let inst = generate();
        assert_eq!(inst.workload.len(), 33);
        inst.workload.validate(&inst.schema).unwrap();
    }

    #[test]
    fn schema_has_21_tables() {
        assert_eq!(schema().len(), 21);
    }

    #[test]
    fn stats_are_near_table1() {
        let stats = generate().stats();
        // Paper: 33 queries, 21 tables, avg joins 7.9, scans 8.9, size 9.2GB.
        assert_eq!(stats.num_queries, 33);
        assert_eq!(stats.num_tables, 21);
        assert!(stats.avg_joins > 6.0 && stats.avg_joins < 10.5, "{stats:?}");
        assert!(stats.avg_scans > 7.0 && stats.avg_scans < 11.0, "{stats:?}");
        assert!(stats.size_gb > 4.0 && stats.size_gb < 16.0, "{stats:?}");
    }

    #[test]
    fn q32_self_joins_title() {
        let inst = generate();
        let q = inst
            .workload
            .queries
            .iter()
            .find(|q| q.name == "32a")
            .unwrap();
        let title = inst.schema.table_by_name("title").unwrap();
        assert_eq!(q.scans.iter().filter(|&&t| t == title).count(), 2);
    }
}
