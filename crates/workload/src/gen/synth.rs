//! Small random instances for unit, integration, and property tests.
//!
//! These are deliberately tiny (a handful of tables and queries) so that
//! exhaustive checks — brute-force optimal configurations, full budget
//! matrices — stay tractable in tests.

use crate::query::{QCol, Query, QueryBuilder};
use crate::schema::{ColType, Column, Schema, Table};
use crate::{BenchmarkInstance, Workload};
use ixtune_common::rng::derive;
use ixtune_common::{ColumnId, TableId};
use rand::prelude::IndexedRandom;
use rand::RngExt;

/// Knobs for [`generate`].
#[derive(Clone, Debug)]
pub struct SynthParams {
    pub seed: u64,
    pub num_tables: usize,
    pub num_queries: usize,
    /// Max scans per query (min is 1).
    pub max_scans: usize,
    /// Max filters per query.
    pub max_filters: usize,
}

impl Default for SynthParams {
    fn default() -> Self {
        Self {
            seed: 7,
            num_tables: 4,
            num_queries: 6,
            max_scans: 3,
            max_filters: 2,
        }
    }
}

/// Generate a random but valid instance.
pub fn generate(p: &SynthParams) -> BenchmarkInstance {
    let mut rng = derive(p.seed, "synth");
    let mut schema = Schema::new();
    for i in 0..p.num_tables.max(1) {
        let rows = 10u64.pow(rng.random_range(3..7u32));
        let ncols = rng.random_range(3..8usize);
        let mut cols = vec![Column::new("id", ColType::Int, rows)];
        for c in 1..ncols {
            let ndv = rng.random_range(2..rows.max(3));
            cols.push(Column::new(format!("c{c}"), ColType::Int, ndv));
        }
        schema
            .add_table(Table::new(format!("t{i}"), rows, cols))
            .unwrap();
    }

    let queries: Vec<Query> = (0..p.num_queries)
        .map(|qi| {
            let mut b = QueryBuilder::new(format!("q{qi}"));
            let nscans = rng.random_range(1..=p.max_scans.max(1));
            let mut slots = Vec::new();
            for s in 0..nscans {
                let t = TableId::from(rng.random_range(0..schema.len()));
                let slot = b.scan(t);
                if s > 0 {
                    // Join to a previous slot on random columns.
                    let &(pt, ps) = slots.choose(&mut rng).unwrap();
                    let pcols = schema.table(pt).columns.len();
                    let tcols = schema.table(t).columns.len();
                    b.join(
                        QCol::new(ps, ColumnId::from(rng.random_range(0..pcols))),
                        QCol::new(slot, ColumnId::from(rng.random_range(0..tcols))),
                    );
                }
                slots.push((t, slot));
            }
            let nfilters = rng.random_range(0..=p.max_filters);
            for _ in 0..nfilters {
                let &(t, slot) = slots.choose(&mut rng).unwrap();
                let ncols = schema.table(t).columns.len();
                let col = ColumnId::from(rng.random_range(0..ncols));
                let ndv = schema.table(t).col(col).ndv;
                b.eq(QCol::new(slot, col), (1.0 / ndv as f64).clamp(1e-9, 1.0));
            }
            // Project a couple of columns.
            for _ in 0..rng.random_range(1..4u8) {
                let &(t, slot) = slots.choose(&mut rng).unwrap();
                let ncols = schema.table(t).columns.len();
                b.project(QCol::new(slot, ColumnId::from(rng.random_range(0..ncols))));
            }
            b.build()
        })
        .collect();

    let workload = Workload::new(format!("synth-{}", p.seed), queries);
    workload.validate(&schema).expect("synth must validate");
    BenchmarkInstance::new(schema, workload)
}

/// Shorthand: default-shaped instance from a seed.
pub fn instance(seed: u64) -> BenchmarkInstance {
    generate(&SynthParams {
        seed,
        ..SynthParams::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_instances_across_seeds() {
        for seed in 0..20 {
            let inst = instance(seed);
            inst.workload.validate(&inst.schema).unwrap();
            assert!(!inst.workload.is_empty());
        }
    }

    #[test]
    fn respects_params() {
        let inst = generate(&SynthParams {
            seed: 1,
            num_tables: 9,
            num_queries: 13,
            max_scans: 2,
            max_filters: 1,
        });
        assert_eq!(inst.schema.len(), 9);
        assert_eq!(inst.workload.len(), 13);
        assert!(inst.workload.queries.iter().all(|q| q.num_scans() <= 2));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = instance(99);
        let b = instance(99);
        assert_eq!(a.workload.queries.len(), b.workload.queries.len());
        for (qa, qb) in a.workload.queries.iter().zip(&b.workload.queries) {
            assert_eq!(qa.scans, qb.scans);
        }
    }
}
