//! TPC-H: the real 8-table schema at a configurable scale factor, and all
//! 22 query templates authored in the mini-SQL subset.
//!
//! Structural simplifications versus the official text (noted per query):
//! correlated subqueries are flattened into joins, `OR` disjunction groups
//! are reduced to a representative arm, and `EXISTS`/`NOT EXISTS` become
//! inner joins / single-table filters. Each keeps the indexable-column
//! structure (filter/join/group/order/projection columns) of the original.

use crate::schema::{ColType, Schema, TableBuilder};
use crate::sql::parse_workload;
use crate::BenchmarkInstance;

/// Build the TPC-H schema at scale factor `sf` (the paper uses sf = 10).
pub fn schema(sf: f64) -> Schema {
    let sf = sf.max(0.01);
    let n = |base: f64| (base * sf).round().max(1.0) as u64;
    let mut s = Schema::new();

    s.add_table(
        TableBuilder::new("region", 5)
            .key("r_regionkey", ColType::Int)
            .col("r_name", ColType::Char(25), 5)
            .col("r_comment", ColType::VarChar(152), 5)
            .build(),
    )
    .unwrap();

    s.add_table(
        TableBuilder::new("nation", 25)
            .key("n_nationkey", ColType::Int)
            .col("n_name", ColType::Char(25), 25)
            .col("n_regionkey", ColType::Int, 5)
            .col("n_comment", ColType::VarChar(152), 25)
            .build(),
    )
    .unwrap();

    s.add_table(
        TableBuilder::new("supplier", n(10_000.0))
            .key("s_suppkey", ColType::Int)
            .col("s_name", ColType::Char(25), n(10_000.0))
            .col("s_address", ColType::VarChar(40), n(10_000.0))
            .col("s_nationkey", ColType::Int, 25)
            .col("s_phone", ColType::Char(15), n(10_000.0))
            .col("s_acctbal", ColType::Decimal, n(9_000.0))
            .col("s_comment", ColType::VarChar(101), n(10_000.0))
            .build(),
    )
    .unwrap();

    s.add_table(
        TableBuilder::new("customer", n(150_000.0))
            .key("c_custkey", ColType::Int)
            .col("c_name", ColType::VarChar(25), n(150_000.0))
            .col("c_address", ColType::VarChar(40), n(150_000.0))
            .col("c_nationkey", ColType::Int, 25)
            .col("c_phone", ColType::Char(15), n(150_000.0))
            .col("c_acctbal", ColType::Decimal, n(140_000.0))
            .col("c_mktsegment", ColType::Char(10), 5)
            .col("c_comment", ColType::VarChar(117), n(150_000.0))
            .build(),
    )
    .unwrap();

    s.add_table(
        TableBuilder::new("part", n(200_000.0))
            .key("p_partkey", ColType::Int)
            .col("p_name", ColType::VarChar(55), n(200_000.0))
            .col("p_mfgr", ColType::Char(25), 5)
            .col("p_brand", ColType::Char(10), 25)
            .col("p_type", ColType::VarChar(25), 150)
            .col("p_size", ColType::Int, 50)
            .col("p_container", ColType::Char(10), 40)
            .col("p_retailprice", ColType::Decimal, n(20_000.0))
            .col("p_comment", ColType::VarChar(23), n(130_000.0))
            .build(),
    )
    .unwrap();

    s.add_table(
        TableBuilder::new("partsupp", n(800_000.0))
            .col("ps_partkey", ColType::Int, n(200_000.0))
            .col("ps_suppkey", ColType::Int, n(10_000.0))
            .col("ps_availqty", ColType::Int, 9_999)
            .col("ps_supplycost", ColType::Decimal, 99_901)
            .col("ps_comment", ColType::VarChar(199), n(800_000.0))
            .build(),
    )
    .unwrap();

    s.add_table(
        TableBuilder::new("orders", n(1_500_000.0))
            .key("o_orderkey", ColType::Int)
            .col("o_custkey", ColType::Int, n(100_000.0))
            .col("o_orderstatus", ColType::Char(1), 3)
            .col("o_totalprice", ColType::Decimal, n(1_400_000.0))
            .col("o_orderdate", ColType::Date, 2_406)
            .col("o_orderpriority", ColType::Char(15), 5)
            .col("o_clerk", ColType::Char(15), n(1_000.0))
            .col("o_shippriority", ColType::Int, 1)
            .col("o_comment", ColType::VarChar(79), n(1_500_000.0))
            .build(),
    )
    .unwrap();

    s.add_table(
        TableBuilder::new("lineitem", n(6_000_000.0))
            .col("l_orderkey", ColType::Int, n(1_500_000.0))
            .col("l_partkey", ColType::Int, n(200_000.0))
            .col("l_suppkey", ColType::Int, n(10_000.0))
            .col("l_linenumber", ColType::Int, 7)
            .col("l_quantity", ColType::Decimal, 50)
            .col("l_extendedprice", ColType::Decimal, n(900_000.0))
            .col("l_discount", ColType::Decimal, 11)
            .col("l_tax", ColType::Decimal, 9)
            .col("l_returnflag", ColType::Char(1), 3)
            .col("l_linestatus", ColType::Char(1), 2)
            .col("l_shipdate", ColType::Date, 2_526)
            .col("l_commitdate", ColType::Date, 2_466)
            .col("l_receiptdate", ColType::Date, 2_555)
            .col("l_shipinstruct", ColType::Char(25), 4)
            .col("l_shipmode", ColType::Char(10), 7)
            .col("l_comment", ColType::VarChar(44), n(4_500_000.0))
            .build(),
    )
    .unwrap();

    s
}

/// The 22 TPC-H query templates in mini-SQL, with structural
/// simplifications documented inline.
pub fn query_texts() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "q1",
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), \
             SUM(l_extendedprice * (1 - l_discount)), AVG(l_quantity), COUNT(*) \
             FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
        ),
        (
            // Correlated min-cost subquery flattened to the outer join block.
            "q2",
            "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone \
             FROM part, supplier, partsupp, nation, region \
             WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15 \
             AND p_type LIKE '%BRASS' AND s_nationkey = n_nationkey \
             AND n_regionkey = r_regionkey AND r_name = 'EUROPE' \
             ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100",
        ),
        (
            "q3",
            "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)), o_orderdate, o_shippriority \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
             AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
             GROUP BY l_orderkey, o_orderdate, o_shippriority ORDER BY o_orderdate LIMIT 10",
        ),
        (
            // EXISTS(lineitem ...) flattened to an inner join.
            "q4",
            "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem \
             WHERE l_orderkey = o_orderkey AND o_orderdate >= DATE '1993-07-01' \
             AND o_orderdate < DATE '1993-10-01' AND l_commitdate < l_receiptdate \
             GROUP BY o_orderpriority ORDER BY o_orderpriority",
        ),
        (
            "q5",
            "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) \
             FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey \
             AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey \
             AND n_regionkey = r_regionkey AND r_name = 'ASIA' \
             AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01' \
             GROUP BY n_name ORDER BY SUM(l_extendedprice) DESC",
        ),
        (
            "q6",
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
             WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        ),
        (
            // Nation-pair OR reduced to one direction.
            "q7",
            "SELECT n1.n_name, n2.n_name, SUM(l_extendedprice * (1 - l_discount)) \
             FROM supplier, lineitem, orders, customer, nation n1, nation n2 \
             WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey \
             AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey \
             AND n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY' \
             AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
             GROUP BY n1.n_name, n2.n_name",
        ),
        (
            "q8",
            "SELECT o_orderdate, SUM(l_extendedprice * (1 - l_discount)) \
             FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
             WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey \
             AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey \
             AND n1.n_regionkey = r_regionkey AND r_name = 'AMERICA' \
             AND s_nationkey = n2.n_nationkey \
             AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
             AND p_type = 'ECONOMY ANODIZED STEEL' GROUP BY o_orderdate ORDER BY o_orderdate",
        ),
        (
            "q9",
            "SELECT n_name, o_orderdate, SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) \
             FROM part, supplier, lineitem, partsupp, orders, nation \
             WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
             AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
             AND p_name LIKE '%green%' GROUP BY n_name, o_orderdate ORDER BY n_name, o_orderdate DESC",
        ),
        (
            "q10",
            "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)), c_acctbal, \
             n_name, c_address, c_phone \
             FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
             AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' \
             AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
             GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address \
             ORDER BY SUM(l_extendedprice) DESC LIMIT 20",
        ),
        (
            // HAVING-threshold subquery dropped (value-only simplification).
            "q11",
            "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) FROM partsupp, supplier, nation \
             WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY' \
             GROUP BY ps_partkey ORDER BY SUM(ps_supplycost) DESC",
        ),
        (
            "q12",
            "SELECT l_shipmode, COUNT(*) FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') \
             AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
             AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01' \
             GROUP BY l_shipmode ORDER BY l_shipmode",
        ),
        (
            // Left outer join simplified to inner; NOT LIKE to `<>`.
            "q13",
            "SELECT c_custkey, COUNT(o_orderkey) FROM customer, orders \
             WHERE c_custkey = o_custkey AND o_comment <> 'special requests' \
             GROUP BY c_custkey",
        ),
        (
            "q14",
            "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part \
             WHERE l_partkey = p_partkey AND l_shipdate >= DATE '1995-09-01' \
             AND l_shipdate < DATE '1995-10-01' AND p_type LIKE 'PROMO%'",
        ),
        (
            // revenue view flattened.
            "q15",
            "SELECT s_suppkey, s_name, s_address, s_phone, SUM(l_extendedprice * (1 - l_discount)) \
             FROM supplier, lineitem WHERE s_suppkey = l_suppkey \
             AND l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' \
             GROUP BY s_suppkey, s_name, s_address, s_phone",
        ),
        (
            // NOT IN supplier subquery dropped.
            "q16",
            "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) FROM partsupp, part \
             WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45' \
             AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) \
             GROUP BY p_brand, p_type, p_size ORDER BY p_brand, p_type, p_size",
        ),
        (
            // avg-quantity correlated subquery folded into the constant.
            "q17",
            "SELECT SUM(l_extendedprice) FROM lineitem, part \
             WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' \
             AND p_container = 'MED BOX' AND l_quantity < 3",
        ),
        (
            // IN (group-by having) subquery folded into the totalprice filter.
            "q18",
            "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) \
             FROM customer, orders, lineitem \
             WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND o_totalprice > 450000 \
             GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
             ORDER BY o_totalprice DESC, o_orderdate LIMIT 100",
        ),
        (
            // Three OR arms reduced to the SM arm.
            "q19",
            "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part \
             WHERE p_partkey = l_partkey AND p_brand = 'Brand#12' \
             AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
             AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5 \
             AND l_shipmode IN ('AIR', 'AIR REG') AND l_shipinstruct = 'DELIVER IN PERSON'",
        ),
        (
            // Nested IN chain flattened to joins.
            "q20",
            "SELECT s_name, s_address FROM supplier, nation, partsupp, part \
             WHERE s_suppkey = ps_suppkey AND ps_partkey = p_partkey \
             AND p_name LIKE 'forest%' AND s_nationkey = n_nationkey AND n_name = 'CANADA' \
             AND ps_availqty > 100 ORDER BY s_name",
        ),
        (
            // EXISTS/NOT EXISTS lineitem pair dropped; core join kept.
            "q21",
            "SELECT s_name, COUNT(*) FROM supplier, lineitem l1, orders, nation \
             WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey \
             AND o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate \
             AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' \
             GROUP BY s_name ORDER BY COUNT(*) DESC, s_name LIMIT 100",
        ),
        (
            // NOT EXISTS(orders) anti-join dropped; substring() on phone
            // becomes a prefix LIKE.
            "q22",
            "SELECT c_phone, COUNT(*), SUM(c_acctbal) FROM customer \
             WHERE c_acctbal > 0.00 AND c_phone LIKE '13%' GROUP BY c_phone",
        ),
    ]
}

/// Generate the TPC-H benchmark instance at scale factor `sf`.
pub fn generate(sf: f64) -> BenchmarkInstance {
    let schema = schema(sf);
    let workload =
        parse_workload(&schema, "TPC-H", &query_texts()).expect("TPC-H templates must parse");
    BenchmarkInstance::new(schema, workload)
}

/// Generate a *multi-instance* TPC-H workload: `instances` instances per
/// template, differing (as real instances do) in their literal
/// selectivities. The paper tunes one instance per template and points at
/// workload compression for the multi-instance case; pairing this
/// generator with [`compress`](crate::compress::compress) reproduces that
/// protocol end to end.
pub fn generate_multi(sf: f64, instances: usize, seed: u64) -> BenchmarkInstance {
    use ixtune_common::rng::derive;
    use rand::RngExt;

    let base = generate(sf);
    let mut rng = derive(seed, "tpch-multi");
    let mut queries = Vec::with_capacity(base.workload.len() * instances);
    for template in &base.workload.queries {
        for i in 0..instances.max(1) {
            let mut q = template.clone();
            q.name = format!("{}#{i}", template.name);
            for f in q.filters.iter_mut() {
                // Different literals: scale the selectivity by ×/÷ up to 3,
                // clamped to a valid fraction.
                let factor = 3f64.powf(rng.random::<f64>() * 2.0 - 1.0);
                f.selectivity = (f.selectivity * factor).clamp(1e-9, 1.0);
            }
            queries.push(q);
        }
    }
    let workload = crate::Workload::new("TPC-H (multi-instance)", queries);
    BenchmarkInstance::new(base.schema, workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_22_queries_parse_and_validate() {
        let inst = generate(10.0);
        assert_eq!(inst.workload.len(), 22);
        inst.workload.validate(&inst.schema).unwrap();
    }

    #[test]
    fn schema_shape() {
        let s = schema(10.0);
        assert_eq!(s.len(), 8);
        let li = s.table(s.table_by_name("lineitem").unwrap());
        assert_eq!(li.rows, 60_000_000);
        assert_eq!(li.columns.len(), 16);
    }

    #[test]
    fn stats_are_near_table1() {
        let inst = generate(10.0);
        let stats = inst.stats();
        assert_eq!(stats.num_queries, 22);
        assert_eq!(stats.num_tables, 8);
        // Paper: avg joins 2.8, avg scans 3.7. Our simplifications land close.
        assert!(stats.avg_joins > 1.5 && stats.avg_joins < 4.0, "{stats:?}");
        assert!(stats.avg_scans > 2.5 && stats.avg_scans < 5.0, "{stats:?}");
    }

    #[test]
    fn scale_factor_scales_rows() {
        let s1 = schema(1.0);
        let s10 = schema(10.0);
        let li1 = s1.table(s1.table_by_name("lineitem").unwrap()).rows;
        let li10 = s10.table(s10.table_by_name("lineitem").unwrap()).rows;
        assert_eq!(li10, li1 * 10);
    }

    #[test]
    fn q7_self_joins_nation() {
        let inst = generate(1.0);
        let q7 = &inst.workload.queries[6];
        let nation = inst.schema.table_by_name("nation").unwrap();
        let nation_scans = q7.scans.iter().filter(|&&t| t == nation).count();
        assert_eq!(nation_scans, 2);
    }
}
