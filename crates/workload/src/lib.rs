//! Schema and workload model for ixtune.
//!
//! This crate is the "workload parsing/analysis" box of the index-tuning
//! architecture (Figure 1 in the paper): it defines the database schema
//! model with the statistics the cost model needs ([`schema`]), the
//! structural query/workload model ([`query`]), a mini-SQL front end
//! ([`sql`]), Table 1-style workload statistics ([`stats`]), and the five
//! benchmark workload generators ([`gen`]): TPC-H, TPC-DS, JOB, and the
//! synthetic stand-ins for the paper's proprietary Real-D and Real-M
//! workloads.
//!
//! # Example
//!
//! ```
//! use ixtune_workload::{ColType, Schema, TableBuilder};
//! use ixtune_workload::sql::parse_query;
//!
//! let mut schema = Schema::new();
//! schema.add_table(
//!     TableBuilder::new("users", 1_000_000)
//!         .key("id", ColType::Int)
//!         .col("country", ColType::Char(2), 200)
//!         .build(),
//! ).unwrap();
//!
//! let q = parse_query(&schema, "q", "SELECT id FROM users WHERE country = 'DE'").unwrap();
//! assert_eq!(q.num_scans(), 1);
//! assert_eq!(q.filters.len(), 1);
//! // Equality selectivity comes from the column's NDV: 1/200.
//! assert!((q.filters[0].selectivity - 0.005).abs() < 1e-12);
//! ```

pub mod compress;
pub mod gen;
pub mod query;
pub mod schema;
pub mod sql;
pub mod stats;

pub use query::{Filter, FilterKind, JoinEdge, QCol, Query, QueryBuilder, ScanSlot, Workload};
pub use schema::{ColType, Column, Schema, Table, TableBuilder};
pub use stats::WorkloadStats;

/// A schema plus the workload defined over it: everything a tuning session
/// takes as input.
#[derive(Clone, Debug)]
pub struct BenchmarkInstance {
    pub schema: Schema,
    pub workload: Workload,
}

impl BenchmarkInstance {
    pub fn new(schema: Schema, workload: Workload) -> Self {
        Self { schema, workload }
    }

    /// Table 1-style statistics for this instance.
    pub fn stats(&self) -> WorkloadStats {
        WorkloadStats::compute(&self.schema, &self.workload)
    }
}
