//! Query and workload model.
//!
//! A [`Query`] is the structural skeleton an index tuner needs: which base
//! tables are scanned (possibly more than once — self joins), the filter
//! predicates with selectivities, the join graph, grouping/ordering columns,
//! and the projected columns (which decide whether an index can *cover* the
//! query). Everything else about SQL (expressions, aggregation semantics,
//! nested subqueries) is irrelevant to what-if costing at this level and is
//! deliberately absent, mirroring the workload-analysis stage of Figure 1 in
//! the paper.

use crate::schema::Schema;
use ixtune_common::{ColumnId, Error, QueryId, Result, TableId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A scan slot: one occurrence of a base table in a query's FROM list.
/// Self-joins produce multiple slots over the same [`TableId`].
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ScanSlot(pub u16);

impl ScanSlot {
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ScanSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A column of one scan slot: `(slot, column-within-table)`.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QCol {
    pub scan: ScanSlot,
    pub column: ColumnId,
}

impl QCol {
    pub const fn new(scan: ScanSlot, column: ColumnId) -> Self {
        Self { scan, column }
    }
}

/// The kind of a filter predicate. The tuner cares only about whether an
/// index can *seek* on the predicate (equality and range can; the leading
/// position rules differ) — see the indexable-column taxonomy of §2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterKind {
    /// `col = literal` (also `IN` with a short literal list).
    Equality,
    /// `col < / <= / > / >= / BETWEEN` literal(s).
    Range,
    /// `col LIKE 'prefix%'` — seekable like a range on the prefix.
    Like,
    /// Non-seekable predicate (`<>`, `LIKE '%x%'`, complex expressions):
    /// reduces cardinality but cannot drive an index seek.
    Residual,
}

/// A filter predicate on a single column with its estimated selectivity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    pub col: QCol,
    pub kind: FilterKind,
    /// Fraction of rows satisfying the predicate, in `(0, 1]`.
    pub selectivity: f64,
}

/// An equi-join edge between two scan slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinEdge {
    pub left: QCol,
    pub right: QCol,
}

/// A single query: the unit the tuner issues what-if calls for.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Query {
    pub name: String,
    /// FROM-list occurrences in join order (left-deep evaluation order).
    pub scans: Vec<TableId>,
    pub filters: Vec<Filter>,
    pub joins: Vec<JoinEdge>,
    pub group_by: Vec<QCol>,
    pub order_by: Vec<QCol>,
    /// Columns appearing in the SELECT list (payload for covering indexes).
    pub projection: Vec<QCol>,
    /// Relative frequency/weight of the query in the workload.
    pub weight: f64,
}

impl Query {
    /// Base table of a scan slot.
    #[inline]
    pub fn table_of(&self, slot: ScanSlot) -> TableId {
        self.scans[slot.index()]
    }

    /// Number of scan slots.
    #[inline]
    pub fn num_scans(&self) -> usize {
        self.scans.len()
    }

    /// Number of join edges.
    #[inline]
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    /// Filters constraining a given scan slot.
    pub fn filters_on(&self, slot: ScanSlot) -> impl Iterator<Item = &Filter> {
        self.filters.iter().filter(move |f| f.col.scan == slot)
    }

    /// Join edges incident to a given scan slot, yielding the local column.
    pub fn join_cols_on(&self, slot: ScanSlot) -> impl Iterator<Item = ColumnId> + '_ {
        self.joins.iter().flat_map(move |j| {
            let mut out = [None, None];
            if j.left.scan == slot {
                out[0] = Some(j.left.column);
            }
            if j.right.scan == slot {
                out[1] = Some(j.right.column);
            }
            out.into_iter().flatten()
        })
    }

    /// All columns of `slot` referenced anywhere in the query (filters,
    /// joins, group-by, order-by, projection). An index on `slot`'s table
    /// whose key+included columns cover this set makes the access path
    /// *index-only* for this query.
    pub fn referenced_columns(&self, slot: ScanSlot) -> BTreeSet<ColumnId> {
        let mut cols = BTreeSet::new();
        for f in self.filters_on(slot) {
            cols.insert(f.col.column);
        }
        for c in self.join_cols_on(slot) {
            cols.insert(c);
        }
        for qc in self
            .group_by
            .iter()
            .chain(&self.order_by)
            .chain(&self.projection)
        {
            if qc.scan == slot {
                cols.insert(qc.column);
            }
        }
        cols
    }

    /// Combined selectivity of all filters on `slot` (independence
    /// assumption, clamped below to avoid zero cardinalities).
    pub fn scan_selectivity(&self, slot: ScanSlot) -> f64 {
        let s: f64 = self.filters_on(slot).map(|f| f.selectivity).product();
        s.clamp(1e-9, 1.0)
    }

    /// Check internal consistency against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        let check = |qc: &QCol, what: &str| -> Result<()> {
            let slot = qc.scan.index();
            if slot >= self.scans.len() {
                return Err(Error::Invalid(format!(
                    "query {}: {what} references missing scan slot {slot}",
                    self.name
                )));
            }
            let table = schema.table(self.scans[slot]);
            if qc.column.index() >= table.columns.len() {
                return Err(Error::Invalid(format!(
                    "query {}: {what} references missing column {} of table {}",
                    self.name, qc.column, table.name
                )));
            }
            Ok(())
        };
        for t in &self.scans {
            if t.index() >= schema.len() {
                return Err(Error::Invalid(format!(
                    "query {}: scan of missing table {t}",
                    self.name
                )));
            }
        }
        for f in &self.filters {
            check(&f.col, "filter")?;
            if !(f.selectivity > 0.0 && f.selectivity <= 1.0) {
                return Err(Error::Invalid(format!(
                    "query {}: filter selectivity {} out of (0,1]",
                    self.name, f.selectivity
                )));
            }
        }
        for j in &self.joins {
            check(&j.left, "join")?;
            check(&j.right, "join")?;
        }
        for (qc, what) in self
            .group_by
            .iter()
            .map(|c| (c, "group-by"))
            .chain(self.order_by.iter().map(|c| (c, "order-by")))
            .chain(self.projection.iter().map(|c| (c, "projection")))
        {
            check(qc, what)?;
        }
        if self.weight <= 0.0 {
            return Err(Error::Invalid(format!(
                "query {}: non-positive weight",
                self.name
            )));
        }
        Ok(())
    }
}

/// Fluent builder used by the workload generators.
pub struct QueryBuilder {
    q: Query,
}

impl QueryBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            q: Query {
                name: name.into(),
                scans: Vec::new(),
                filters: Vec::new(),
                joins: Vec::new(),
                group_by: Vec::new(),
                order_by: Vec::new(),
                projection: Vec::new(),
                weight: 1.0,
            },
        }
    }

    /// Add a FROM occurrence; returns its slot.
    pub fn scan(&mut self, table: TableId) -> ScanSlot {
        let slot = ScanSlot(self.q.scans.len() as u16);
        self.q.scans.push(table);
        slot
    }

    pub fn filter(&mut self, col: QCol, kind: FilterKind, selectivity: f64) -> &mut Self {
        self.q.filters.push(Filter {
            col,
            kind,
            selectivity,
        });
        self
    }

    pub fn eq(&mut self, col: QCol, selectivity: f64) -> &mut Self {
        self.filter(col, FilterKind::Equality, selectivity)
    }

    pub fn range(&mut self, col: QCol, selectivity: f64) -> &mut Self {
        self.filter(col, FilterKind::Range, selectivity)
    }

    pub fn join(&mut self, left: QCol, right: QCol) -> &mut Self {
        self.q.joins.push(JoinEdge { left, right });
        self
    }

    pub fn group_by(&mut self, col: QCol) -> &mut Self {
        self.q.group_by.push(col);
        self
    }

    pub fn order_by(&mut self, col: QCol) -> &mut Self {
        self.q.order_by.push(col);
        self
    }

    pub fn project(&mut self, col: QCol) -> &mut Self {
        self.q.projection.push(col);
        self
    }

    pub fn weight(&mut self, w: f64) -> &mut Self {
        self.q.weight = w;
        self
    }

    pub fn build(self) -> Query {
        self.q
    }
}

/// A workload: a named set of queries over one schema.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Workload {
    pub name: String,
    pub queries: Vec<Query>,
}

impl Workload {
    pub fn new(name: impl Into<String>, queries: Vec<Query>) -> Self {
        Self {
            name: name.into(),
            queries,
        }
    }

    pub fn len(&self) -> usize {
        self.queries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    pub fn query(&self, id: QueryId) -> &Query {
        &self.queries[id.index()]
    }

    /// Iterate `(id, query)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &Query)> {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, q)| (QueryId::from(i), q))
    }

    /// Validate every query against the schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        self.queries.iter().try_for_each(|q| q.validate(schema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Schema, TableBuilder};

    fn two_table_schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("r", 1000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 100)
                .build(),
        )
        .unwrap();
        s.add_table(
            TableBuilder::new("s", 5000)
                .key("c", ColType::Int)
                .col("d", ColType::Int, 300)
                .build(),
        )
        .unwrap();
        s
    }

    /// The Q1 of the paper's Figure 3 running example:
    /// `SELECT a, d FROM R, S WHERE R.b = S.c AND R.a = 5 AND S.d > 200`.
    pub(crate) fn figure3_q1(schema: &Schema) -> Query {
        let r = schema.table_by_name("r").unwrap();
        let s = schema.table_by_name("s").unwrap();
        let mut b = QueryBuilder::new("Q1");
        let rs = b.scan(r);
        let ss = b.scan(s);
        let ra = QCol::new(rs, ColumnId::from(0usize));
        let rb = QCol::new(rs, ColumnId::from(1usize));
        let sc = QCol::new(ss, ColumnId::from(0usize));
        let sd = QCol::new(ss, ColumnId::from(1usize));
        b.eq(ra, 0.001)
            .range(sd, 0.2)
            .join(rb, sc)
            .project(ra)
            .project(sd);
        b.build()
    }

    use ixtune_common::ColumnId;

    #[test]
    fn builder_and_accessors() {
        let schema = two_table_schema();
        let q = figure3_q1(&schema);
        assert_eq!(q.num_scans(), 2);
        assert_eq!(q.num_joins(), 1);
        let r_slot = ScanSlot(0);
        let s_slot = ScanSlot(1);
        assert_eq!(q.filters_on(r_slot).count(), 1);
        assert_eq!(q.filters_on(s_slot).count(), 1);
        let r_join: Vec<ColumnId> = q.join_cols_on(r_slot).collect();
        assert_eq!(r_join, vec![ColumnId::new(1)]);
        q.validate(&schema).unwrap();
    }

    #[test]
    fn referenced_columns_cover_all_clauses() {
        let schema = two_table_schema();
        let q = figure3_q1(&schema);
        let r_cols = q.referenced_columns(ScanSlot(0));
        // a (filter + projection), b (join)
        assert_eq!(
            r_cols.into_iter().collect::<Vec<_>>(),
            vec![ColumnId::new(0), ColumnId::new(1)]
        );
        let s_cols = q.referenced_columns(ScanSlot(1));
        // c (join), d (filter + projection)
        assert_eq!(s_cols.len(), 2);
    }

    #[test]
    fn scan_selectivity_multiplies() {
        let schema = two_table_schema();
        let r = schema.table_by_name("r").unwrap();
        let mut b = QueryBuilder::new("q");
        let slot = b.scan(r);
        b.eq(QCol::new(slot, ColumnId::new(0)), 0.1)
            .range(QCol::new(slot, ColumnId::new(1)), 0.5);
        let q = b.build();
        assert!((q.scan_selectivity(slot) - 0.05).abs() < 1e-12);
        // Slot with no filters has selectivity 1.
        assert_eq!(q.scan_selectivity(ScanSlot(9)), 1.0);
    }

    #[test]
    fn validate_rejects_bad_references() {
        let schema = two_table_schema();
        let mut q = figure3_q1(&schema);
        q.filters[0].col.scan = ScanSlot(7);
        assert!(q.validate(&schema).is_err());

        let mut q2 = figure3_q1(&schema);
        q2.filters[0].selectivity = 0.0;
        assert!(q2.validate(&schema).is_err());

        let mut q3 = figure3_q1(&schema);
        q3.weight = -1.0;
        assert!(q3.validate(&schema).is_err());
    }

    #[test]
    fn workload_iteration() {
        let schema = two_table_schema();
        let w = Workload::new("toy", vec![figure3_q1(&schema)]);
        assert_eq!(w.len(), 1);
        let (id, q) = w.iter().next().unwrap();
        assert_eq!(id, QueryId::new(0));
        assert_eq!(q.name, "Q1");
        w.validate(&schema).unwrap();
    }

    #[test]
    fn self_join_slots() {
        let schema = two_table_schema();
        let r = schema.table_by_name("r").unwrap();
        let mut b = QueryBuilder::new("self");
        let s0 = b.scan(r);
        let s1 = b.scan(r);
        b.join(
            QCol::new(s0, ColumnId::new(1)),
            QCol::new(s1, ColumnId::new(0)),
        );
        let q = b.build();
        assert_eq!(q.num_scans(), 2);
        assert_eq!(q.table_of(s0), q.table_of(s1));
        q.validate(&schema).unwrap();
    }
}
