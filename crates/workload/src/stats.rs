//! Workload statistics — the columns of the paper's Table 1.

use crate::query::Workload;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Summary statistics for a (schema, workload) pair, matching Table 1 of
/// the paper: database size, number of queries, number of tables, and the
/// per-query averages of joins, filters, and scans.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct WorkloadStats {
    pub name: String,
    pub size_gb: f64,
    pub num_queries: usize,
    /// Tables in the schema (the paper counts schema tables, not only
    /// referenced ones).
    pub num_tables: usize,
    /// Distinct tables actually referenced by at least one query.
    pub num_tables_referenced: usize,
    pub avg_joins: f64,
    pub avg_filters: f64,
    pub avg_scans: f64,
}

impl WorkloadStats {
    /// Compute statistics for `workload` over `schema`.
    pub fn compute(schema: &Schema, workload: &Workload) -> Self {
        let m = workload.len().max(1) as f64;
        let total_joins: usize = workload.queries.iter().map(|q| q.num_joins()).sum();
        let total_filters: usize = workload.queries.iter().map(|q| q.filters.len()).sum();
        let total_scans: usize = workload.queries.iter().map(|q| q.num_scans()).sum();
        let referenced: BTreeSet<_> = workload
            .queries
            .iter()
            .flat_map(|q| q.scans.iter().copied())
            .collect();
        Self {
            name: workload.name.clone(),
            size_gb: schema.database_size_bytes() as f64 / (1u64 << 30) as f64,
            num_queries: workload.len(),
            num_tables: schema.len(),
            num_tables_referenced: referenced.len(),
            avg_joins: total_joins as f64 / m,
            avg_filters: total_filters as f64 / m,
            avg_scans: total_scans as f64 / m,
        }
    }
}

impl fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:10} {:>8.1}GB {:>5} queries {:>6} tables  joins {:>5.1}  filters {:>4.1}  scans {:>5.1}",
            self.name,
            self.size_gb,
            self.num_queries,
            self.num_tables,
            self.avg_joins,
            self.avg_filters,
            self.avg_scans,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QCol, QueryBuilder};
    use crate::schema::{ColType, TableBuilder};
    use ixtune_common::ColumnId;

    #[test]
    fn stats_match_hand_computation() {
        let mut schema = Schema::new();
        let r = schema
            .add_table(
                TableBuilder::new("r", 1 << 20)
                    .key("a", ColType::Int)
                    .col("b", ColType::Int, 100)
                    .build(),
            )
            .unwrap();
        let s = schema
            .add_table(
                TableBuilder::new("s", 1 << 18)
                    .key("c", ColType::Int)
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                TableBuilder::new("unused", 10)
                    .key("x", ColType::Int)
                    .build(),
            )
            .unwrap();

        let mut b1 = QueryBuilder::new("q1");
        let s0 = b1.scan(r);
        let s1 = b1.scan(s);
        b1.eq(QCol::new(s0, ColumnId::new(0)), 0.1).join(
            QCol::new(s0, ColumnId::new(1)),
            QCol::new(s1, ColumnId::new(0)),
        );
        let mut b2 = QueryBuilder::new("q2");
        let t0 = b2.scan(r);
        b2.eq(QCol::new(t0, ColumnId::new(1)), 0.5);

        let w = Workload::new("toy", vec![b1.build(), b2.build()]);
        let stats = WorkloadStats::compute(&schema, &w);
        assert_eq!(stats.num_queries, 2);
        assert_eq!(stats.num_tables, 3);
        assert_eq!(stats.num_tables_referenced, 2);
        assert!((stats.avg_joins - 0.5).abs() < 1e-12);
        assert!((stats.avg_filters - 1.0).abs() < 1e-12);
        assert!((stats.avg_scans - 1.5).abs() < 1e-12);
        assert!(stats.size_gb > 0.0);
    }
}
