//! Workload compression.
//!
//! The paper tunes one query instance per template and defers
//! multi-instance workloads to workload compression (\[20\], \[29\] — §7,
//! footnote 5). This module provides exactly that step: queries with the
//! same *structural signature* (tables scanned, predicate columns and
//! kinds, join edges, grouping/ordering/projection columns — everything
//! candidate generation and what-if costing look at, except literal
//! selectivities) are collapsed into one representative whose weight is
//! the sum of the instances' weights.

use crate::query::{Query, Workload};
use ixtune_common::TableId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// A query's structural signature: two queries with equal signatures are
/// indistinguishable to candidate generation and (up to literal
/// selectivities) to the cost model.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    scans: Vec<TableId>,
    /// `(scan slot, column, predicate kind)` for each seek-relevant filter.
    filters: Vec<(u16, u32, u8)>,
    joins: Vec<(u16, u32, u16, u32)>,
    group_by: Vec<(u16, u32)>,
    order_by: Vec<(u16, u32)>,
    projection: BTreeSet<(u16, u32)>,
}

/// Compute the structural signature of a query.
pub fn signature(q: &Query) -> Signature {
    let mut filters: Vec<(u16, u32, u8)> = q
        .filters
        .iter()
        .map(|f| (f.col.scan.0, f.col.column.0, f.kind as u8))
        .collect();
    filters.sort_unstable();
    let mut joins: Vec<(u16, u32, u16, u32)> = q
        .joins
        .iter()
        .map(|j| {
            let a = (j.left.scan.0, j.left.column.0);
            let b = (j.right.scan.0, j.right.column.0);
            // Normalize edge direction.
            if a <= b {
                (a.0, a.1, b.0, b.1)
            } else {
                (b.0, b.1, a.0, a.1)
            }
        })
        .collect();
    joins.sort_unstable();
    Signature {
        scans: q.scans.clone(),
        filters,
        joins,
        group_by: q.group_by.iter().map(|c| (c.scan.0, c.column.0)).collect(),
        order_by: q.order_by.iter().map(|c| (c.scan.0, c.column.0)).collect(),
        projection: q
            .projection
            .iter()
            .map(|c| (c.scan.0, c.column.0))
            .collect(),
    }
}

/// Result of compressing a workload.
#[derive(Clone, Debug)]
pub struct Compressed {
    pub workload: Workload,
    /// For each compressed query: how many input instances it represents.
    pub cluster_sizes: Vec<usize>,
    /// Input size.
    pub original_len: usize,
}

impl Compressed {
    /// Compression ratio `original / compressed` (≥ 1).
    pub fn ratio(&self) -> f64 {
        self.original_len as f64 / self.workload.len().max(1) as f64
    }
}

/// Compress `workload` by structural signature. Each cluster keeps its
/// first instance as the representative (instances differ only in literal
/// selectivities, so any member is structurally exact) with the cluster's
/// total weight.
pub fn compress(workload: &Workload) -> Compressed {
    let mut clusters: HashMap<Signature, usize> = HashMap::new();
    let mut queries: Vec<Query> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    for q in &workload.queries {
        let sig = signature(q);
        match clusters.get(&sig) {
            Some(&idx) => {
                queries[idx].weight += q.weight;
                sizes[idx] += 1;
            }
            None => {
                clusters.insert(sig, queries.len());
                queries.push(q.clone());
                sizes.push(1);
            }
        }
    }
    Compressed {
        workload: Workload::new(format!("{} (compressed)", workload.name), queries),
        cluster_sizes: sizes,
        original_len: workload.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::tpch;
    use crate::query::{QCol, QueryBuilder};
    use crate::schema::{ColType, Schema, TableBuilder};
    use ixtune_common::ColumnId;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("t", 10_000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 100)
                .build(),
        )
        .unwrap();
        s
    }

    fn instance(sel: f64, weight: f64) -> Query {
        let schema = schema();
        let t = schema.table_by_name("t").unwrap();
        let mut b = QueryBuilder::new("q");
        let s = b.scan(t);
        b.eq(QCol::new(s, ColumnId::new(0)), sel)
            .project(QCol::new(s, ColumnId::new(1)))
            .weight(weight);
        b.build()
    }

    #[test]
    fn identical_structures_collapse_and_weights_add() {
        let w = Workload::new(
            "multi",
            vec![
                instance(0.01, 1.0),
                instance(0.02, 2.0),
                instance(0.30, 1.0),
            ],
        );
        let c = compress(&w);
        assert_eq!(c.workload.len(), 1);
        assert_eq!(c.cluster_sizes, vec![3]);
        assert!((c.workload.queries[0].weight - 4.0).abs() < 1e-12);
        assert!((c.ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn different_structures_stay_separate() {
        let schema = schema();
        let t = schema.table_by_name("t").unwrap();
        let mut b = QueryBuilder::new("other");
        let s = b.scan(t);
        b.range(QCol::new(s, ColumnId::new(1)), 0.2);
        let w = Workload::new("w", vec![instance(0.01, 1.0), b.build()]);
        let c = compress(&w);
        assert_eq!(c.workload.len(), 2);
    }

    #[test]
    fn tpch_single_instance_is_incompressible() {
        let inst = tpch::generate(1.0);
        let c = compress(&inst.workload);
        assert_eq!(c.workload.len(), 22, "22 distinct templates stay distinct");
        assert_eq!(c.ratio(), 1.0);
    }

    #[test]
    fn multi_instance_tpch_compresses_back_to_templates() {
        let multi = tpch::generate_multi(1.0, 5, 42);
        assert_eq!(multi.workload.len(), 110);
        let c = compress(&multi.workload);
        assert_eq!(c.workload.len(), 22);
        assert!(c.cluster_sizes.iter().all(|&s| s == 5));
        // Compressed weights preserve total workload weight.
        let total: f64 = c.workload.queries.iter().map(|q| q.weight).sum();
        assert!((total - 110.0).abs() < 1e-9);
    }

    #[test]
    fn signature_ignores_selectivity_but_not_columns() {
        let a = signature(&instance(0.01, 1.0));
        let b = signature(&instance(0.5, 1.0));
        assert_eq!(a, b);
        let schema = schema();
        let t = schema.table_by_name("t").unwrap();
        let mut qb = QueryBuilder::new("x");
        let s = qb.scan(t);
        qb.eq(QCol::new(s, ColumnId::new(1)), 0.01);
        assert_ne!(a, signature(&qb.build()));
    }
}
