//! Database schema model: column types, tables with cardinalities and
//! per-column distinct-value counts, and a schema catalog with name lookup.
//!
//! The simulated optimizer derives selectivities from column
//! number-of-distinct-values (NDV) statistics and derives scan/seek costs
//! from row counts and row widths, so those are the statistics a [`Table`]
//! carries. Index size estimation (used by the storage constraint) also
//! reads column widths from here.

use ixtune_common::{ColumnId, Error, Result, TableId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Column data type. Widths feed row-size and index-size estimation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    Int,
    BigInt,
    Float,
    /// Fixed-point numeric (stored as 8 bytes here).
    Decimal,
    Date,
    Bool,
    /// Fixed-width character data.
    Char(u16),
    /// Variable-width character data; the argument is the declared maximum,
    /// and we assume half of it is used on average.
    VarChar(u16),
}

impl ColType {
    /// Average stored width in bytes.
    pub fn width(self) -> u32 {
        match self {
            ColType::Int => 4,
            ColType::BigInt | ColType::Float | ColType::Decimal => 8,
            ColType::Date => 4,
            ColType::Bool => 1,
            ColType::Char(n) => n as u32,
            ColType::VarChar(n) => (n as u32) / 2 + 2,
        }
    }
}

/// A column definition with the statistics the cost model consumes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: ColType,
    /// Number of distinct values; drives equality selectivity `1/ndv`.
    pub ndv: u64,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColType, ndv: u64) -> Self {
        Self {
            name: name.into(),
            ty,
            ndv: ndv.max(1),
        }
    }
}

/// A base table: name, row count, and columns.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    pub name: String,
    pub rows: u64,
    pub columns: Vec<Column>,
    by_name: HashMap<String, ColumnId>,
}

impl Table {
    pub fn new(name: impl Into<String>, rows: u64, columns: Vec<Column>) -> Self {
        let by_name = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), ColumnId::from(i)))
            .collect();
        Self {
            name: name.into(),
            rows: rows.max(1),
            columns,
            by_name,
        }
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<ColumnId> {
        self.by_name.get(name).copied()
    }

    /// The column definition for `id`.
    pub fn col(&self, id: ColumnId) -> &Column {
        &self.columns[id.index()]
    }

    /// Average row width in bytes (sum of column widths plus a small
    /// per-row header, as in typical slotted-page layouts).
    pub fn row_width(&self) -> u32 {
        8 + self.columns.iter().map(|c| c.ty.width()).sum::<u32>()
    }

    /// Estimated heap size of the table in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.rows * self.row_width() as u64
    }
}

/// A schema: an ordered collection of tables with name lookup.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
}

impl Schema {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table, returning its id. Replaces nothing: duplicate names are
    /// rejected.
    pub fn add_table(&mut self, table: Table) -> Result<TableId> {
        if self.by_name.contains_key(&table.name) {
            return Err(Error::Invalid(format!("duplicate table {}", table.name)));
        }
        let id = TableId::from(self.tables.len());
        self.by_name.insert(table.name.clone(), id);
        self.tables.push(table);
        Ok(id)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The table definition for `id`.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Resolve `table.column` names to ids.
    pub fn resolve(&self, table: &str, column: &str) -> Result<(TableId, ColumnId)> {
        let tid = self
            .table_by_name(table)
            .ok_or_else(|| Error::UnknownName(table.to_string()))?;
        let cid = self
            .table(tid)
            .column(column)
            .ok_or_else(|| Error::UnknownName(format!("{table}.{column}")))?;
        Ok((tid, cid))
    }

    /// Iterate `(id, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId::from(i), t))
    }

    /// Estimated total database size in bytes (sum of heap sizes). The DTA
    /// storage constraint defaults to 3× this value.
    pub fn database_size_bytes(&self) -> u64 {
        self.tables.iter().map(Table::size_bytes).sum()
    }
}

/// Convenience builder used heavily by workload generators.
pub struct TableBuilder {
    name: String,
    rows: u64,
    columns: Vec<Column>,
}

impl TableBuilder {
    pub fn new(name: impl Into<String>, rows: u64) -> Self {
        Self {
            name: name.into(),
            rows,
            columns: Vec::new(),
        }
    }

    /// Add a column with explicit NDV.
    pub fn col(mut self, name: &str, ty: ColType, ndv: u64) -> Self {
        self.columns.push(Column::new(name, ty, ndv));
        self
    }

    /// Add a key-like column: NDV equals the row count.
    pub fn key(self, name: &str, ty: ColType) -> Self {
        let rows = self.rows;
        self.col(name, ty, rows)
    }

    pub fn build(self) -> Table {
        Table::new(self.name, self.rows, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("r", 1000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 50)
                .build(),
        )
        .unwrap();
        s.add_table(
            TableBuilder::new("s", 5000)
                .key("c", ColType::Int)
                .col("d", ColType::VarChar(20), 200)
                .build(),
        )
        .unwrap();
        s
    }

    #[test]
    fn width_model() {
        assert_eq!(ColType::Int.width(), 4);
        assert_eq!(ColType::Char(10).width(), 10);
        assert_eq!(ColType::VarChar(20).width(), 12);
    }

    #[test]
    fn resolve_names() {
        let s = sample_schema();
        let (t, c) = s.resolve("s", "d").unwrap();
        assert_eq!(s.table(t).name, "s");
        assert_eq!(s.table(t).col(c).name, "d");
        assert!(s.resolve("nope", "d").is_err());
        assert!(s.resolve("s", "nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut s = sample_schema();
        let err = s.add_table(TableBuilder::new("r", 1).build());
        assert!(err.is_err());
    }

    #[test]
    fn sizes() {
        let s = sample_schema();
        let r = s.table(s.table_by_name("r").unwrap());
        assert_eq!(r.row_width(), 8 + 4 + 4);
        assert_eq!(r.size_bytes(), 1000 * 16);
        assert!(s.database_size_bytes() > r.size_bytes());
    }

    #[test]
    fn ndv_clamped_to_one() {
        let c = Column::new("x", ColType::Int, 0);
        assert_eq!(c.ndv, 1);
    }

    #[test]
    fn key_column_ndv_is_rows() {
        let t = TableBuilder::new("t", 777)
            .key("id", ColType::BigInt)
            .build();
        assert_eq!(t.col(ColumnId::new(0)).ndv, 777);
    }
}
