//! Tokenizer for the mini-SQL subset.

use ixtune_common::{Error, Result};

/// Token kinds. Keywords are recognized case-insensitively and carried as
/// uppercase in [`TokenKind::Word`]; the parser matches on the uppercase
/// spelling so identifiers stay case-preserving in `text`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (uppercased copy in the payload).
    Word(String),
    /// Numeric literal (verbatim text).
    Number,
    /// Single-quoted string literal (unquoted payload).
    Str(String),
    /// Punctuation / operator: `, . ( ) = < > <= >= <> + - * /`.
    Sym(&'static str),
    Eof,
}

/// A token with its source span for error reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Verbatim source text (empty for EOF).
    pub text: String,
    /// Byte offset in the source.
    pub offset: usize,
}

fn err(offset: usize, message: impl Into<String>) -> Error {
    Error::Parse {
        offset,
        message: message.into(),
    }
}

/// Tokenize `src`, appending a trailing [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                out.push(Token {
                    kind: TokenKind::Word(text.to_ascii_uppercase()),
                    text: text.to_string(),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Number,
                    text: src[start..i].to_string(),
                    offset: start,
                });
            }
            b'\'' => {
                let start = i;
                i += 1;
                let content_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(err(start, "unterminated string literal"));
                }
                let content = src[content_start..i].to_string();
                i += 1; // closing quote
                out.push(Token {
                    kind: TokenKind::Str(content),
                    text: src[start..i].to_string(),
                    offset: start,
                });
            }
            b'<' | b'>' => {
                let start = i;
                let two = bytes.get(i + 1).copied();
                let sym: &'static str = match (b, two) {
                    (b'<', Some(b'=')) => "<=",
                    (b'<', Some(b'>')) => "<>",
                    (b'>', Some(b'=')) => ">=",
                    (b'<', _) => "<",
                    (b'>', _) => ">",
                    _ => unreachable!(),
                };
                i += sym.len();
                out.push(Token {
                    kind: TokenKind::Sym(sym),
                    text: sym.to_string(),
                    offset: start,
                });
            }
            b',' | b'.' | b'(' | b')' | b'=' | b'+' | b'-' | b'*' | b'/' => {
                let sym: &'static str = match b {
                    b',' => ",",
                    b'.' => ".",
                    b'(' => "(",
                    b')' => ")",
                    b'=' => "=",
                    b'+' => "+",
                    b'-' => "-",
                    b'*' => "*",
                    b'/' => "/",
                    _ => unreachable!(),
                };
                out.push(Token {
                    kind: TokenKind::Sym(sym),
                    text: sym.to_string(),
                    offset: i,
                });
                i += 1;
            }
            _ => return Err(err(i, format!("unexpected character {:?}", b as char))),
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        text: String::new(),
        offset: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_are_uppercased_in_kind() {
        let toks = tokenize("select Foo").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Word("SELECT".into()));
        assert_eq!(toks[1].kind, TokenKind::Word("FOO".into()));
        assert_eq!(toks[1].text, "Foo");
    }

    #[test]
    fn numbers_and_strings() {
        let toks = tokenize("42 3.14 'abc d'").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Number);
        assert_eq!(toks[0].text, "42");
        assert_eq!(toks[1].text, "3.14");
        assert_eq!(toks[2].kind, TokenKind::Str("abc d".into()));
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("< <= <> >= > ="),
            vec![
                TokenKind::Sym("<"),
                TokenKind::Sym("<="),
                TokenKind::Sym("<>"),
                TokenKind::Sym(">="),
                TokenKind::Sym(">"),
                TokenKind::Sym("="),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("a -- comment\n b").unwrap();
        assert_eq!(toks.len(), 3); // a, b, EOF
        assert_eq!(toks[1].text, "b");
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn punctuation_roundtrip() {
        let toks = tokenize("t.a, (x)").unwrap();
        let syms: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Sym(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec![".", ",", "(", ")"]);
    }
}
