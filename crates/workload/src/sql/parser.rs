//! Recursive-descent parser from the mini-SQL subset to [`Query`].

use super::lexer::{tokenize, Token, TokenKind};
use crate::query::{FilterKind, QCol, Query, QueryBuilder, ScanSlot, Workload};
use crate::schema::Schema;
use ixtune_common::{ColumnId, Error, Result, TableId};

/// Parse one SQL statement into a [`Query`] named `name`.
pub fn parse_query(schema: &Schema, name: &str, src: &str) -> Result<Query> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        schema,
        tokens,
        pos: 0,
        scopes: Vec::new(),
        builder: QueryBuilder::new(name),
    };
    p.parse()?;
    let q = p.builder.build();
    q.validate(schema)?;
    Ok(q)
}

/// Parse a list of `(name, sql)` statements into a [`Workload`].
pub fn parse_workload(schema: &Schema, name: &str, sources: &[(&str, &str)]) -> Result<Workload> {
    let queries = sources
        .iter()
        .map(|(qname, sql)| parse_query(schema, qname, sql))
        .collect::<Result<Vec<_>>>()?;
    Ok(Workload::new(name, queries))
}

struct Scope {
    /// Lower-cased alias (or table name when no alias was given).
    alias: String,
    /// Lower-cased base table name.
    table_name: String,
    slot: ScanSlot,
    table: TableId,
}

struct Parser<'a> {
    schema: &'a Schema,
    tokens: Vec<Token>,
    pos: usize,
    scopes: Vec<Scope>,
    builder: QueryBuilder,
}

const AGGREGATES: [&str; 5] = ["SUM", "COUNT", "AVG", "MIN", "MAX"];

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            offset: self.peek().offset,
            message: message.into(),
        }
    }

    fn at_word(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Word(w) if w == kw)
    }

    fn eat_word(&mut self, kw: &str) -> bool {
        if self.at_word(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, kw: &str) -> Result<()> {
        if self.eat_word(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek().text)))
        }
    }

    fn at_sym(&self, s: &str) -> bool {
        matches!(self.peek().kind, TokenKind::Sym(sym) if sym == s)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.at_sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`, found {:?}", self.peek().text)))
        }
    }

    fn parse(&mut self) -> Result<()> {
        self.expect_word("SELECT")?;
        // The select list references aliases declared in FROM, so scan ahead:
        // remember the token range of the select list, parse FROM first, then
        // come back.
        let select_start = self.pos;
        self.skip_until_from()?;
        self.expect_word("FROM")?;
        self.parse_from()?;
        let after_from = self.pos;

        // Re-parse the select list now that scopes exist.
        self.pos = select_start;
        self.parse_select_list()?;
        self.pos = after_from;

        if self.eat_word("WHERE") {
            self.parse_conjunction()?;
        }
        if self.eat_word("GROUP") {
            self.expect_word("BY")?;
            loop {
                let col = self.parse_column_ref()?;
                self.builder.group_by(col);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_word("ORDER") {
            self.expect_word("BY")?;
            loop {
                self.parse_order_item()?;
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_word("LIMIT") {
            self.bump(); // the count
        }
        match self.peek().kind {
            TokenKind::Eof => Ok(()),
            _ => Err(self.err(format!("trailing input {:?}", self.peek().text))),
        }
    }

    fn skip_until_from(&mut self) -> Result<()> {
        let mut depth = 0usize;
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return Err(self.err("missing FROM clause")),
                TokenKind::Sym("(") => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Sym(")") => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                TokenKind::Word(w) if w == "FROM" && depth == 0 => return Ok(()),
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_from(&mut self) -> Result<()> {
        self.parse_table_ref()?;
        loop {
            if self.eat_sym(",") {
                self.parse_table_ref()?;
            } else if self.at_word("JOIN") || self.at_word("INNER") {
                self.eat_word("INNER");
                self.expect_word("JOIN")?;
                self.parse_table_ref()?;
                if self.eat_word("ON") {
                    self.parse_predicate()?;
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_table_ref(&mut self) -> Result<()> {
        let tok = self.bump();
        let table_name = match tok.kind {
            TokenKind::Word(_) => tok.text.to_ascii_lowercase(),
            _ => return Err(self.err("expected table name")),
        };
        let table = self
            .schema
            .table_by_name(&table_name)
            .ok_or_else(|| Error::UnknownName(table_name.clone()))?;
        // Optional `AS alias` / bare alias — but stop at clause keywords.
        let mut alias = table_name.clone();
        if self.eat_word("AS") {
            let t = self.bump();
            alias = t.text.to_ascii_lowercase();
        } else if let TokenKind::Word(w) = &self.peek().kind {
            const CLAUSES: [&str; 9] = [
                "WHERE", "GROUP", "ORDER", "JOIN", "INNER", "ON", "LIMIT", "FROM", "SELECT",
            ];
            if !CLAUSES.contains(&w.as_str()) {
                let t = self.bump();
                alias = t.text.to_ascii_lowercase();
            }
        }
        let slot = self.builder.scan(table);
        self.scopes.push(Scope {
            alias,
            table_name,
            slot,
            table,
        });
        Ok(())
    }

    fn parse_select_list(&mut self) -> Result<()> {
        self.eat_word("DISTINCT");
        loop {
            if self.eat_sym("*") {
                // SELECT *: every column of every scan is projected.
                for scope in &self.scopes {
                    let ncols = self.schema.table(scope.table).columns.len();
                    for c in 0..ncols {
                        self.builder
                            .project(QCol::new(scope.slot, ColumnId::from(c)));
                    }
                }
            } else {
                let cols = self.parse_select_expr()?;
                for col in cols {
                    self.builder.project(col);
                }
                // Optional output alias.
                if self.eat_word("AS") {
                    self.bump();
                }
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(())
    }

    /// Parse one select item (aggregate call or arithmetic expression) and
    /// return the column references it mentions.
    fn parse_select_expr(&mut self) -> Result<Vec<QCol>> {
        let mut cols = Vec::new();
        self.parse_expr(&mut cols)?;
        Ok(cols)
    }

    fn parse_expr(&mut self, cols: &mut Vec<QCol>) -> Result<()> {
        self.parse_term(cols)?;
        while self.at_sym("+") || self.at_sym("-") || self.at_sym("*") || self.at_sym("/") {
            self.bump();
            self.parse_term(cols)?;
        }
        Ok(())
    }

    fn parse_term(&mut self, cols: &mut Vec<QCol>) -> Result<()> {
        match self.peek().kind.clone() {
            TokenKind::Sym("(") => {
                self.bump();
                self.parse_expr(cols)?;
                self.expect_sym(")")
            }
            TokenKind::Number | TokenKind::Str(_) => {
                self.bump();
                Ok(())
            }
            TokenKind::Word(w) if AGGREGATES.contains(&w.as_str()) => {
                self.bump();
                self.expect_sym("(")?;
                if self.eat_sym("*") {
                    // COUNT(*): no column reference.
                } else {
                    self.eat_word("DISTINCT");
                    self.parse_expr(cols)?;
                }
                self.expect_sym(")")
            }
            TokenKind::Word(_) => {
                let col = self.parse_column_ref()?;
                cols.push(col);
                Ok(())
            }
            _ => Err(self.err(format!("unexpected token {:?}", self.peek().text))),
        }
    }

    fn parse_order_item(&mut self) -> Result<()> {
        // Aggregates and positional numbers in ORDER BY don't constrain
        // index ordering; parse and ignore them.
        match self.peek().kind.clone() {
            TokenKind::Number => {
                self.bump();
            }
            TokenKind::Word(w) if AGGREGATES.contains(&w.as_str()) => {
                let mut sink = Vec::new();
                self.parse_term(&mut sink)?;
            }
            _ => {
                let col = self.parse_column_ref()?;
                self.builder.order_by(col);
            }
        }
        self.eat_word("ASC");
        self.eat_word("DESC");
        Ok(())
    }

    fn parse_conjunction(&mut self) -> Result<()> {
        self.parse_predicate()?;
        while self.eat_word("AND") {
            self.parse_predicate()?;
        }
        Ok(())
    }

    fn parse_predicate(&mut self) -> Result<()> {
        let lhs = self.parse_column_ref()?;
        if self.eat_word("BETWEEN") {
            let lo = self.parse_literal()?;
            self.expect_word("AND")?;
            let hi = self.parse_literal()?;
            let sel = range_band(&format!("{lo}..{hi}"), 0.02, 0.30);
            self.builder.range(lhs, sel);
            return Ok(());
        }
        if self.eat_word("LIKE") {
            let pat = self.parse_literal()?;
            if pat.starts_with('%') {
                self.builder
                    .filter(lhs, FilterKind::Residual, range_band(&pat, 0.05, 0.20));
            } else {
                self.builder
                    .filter(lhs, FilterKind::Like, range_band(&pat, 0.01, 0.10));
            }
            return Ok(());
        }
        if self.eat_word("IN") {
            self.expect_sym("(")?;
            let mut k = 0u64;
            loop {
                self.parse_literal()?;
                k += 1;
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            let ndv = self.ndv_of(lhs);
            let sel = (k as f64 / ndv as f64).clamp(1e-9, 1.0);
            self.builder.eq(lhs, sel);
            return Ok(());
        }
        let op = match self.peek().kind {
            TokenKind::Sym(s @ ("=" | "<" | "<=" | ">" | ">=" | "<>")) => {
                self.bump();
                s
            }
            _ => {
                return Err(self.err(format!(
                    "expected predicate operator, found {:?}",
                    self.peek().text
                )))
            }
        };
        // Column on the right-hand side?
        if self.rhs_is_column() {
            let rhs = self.parse_column_ref()?;
            if op == "=" {
                self.builder.join(lhs, rhs);
                return Ok(());
            }
            // Non-equi column comparison: residual on both sides.
            self.builder.filter(lhs, FilterKind::Residual, 0.3);
            self.builder.filter(rhs, FilterKind::Residual, 0.3);
            return Ok(());
        }
        let lit = self.parse_literal()?;
        let ndv = self.ndv_of(lhs);
        match op {
            "=" => {
                self.builder.eq(lhs, (1.0 / ndv as f64).clamp(1e-9, 1.0));
            }
            "<>" => {
                let sel = (1.0 - 1.0 / ndv as f64).clamp(1e-9, 1.0);
                self.builder.filter(lhs, FilterKind::Residual, sel);
            }
            _ => {
                self.builder.range(lhs, range_band(&lit, 0.05, 0.40));
            }
        }
        Ok(())
    }

    /// Heuristic lookahead: is the token (or dotted pair) after the operator
    /// a column reference rather than a literal?
    fn rhs_is_column(&self) -> bool {
        match &self.peek().kind {
            TokenKind::Word(w) => {
                if w == "DATE" {
                    return false;
                }
                // `alias.col` or a bare column name known to some scope.
                if matches!(self.peek2().kind, TokenKind::Sym(".")) {
                    return true;
                }
                let lower = self.peek().text.to_ascii_lowercase();
                self.scopes
                    .iter()
                    .any(|s| self.schema.table(s.table).column(&lower).is_some())
            }
            _ => false,
        }
    }

    fn parse_literal(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Number => Ok(self.bump().text),
            TokenKind::Str(s) => {
                self.bump();
                Ok(s)
            }
            TokenKind::Word(w) if w == "DATE" => {
                self.bump();
                match self.peek().kind.clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        Ok(s)
                    }
                    _ => Err(self.err("expected string after DATE")),
                }
            }
            _ => Err(self.err(format!("expected literal, found {:?}", self.peek().text))),
        }
    }

    fn parse_column_ref(&mut self) -> Result<QCol> {
        let first = self.bump();
        let first_name = match first.kind {
            TokenKind::Word(_) => first.text.to_ascii_lowercase(),
            _ => {
                return Err(Error::Parse {
                    offset: first.offset,
                    message: format!("expected column reference, found {:?}", first.text),
                })
            }
        };
        if self.eat_sym(".") {
            let col_tok = self.bump();
            let col_name = match col_tok.kind {
                TokenKind::Word(_) => col_tok.text.to_ascii_lowercase(),
                _ => {
                    return Err(Error::Parse {
                        offset: col_tok.offset,
                        message: "expected column name after `.`".into(),
                    })
                }
            };
            let scope = self
                .scopes
                .iter()
                .find(|s| s.alias == first_name)
                .or_else(|| self.scopes.iter().find(|s| s.table_name == first_name))
                .ok_or_else(|| Error::UnknownName(first_name.clone()))?;
            let col = self
                .schema
                .table(scope.table)
                .column(&col_name)
                .ok_or_else(|| Error::UnknownName(format!("{first_name}.{col_name}")))?;
            Ok(QCol::new(scope.slot, col))
        } else {
            // Unqualified: must resolve uniquely across scopes.
            let mut found: Option<QCol> = None;
            for scope in &self.scopes {
                if let Some(col) = self.schema.table(scope.table).column(&first_name) {
                    if found.is_some() {
                        return Err(Error::Parse {
                            offset: first.offset,
                            message: format!("ambiguous column {first_name}"),
                        });
                    }
                    found = Some(QCol::new(scope.slot, col));
                }
            }
            found.ok_or(Error::UnknownName(first_name))
        }
    }

    fn ndv_of(&self, col: QCol) -> u64 {
        // The builder owns the scan list; scopes mirror it.
        let scope = &self.scopes[col.scan.index()];
        self.schema.table(scope.table).col(col.column).ndv
    }
}

/// Deterministically map a literal's text into a selectivity band
/// `[lo, hi]` — a stand-in for histogram lookups, stable across runs.
fn range_band(literal: &str, lo: f64, hi: f64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in literal.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    lo + unit * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, TableBuilder};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("r", 10_000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 500)
                .col("name", ColType::VarChar(32), 9000)
                .build(),
        )
        .unwrap();
        s.add_table(
            TableBuilder::new("s", 50_000)
                .key("c", ColType::Int)
                .col("d", ColType::Int, 2000)
                .col("e", ColType::Date, 365)
                .build(),
        )
        .unwrap();
        s
    }

    #[test]
    fn figure3_q1_parses() {
        let schema = schema();
        let q = parse_query(
            &schema,
            "Q1",
            "SELECT a, d FROM r, s WHERE r.b = s.c AND r.a = 5 AND s.d > 200",
        )
        .unwrap();
        assert_eq!(q.num_scans(), 2);
        assert_eq!(q.num_joins(), 1);
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.projection.len(), 2);
        // Equality selectivity is 1/ndv of r.a.
        let eq = q
            .filters
            .iter()
            .find(|f| f.kind == FilterKind::Equality)
            .unwrap();
        assert!((eq.selectivity - 1.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn aliases_and_join_syntax() {
        let schema = schema();
        let q = parse_query(
            &schema,
            "q",
            "SELECT x.a FROM r AS x JOIN s y ON x.b = y.c WHERE y.e >= DATE '1995-01-01'",
        )
        .unwrap();
        assert_eq!(q.num_joins(), 1);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].kind, FilterKind::Range);
    }

    #[test]
    fn self_join_with_aliases() {
        let schema = schema();
        let q = parse_query(
            &schema,
            "q",
            "SELECT r1.a FROM r r1, r r2 WHERE r1.b = r2.a AND r2.b = 3",
        )
        .unwrap();
        assert_eq!(q.num_scans(), 2);
        assert_eq!(q.scans[0], q.scans[1]);
        assert_eq!(q.num_joins(), 1);
    }

    #[test]
    fn aggregates_group_order() {
        let schema = schema();
        let q = parse_query(
            &schema,
            "q",
            "SELECT b, SUM(a * 2) AS total, COUNT(*) FROM r GROUP BY b ORDER BY b DESC, SUM(a) LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 1);
        // b appears in select; a appears inside SUM.
        assert_eq!(q.projection.len(), 2);
    }

    #[test]
    fn in_and_between_and_like() {
        let schema = schema();
        let q = parse_query(
            &schema,
            "q",
            "SELECT a FROM r WHERE b IN (1, 2, 3) AND a BETWEEN 5 AND 10 AND name LIKE 'ab%'",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 3);
        let kinds: Vec<FilterKind> = q.filters.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FilterKind::Equality)); // IN
        assert!(kinds.contains(&FilterKind::Range)); // BETWEEN
        assert!(kinds.contains(&FilterKind::Like));
        let in_f = q
            .filters
            .iter()
            .find(|f| f.kind == FilterKind::Equality)
            .unwrap();
        assert!((in_f.selectivity - 3.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn leading_wildcard_like_is_residual() {
        let schema = schema();
        let q = parse_query(&schema, "q", "SELECT a FROM r WHERE name LIKE '%x%'").unwrap();
        assert_eq!(q.filters[0].kind, FilterKind::Residual);
    }

    #[test]
    fn neq_is_residual() {
        let schema = schema();
        let q = parse_query(&schema, "q", "SELECT a FROM r WHERE b <> 7").unwrap();
        assert_eq!(q.filters[0].kind, FilterKind::Residual);
        assert!(q.filters[0].selectivity > 0.99);
    }

    #[test]
    fn select_star_projects_everything() {
        let schema = schema();
        let q = parse_query(&schema, "q", "SELECT * FROM r WHERE a = 1").unwrap();
        assert_eq!(q.projection.len(), 3);
    }

    #[test]
    fn unknown_names_error() {
        let schema = schema();
        assert!(parse_query(&schema, "q", "SELECT a FROM nope").is_err());
        assert!(parse_query(&schema, "q", "SELECT zz FROM r").is_err());
        assert!(parse_query(&schema, "q", "SELECT r.zz FROM r").is_err());
    }

    #[test]
    fn ambiguous_unqualified_column_errors() {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("t1", 10)
                .col("x", ColType::Int, 5)
                .build(),
        )
        .unwrap();
        s.add_table(
            TableBuilder::new("t2", 10)
                .col("x", ColType::Int, 5)
                .build(),
        )
        .unwrap();
        assert!(parse_query(&s, "q", "SELECT x FROM t1, t2").is_err());
    }

    #[test]
    fn trailing_garbage_errors() {
        let schema = schema();
        assert!(parse_query(&schema, "q", "SELECT a FROM r garbage garbage").is_err());
    }

    #[test]
    fn workload_parsing() {
        let schema = schema();
        let w = parse_workload(
            &schema,
            "toy",
            &[
                ("q1", "SELECT a FROM r WHERE b = 1"),
                ("q2", "SELECT d FROM s WHERE e > DATE '2000-01-01'"),
            ],
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.queries[0].name, "q1");
    }

    #[test]
    fn range_band_is_deterministic_and_bounded() {
        let a = range_band("1995-01-01", 0.05, 0.4);
        let b = range_band("1995-01-01", 0.05, 0.4);
        assert_eq!(a, b);
        assert!((0.05..=0.4).contains(&a));
        assert_ne!(range_band("x", 0.0, 1.0), range_band("y", 0.0, 1.0));
    }
}
