//! A mini-SQL front end.
//!
//! Benchmark queries (TPC-H, JOB) are written in a compact SQL subset and
//! parsed into the structural [`Query`](crate::query::Query) model. The
//! subset covers what index tuning can observe: `SELECT` lists (plain
//! columns and aggregates over arithmetic expressions), comma-style and
//! `JOIN ... ON` from-lists with aliases, conjunctive `WHERE` clauses
//! (equality, range, `BETWEEN`, `LIKE`, `IN`, `<>`, and equi-join
//! predicates), `GROUP BY`, and `ORDER BY`.
//!
//! Selectivities are estimated at parse time from schema statistics
//! (equality: `1/ndv`; `IN`: `k/ndv`; ranges: a deterministic hash of the
//! literal mapped into a plausible band), mirroring how a real optimizer
//! would consult its histograms.

mod lexer;
mod parser;

pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse_query, parse_workload};
