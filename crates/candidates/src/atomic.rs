//! Atomic configurations (AutoAdmin, §4.2.2 / Figure 5(d) of the paper).
//!
//! AutoAdmin restricts what-if calls to *atomic* configurations — small
//! configurations whose cost cannot be derived from strict subsets because
//! their indexes can be used together in a single plan. For single-join
//! analysis the paper uses atomic configurations of size 1 (singletons) and
//! size 2 (pairs of indexes on tables joined by some query).

use crate::gen::CandidateSet;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_workload::Workload;
use std::collections::BTreeSet;

/// All singleton configurations over the candidate universe.
pub fn singletons(universe: usize) -> Vec<IndexSet> {
    (0..universe)
        .map(|i| IndexSet::singleton(universe, IndexId::from(i)))
        .collect()
}

/// Single-join atomic pairs: for every query and every join edge, pair each
/// candidate keyed on the left join column with each keyed on the right join
/// column (capped at `max_pairs`).
pub fn single_join_pairs(
    workload: &Workload,
    cands: &CandidateSet,
    max_pairs: usize,
) -> Vec<IndexSet> {
    let universe = cands.len();
    let mut pairs: BTreeSet<(IndexId, IndexId)> = BTreeSet::new();
    'outer: for (qi, q) in workload.queries.iter().enumerate() {
        let q_cands = cands.for_query(QueryId::from(qi));
        for j in &q.joins {
            let lhs_table = q.table_of(j.left.scan);
            let rhs_table = q.table_of(j.right.scan);
            let on_col = |id: &IndexId, table, col| {
                let idx = &cands.indexes[id.index()];
                idx.table == table && idx.keys.first() == Some(&col)
            };
            for a in q_cands {
                if !on_col(a, lhs_table, j.left.column) {
                    continue;
                }
                for b in q_cands {
                    if a == b || !on_col(b, rhs_table, j.right.column) {
                        continue;
                    }
                    let (x, y) = if a < b { (*a, *b) } else { (*b, *a) };
                    pairs.insert((x, y));
                    if pairs.len() >= max_pairs {
                        break 'outer;
                    }
                }
            }
        }
    }
    pairs
        .into_iter()
        .map(|(a, b)| IndexSet::from_ids(universe, [a, b]))
        .collect()
}

/// The full atomic-configuration list used by the AutoAdmin greedy variant:
/// singletons first (Figure 5(d) fills those), then single-join pairs.
pub fn atomic_configurations(
    workload: &Workload,
    cands: &CandidateSet,
    max_pairs: usize,
) -> Vec<IndexSet> {
    let mut out = singletons(cands.len());
    out.extend(single_join_pairs(workload, cands, max_pairs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_default;
    use ixtune_workload::sql::parse_query;
    use ixtune_workload::{BenchmarkInstance, ColType, Schema, TableBuilder, Workload};

    fn join_instance() -> BenchmarkInstance {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("r", 50_000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 500)
                .build(),
        )
        .unwrap();
        s.add_table(
            TableBuilder::new("s", 80_000)
                .key("c", ColType::Int)
                .col("d", ColType::Int, 300)
                .build(),
        )
        .unwrap();
        let q = parse_query(&s, "q", "SELECT a, d FROM r, s WHERE r.b = s.c AND r.a = 7").unwrap();
        BenchmarkInstance::new(s, Workload::new("w", vec![q]))
    }

    #[test]
    fn singletons_enumerate_universe() {
        let sets = singletons(5);
        assert_eq!(sets.len(), 5);
        assert!(sets.iter().all(|s| s.len() == 1));
        assert!(sets
            .iter()
            .enumerate()
            .all(|(i, s)| s.contains(IndexId::from(i))));
    }

    #[test]
    fn join_pairs_link_both_sides() {
        let inst = join_instance();
        let cands = generate_default(&inst);
        let pairs = single_join_pairs(&inst.workload, &cands, 100);
        assert!(!pairs.is_empty(), "expected r.b/s.c atomic pairs");
        for p in &pairs {
            assert_eq!(p.len(), 2);
            let tables: Vec<_> = p.iter().map(|id| cands.indexes[id.index()].table).collect();
            assert_ne!(tables[0], tables[1]);
        }
    }

    #[test]
    fn atomic_list_has_singletons_first() {
        let inst = join_instance();
        let cands = generate_default(&inst);
        let atoms = atomic_configurations(&inst.workload, &cands, 10);
        assert!(atoms.len() > cands.len());
        for (i, a) in atoms.iter().enumerate() {
            if i < cands.len() {
                assert_eq!(a.len(), 1);
            }
        }
    }

    #[test]
    fn max_pairs_cap_respected() {
        let inst = join_instance();
        let cands = generate_default(&inst);
        let pairs = single_join_pairs(&inst.workload, &cands, 1);
        assert!(pairs.len() <= 1);
    }
}
