//! Candidate index generation (Figure 3 step 2 of the paper).
//!
//! For each query we propose a small set of promising indexes — filter
//! indexes keyed on selective predicate columns, join indexes keyed on join
//! columns, and order/group indexes — each in a narrow (keys-only) and a
//! covering (keys + INCLUDE) variant. The per-query sets are unioned and
//! deduplicated into the workload-level candidate universe that
//! configuration enumeration searches over.

use crate::indexable::{extract, IndexableColumns};
use ixtune_common::{ColumnId, IndexId, QueryId, TableId};
use ixtune_optimizer::IndexDef;
use ixtune_workload::{BenchmarkInstance, Query, ScanSlot, Schema};
use std::collections::HashMap;

/// Limits for candidate generation.
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// Max key columns per index.
    pub max_key_columns: usize,
    /// Max INCLUDE columns per index.
    pub max_include_columns: usize,
    /// Cap on candidates proposed per query (before workload-level dedup).
    pub max_per_query: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self {
            max_key_columns: 3,
            max_include_columns: 6,
            max_per_query: 40,
        }
    }
}

/// The candidate universe for a workload.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// All distinct candidate indexes; `IndexId` indexes into this.
    pub indexes: Vec<IndexDef>,
    /// For each query, the candidates generated from it (its "interesting"
    /// indexes) — drives two-phase search and the priors of Algorithm 4.
    pub per_query: Vec<Vec<IndexId>>,
}

impl CandidateSet {
    /// Number of candidates (the configuration-universe size `|I|`).
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Total number of (query, candidate) pairs — the `P` of Algorithm 4.
    pub fn num_query_index_pairs(&self) -> usize {
        self.per_query.iter().map(Vec::len).sum()
    }

    /// Candidates relevant to query `q`.
    pub fn for_query(&self, q: QueryId) -> &[IndexId] {
        &self.per_query[q.index()]
    }

    /// Candidate ids sorted by the row count of their table, descending —
    /// the paper's index-selection heuristic ("favor candidate indexes over
    /// large tables", §6.1).
    pub fn by_table_size(&self, schema: &Schema, ids: &[IndexId]) -> Vec<IndexId> {
        let mut v: Vec<IndexId> = ids.to_vec();
        v.sort_by_key(|id| std::cmp::Reverse(schema.table(self.indexes[id.index()].table).rows));
        v
    }
}

/// Generate candidates for one query.
fn per_query_candidates(q: &Query, opts: &GenOptions) -> Vec<IndexDef> {
    let mut out: Vec<IndexDef> = Vec::new();
    let mut push = |idx: IndexDef| {
        if !idx.keys.is_empty() && !out.contains(&idx) {
            out.push(idx);
        }
    };

    for slot_i in 0..q.num_scans() {
        let slot = ScanSlot(slot_i as u16);
        let table: TableId = q.table_of(slot);
        let cols: IndexableColumns = extract(q, slot);
        if cols.is_empty() {
            continue;
        }
        let referenced: Vec<ColumnId> = q.referenced_columns(slot).into_iter().collect();
        let include_for = |keys: &[ColumnId]| -> Vec<ColumnId> {
            referenced
                .iter()
                .filter(|c| !keys.contains(c))
                .take(opts.max_include_columns)
                .copied()
                .collect()
        };

        // Filter index: equality columns (most selective first), then one
        // range column.
        let mut filter_keys: Vec<ColumnId> = cols
            .equality
            .iter()
            .take(opts.max_key_columns.saturating_sub(1).max(1))
            .copied()
            .collect();
        if let Some(&r) = cols.range.first() {
            if filter_keys.len() < opts.max_key_columns {
                filter_keys.push(r);
            }
        }
        if !filter_keys.is_empty() {
            push(IndexDef::new(table, filter_keys.clone(), vec![]));
            push(IndexDef::new(
                table,
                filter_keys.clone(),
                include_for(&filter_keys),
            ));
        }

        // Per-column filter variants: each of the two most selective
        // equality columns alone, and a range-leading index — the kinds of
        // alternatives a real advisor enumerates before pruning.
        for &e in cols.equality.iter().take(2) {
            push(IndexDef::new(table, vec![e], vec![]));
            push(IndexDef::new(table, vec![e], include_for(&[e])));
        }
        if let Some(&r) = cols.range.first() {
            push(IndexDef::new(table, vec![r], include_for(&[r])));
        }

        // Join indexes: one per join column, with the best equality column
        // as a secondary key (mirrors Figure 3's `[R.b; R.a]`).
        for &j in cols.join.iter().take(3) {
            let mut keys = vec![j];
            if let Some(&e) = cols.equality.first() {
                if e != j && keys.len() < opts.max_key_columns {
                    keys.push(e);
                }
            }
            push(IndexDef::new(table, vec![j], vec![]));
            push(IndexDef::new(table, keys.clone(), include_for(&keys)));
        }

        // Two-column key permutations over the top key candidates — the
        // AutoAdmin-style enumeration of multi-column alternatives (leading
        // position matters for seeks, INL joins, and order, so both orders
        // are proposed).
        let key_cands = cols.key_candidates();
        for (i, &a) in key_cands.iter().take(3).enumerate() {
            for &b in key_cands.iter().take(3).skip(i + 1) {
                let ab = vec![a, b];
                let ba = vec![b, a];
                push(IndexDef::new(table, ab.clone(), include_for(&ab)));
                push(IndexDef::new(table, ba.clone(), include_for(&ba)));
            }
        }

        // Order/group index: grouping (or ordering) columns as keys.
        let sort_cols: &[ColumnId] = if !cols.group.is_empty() {
            &cols.group
        } else {
            &cols.order
        };
        if !sort_cols.is_empty() {
            let keys: Vec<ColumnId> = sort_cols
                .iter()
                .take(opts.max_key_columns)
                .copied()
                .collect();
            push(IndexDef::new(table, keys.clone(), include_for(&keys)));
        }
    }

    out.truncate(opts.max_per_query);
    out
}

/// Generate the workload-level candidate set.
pub fn generate(instance: &BenchmarkInstance, opts: &GenOptions) -> CandidateSet {
    let mut indexes: Vec<IndexDef> = Vec::new();
    let mut ids: HashMap<IndexDef, IndexId> = HashMap::new();
    let mut per_query: Vec<Vec<IndexId>> = Vec::with_capacity(instance.workload.len());

    for q in &instance.workload.queries {
        let mut q_ids: Vec<IndexId> = Vec::new();
        for idx in per_query_candidates(q, opts) {
            let id = *ids.entry(idx.clone()).or_insert_with(|| {
                indexes.push(idx);
                IndexId::from(indexes.len() - 1)
            });
            if !q_ids.contains(&id) {
                q_ids.push(id);
            }
        }
        per_query.push(q_ids);
    }
    CandidateSet { indexes, per_query }
}

/// Generate with default options.
pub fn generate_default(instance: &BenchmarkInstance) -> CandidateSet {
    generate(instance, &GenOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_workload::gen::{job, synth, tpch};
    use ixtune_workload::sql::parse_query;
    use ixtune_workload::{ColType, Schema, TableBuilder, Workload};

    /// The paper's Figure 3 running example.
    fn figure3() -> BenchmarkInstance {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("r", 100_000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 1_000)
                .build(),
        )
        .unwrap();
        s.add_table(
            TableBuilder::new("s", 200_000)
                .key("c", ColType::Int)
                .col("d", ColType::Int, 500)
                .build(),
        )
        .unwrap();
        let q1 = parse_query(
            &s,
            "Q1",
            "SELECT a, d FROM r, s WHERE r.b = s.c AND r.a = 5 AND s.d > 200",
        )
        .unwrap();
        let q2 = parse_query(&s, "Q2", "SELECT a FROM r, s WHERE r.b = s.c AND r.a = 40").unwrap();
        BenchmarkInstance::new(s, Workload::new("fig3", vec![q1, q2]))
    }

    #[test]
    fn figure3_candidates_cover_the_paper_shapes() {
        let inst = figure3();
        let set = generate_default(&inst);
        let schema = &inst.schema;
        let descs: Vec<String> = set.indexes.iter().map(|i| i.describe(schema)).collect();
        // Filter index on R keyed by a (paper's I1 = [R.a; R.b]).
        assert!(
            descs.iter().any(|d| d.starts_with("r(a")),
            "missing R filter index: {descs:?}"
        );
        // Join index on R.b (paper's I2 = [R.b; R.a]).
        assert!(
            descs.iter().any(|d| d.starts_with("r(b")),
            "missing R join index: {descs:?}"
        );
        // Join index on S.c (paper's I3/I5).
        assert!(
            descs.iter().any(|d| d.starts_with("s(c")),
            "missing S join index: {descs:?}"
        );
        // Both queries have candidates.
        assert!(!set.for_query(ixtune_common::QueryId::new(0)).is_empty());
        assert!(!set.for_query(ixtune_common::QueryId::new(1)).is_empty());
    }

    #[test]
    fn dedup_across_queries() {
        let inst = figure3();
        let set = generate_default(&inst);
        // Q1 and Q2 share the join structure; the union must dedup.
        let pairs = set.num_query_index_pairs();
        assert!(pairs > set.len(), "shared candidates imply pairs > union");
        // No duplicate defs.
        for (i, a) in set.indexes.iter().enumerate() {
            for b in &set.indexes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn respects_limits() {
        let inst = figure3();
        let opts = GenOptions {
            max_key_columns: 2,
            max_include_columns: 1,
            max_per_query: 3,
        };
        let set = generate(&inst, &opts);
        for idx in &set.indexes {
            assert!(idx.keys.len() <= 2);
            assert!(idx.includes.len() <= 1);
        }
        for q in &set.per_query {
            assert!(q.len() <= 3);
        }
    }

    #[test]
    fn tpch_candidate_universe_is_reasonable() {
        let set = generate_default(&tpch::generate(10.0));
        // 22 queries with up to 40 candidates each (including the pairwise
        // key permutations), heavily shared on lineitem: a few hundred
        // distinct candidates after dedup.
        assert!(set.len() >= 100, "{}", set.len());
        assert!(set.len() <= 500, "{}", set.len());
    }

    #[test]
    fn job_candidates_hit_hundreds() {
        let set = generate_default(&job::generate());
        // Paper: "hundreds to thousands of candidate indexes".
        assert!(set.len() >= 100, "{}", set.len());
    }

    #[test]
    fn by_table_size_sorts_descending() {
        let inst = figure3();
        let set = generate_default(&inst);
        let all: Vec<IndexId> = (0..set.len()).map(IndexId::from).collect();
        let sorted = set.by_table_size(&inst.schema, &all);
        let rows: Vec<u64> = sorted
            .iter()
            .map(|id| inst.schema.table(set.indexes[id.index()].table).rows)
            .collect();
        assert!(rows.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn synth_instances_generate_nonempty() {
        for seed in 0..10 {
            let inst = synth::instance(seed);
            let set = generate_default(&inst);
            assert_eq!(set.per_query.len(), inst.workload.len());
        }
    }
}
