//! Candidate index generation — the first stage of the index-tuning
//! architecture in Figure 1 of the paper.
//!
//! * [`indexable`] — classify each query's referenced columns (equality,
//!   range, join, group/order, payload);
//! * [`gen`] — propose per-query candidate indexes and union them into the
//!   workload-level [`CandidateSet`] that enumeration searches over;
//! * [`atomic`] — atomic configurations for the AutoAdmin greedy variant;
//! * [`merge`] — DTA-style index merging.

pub mod atomic;
pub mod gen;
pub mod indexable;
pub mod merge;

pub use gen::{generate, generate_default, CandidateSet, GenOptions};
pub use indexable::{extract, IndexableColumns};
