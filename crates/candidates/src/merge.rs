//! Index merging (Chaudhuri & Narasayya, ICDE 1999), used by the DTA-style
//! baseline: two indexes on the same table can be merged into one that
//! serves (possibly less efficiently) the queries both served, trading a
//! little seek precision for a lot of storage.

use ixtune_optimizer::IndexDef;

/// Merge two indexes on the same table: the first index's keys stay as the
/// key prefix, the second's keys that are not already present are appended,
/// and the include lists are unioned. Returns `None` when the indexes are
/// on different tables or the merge would equal one of the inputs.
pub fn merge(a: &IndexDef, b: &IndexDef) -> Option<IndexDef> {
    if a.table != b.table {
        return None;
    }
    let mut keys = a.keys.clone();
    for k in &b.keys {
        if !keys.contains(k) {
            keys.push(*k);
        }
    }
    let mut includes = a.includes.clone();
    includes.extend(b.includes.iter().copied());
    includes.extend(a.keys.iter().copied()); // normalized away by IndexDef::new
    let merged = IndexDef::new(a.table, keys, includes);
    if &merged == a || &merged == b {
        None
    } else {
        Some(merged)
    }
}

/// Produce merged variants for every same-table, same-leading-key pair in
/// `indexes`, deduplicated, capped at `limit`.
pub fn merge_candidates(indexes: &[IndexDef], limit: usize) -> Vec<IndexDef> {
    let mut out: Vec<IndexDef> = Vec::new();
    for (i, a) in indexes.iter().enumerate() {
        for b in &indexes[i + 1..] {
            if a.table != b.table || a.keys.first() != b.keys.first() {
                continue;
            }
            if let Some(m) = merge(a, b) {
                if !indexes.contains(&m) && !out.contains(&m) {
                    out.push(m);
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_common::{ColumnId, TableId};

    fn c(i: u32) -> ColumnId {
        ColumnId::new(i)
    }

    #[test]
    fn merge_unions_keys_and_includes() {
        let a = IndexDef::new(TableId::new(0), vec![c(0)], vec![c(2)]);
        let b = IndexDef::new(TableId::new(0), vec![c(0), c(1)], vec![c(3)]);
        let m = merge(&a, &b).unwrap();
        assert_eq!(m.keys, vec![c(0), c(1)]);
        assert_eq!(m.includes, vec![c(2), c(3)]);
    }

    #[test]
    fn merge_rejects_cross_table() {
        let a = IndexDef::new(TableId::new(0), vec![c(0)], vec![]);
        let b = IndexDef::new(TableId::new(1), vec![c(0)], vec![]);
        assert!(merge(&a, &b).is_none());
    }

    #[test]
    fn merge_rejects_no_op() {
        let a = IndexDef::new(TableId::new(0), vec![c(0), c(1)], vec![c(2)]);
        let sub = IndexDef::new(TableId::new(0), vec![c(0)], vec![]);
        // merge(a, sub) == a → None.
        assert!(merge(&a, &sub).is_none());
    }

    #[test]
    fn merge_candidates_same_leading_key_only() {
        let idxs = vec![
            IndexDef::new(TableId::new(0), vec![c(0)], vec![c(1)]),
            IndexDef::new(TableId::new(0), vec![c(0)], vec![c(2)]),
            IndexDef::new(TableId::new(0), vec![c(3)], vec![]),
        ];
        let merged = merge_candidates(&idxs, 10);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].keys, vec![c(0)]);
        assert_eq!(merged[0].includes, vec![c(1), c(2)]);
    }

    #[test]
    fn limit_is_respected() {
        let idxs: Vec<IndexDef> = (0..6)
            .map(|i| IndexDef::new(TableId::new(0), vec![c(0)], vec![c(i + 1)]))
            .collect();
        let merged = merge_candidates(&idxs, 3);
        assert_eq!(merged.len(), 3);
    }
}
