//! Indexable-column extraction (§2 of the paper, Figure 3 step 1).
//!
//! For each scan slot of a query we classify the referenced columns the way
//! AutoAdmin's candidate generation does: equality-filter columns, range
//! columns, join columns, grouping/ordering columns, and projection-only
//! payload columns (useful as included columns of covering indexes).

use ixtune_common::ColumnId;
use ixtune_workload::{FilterKind, Query, ScanSlot};
use std::collections::BTreeSet;

/// Classified indexable columns for one `(query, scan slot)` pair.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexableColumns {
    /// Equality-predicate columns, sorted by ascending selectivity (most
    /// selective first — the best leading key candidates).
    pub equality: Vec<ColumnId>,
    /// Range / prefix-LIKE predicate columns, ascending selectivity.
    pub range: Vec<ColumnId>,
    /// Equi-join columns.
    pub join: Vec<ColumnId>,
    /// GROUP BY columns (in clause order).
    pub group: Vec<ColumnId>,
    /// ORDER BY columns (in clause order).
    pub order: Vec<ColumnId>,
    /// Columns referenced only as payload (projection or residual filters):
    /// candidates for INCLUDE lists, not for keys.
    pub payload: Vec<ColumnId>,
}

impl IndexableColumns {
    /// Whether the slot offers anything for an index to latch onto.
    pub fn is_empty(&self) -> bool {
        self.equality.is_empty()
            && self.range.is_empty()
            && self.join.is_empty()
            && self.group.is_empty()
            && self.order.is_empty()
    }

    /// All seekable/orderable key candidates in priority order.
    pub fn key_candidates(&self) -> Vec<ColumnId> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for c in self
            .equality
            .iter()
            .chain(&self.join)
            .chain(&self.range)
            .chain(&self.group)
            .chain(&self.order)
        {
            if seen.insert(*c) {
                out.push(*c);
            }
        }
        out
    }
}

/// Extract indexable columns for `slot` of `q`.
pub fn extract(q: &Query, slot: ScanSlot) -> IndexableColumns {
    let mut by_sel: Vec<(f64, ColumnId, FilterKind)> = q
        .filters_on(slot)
        .map(|f| (f.selectivity, f.col.column, f.kind))
        .collect();
    by_sel.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut cols = IndexableColumns::default();
    let mut seen_eq = BTreeSet::new();
    let mut seen_rng = BTreeSet::new();
    for (_, col, kind) in &by_sel {
        match kind {
            FilterKind::Equality => {
                if seen_eq.insert(*col) {
                    cols.equality.push(*col);
                }
            }
            FilterKind::Range | FilterKind::Like => {
                if seen_rng.insert(*col) {
                    cols.range.push(*col);
                }
            }
            FilterKind::Residual => {}
        }
    }

    let mut seen_join = BTreeSet::new();
    for c in q.join_cols_on(slot) {
        if seen_join.insert(c) {
            cols.join.push(c);
        }
    }
    let push_unique = |dst: &mut Vec<ColumnId>, c: ColumnId| {
        if !dst.contains(&c) {
            dst.push(c);
        }
    };
    for qc in &q.group_by {
        if qc.scan == slot {
            push_unique(&mut cols.group, qc.column);
        }
    }
    for qc in &q.order_by {
        if qc.scan == slot {
            push_unique(&mut cols.order, qc.column);
        }
    }

    // Payload: anything referenced that is not already a key candidate.
    let keys: BTreeSet<ColumnId> = cols.key_candidates().into_iter().collect();
    for c in q.referenced_columns(slot) {
        if !keys.contains(&c) {
            cols.payload.push(c);
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_workload::{ColType, QCol, QueryBuilder, Schema, TableBuilder};

    fn setup() -> (Schema, Query) {
        let mut s = Schema::new();
        let r = s
            .add_table(
                TableBuilder::new("r", 10_000)
                    .key("a", ColType::Int)
                    .col("b", ColType::Int, 100)
                    .col("c", ColType::Int, 1_000)
                    .col("d", ColType::Int, 10)
                    .col("e", ColType::Int, 50)
                    .build(),
            )
            .unwrap();
        let t = s
            .add_table(TableBuilder::new("t", 100).key("x", ColType::Int).build())
            .unwrap();
        let mut b = QueryBuilder::new("q");
        let rs = b.scan(r);
        let ts = b.scan(t);
        let col = |i: u32| QCol::new(rs, ColumnId::new(i));
        b.eq(col(0), 0.0001) // very selective equality on a
            .eq(col(3), 0.1) // weaker equality on d
            .range(col(1), 0.2) // range on b
            .join(col(2), QCol::new(ts, ColumnId::new(0))) // join on c
            .group_by(col(4)) // group on e
            .project(col(1));
        (s, b.build())
    }

    #[test]
    fn classification_and_selectivity_order() {
        let (_, q) = setup();
        let cols = extract(&q, ScanSlot(0));
        // Equality sorted most-selective first: a (0.0001) before d (0.1).
        assert_eq!(cols.equality, vec![ColumnId::new(0), ColumnId::new(3)]);
        assert_eq!(cols.range, vec![ColumnId::new(1)]);
        assert_eq!(cols.join, vec![ColumnId::new(2)]);
        assert_eq!(cols.group, vec![ColumnId::new(4)]);
        assert!(cols.order.is_empty());
        // b is a key candidate (range), so payload holds nothing extra here.
        assert!(cols.payload.is_empty());
        assert!(!cols.is_empty());
    }

    #[test]
    fn key_candidates_deduplicate_and_prioritize() {
        let (_, q) = setup();
        let cols = extract(&q, ScanSlot(0));
        let keys = cols.key_candidates();
        assert_eq!(keys[0], ColumnId::new(0)); // best equality first
        assert_eq!(keys.len(), 5);
    }

    #[test]
    fn pure_projection_is_payload() {
        let mut s = Schema::new();
        let r = s
            .add_table(
                TableBuilder::new("r", 100)
                    .key("a", ColType::Int)
                    .col("b", ColType::Int, 10)
                    .build(),
            )
            .unwrap();
        let mut b = QueryBuilder::new("q");
        let rs = b.scan(r);
        b.eq(QCol::new(rs, ColumnId::new(0)), 0.01)
            .project(QCol::new(rs, ColumnId::new(1)));
        let q = b.build();
        let cols = extract(&q, ScanSlot(0));
        assert_eq!(cols.payload, vec![ColumnId::new(1)]);
    }

    #[test]
    fn slot_without_predicates_is_empty() {
        let (_, q) = setup();
        let cols = extract(&q, ScanSlot(1));
        // The t-side has a join column, so not empty.
        assert_eq!(cols.join, vec![ColumnId::new(0)]);
        // But a slot index beyond any predicate is empty.
        let mut s = Schema::new();
        let r = s
            .add_table(TableBuilder::new("r", 10).key("a", ColType::Int).build())
            .unwrap();
        let mut b = QueryBuilder::new("bare");
        b.scan(r);
        let bare = b.build();
        assert!(extract(&bare, ScanSlot(0)).is_empty());
    }

    #[test]
    fn residual_filters_are_not_keys() {
        let mut s = Schema::new();
        let r = s
            .add_table(
                TableBuilder::new("r", 100)
                    .key("a", ColType::Int)
                    .col("b", ColType::Int, 10)
                    .build(),
            )
            .unwrap();
        let mut b = QueryBuilder::new("q");
        let rs = b.scan(r);
        b.filter(QCol::new(rs, ColumnId::new(1)), FilterKind::Residual, 0.5);
        let q = b.build();
        let cols = extract(&q, ScanSlot(0));
        assert!(cols.equality.is_empty() && cols.range.is_empty());
        assert_eq!(cols.payload, vec![ColumnId::new(1)]);
    }
}
