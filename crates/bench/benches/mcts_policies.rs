//! Ablation micro-benchmarks: the cost of one MCTS tuning session per
//! policy combination (selection × rollout × extraction) — the per-cell
//! cost of Figures 22/23.

use criterion::{criterion_group, criterion_main, Criterion};
use ixtune_bench::Session;
use ixtune_core::prelude::*;
use ixtune_workload::gen::BenchmarkKind;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcts-policies-tpcds-b1000-k10");
    group.sample_size(10);

    let session = Session::build(BenchmarkKind::TpcDs);
    let ctx = session.ctx();
    let req = TuningRequest::cardinality(10, 1_000).with_seed(1);

    let variants = [
        (
            "uct-bce-random",
            SelectionPolicy::uct(),
            RolloutPolicy::RandomStep,
            Extraction::Bce,
        ),
        (
            "uct-bg-fixed0",
            SelectionPolicy::uct(),
            RolloutPolicy::FixedStep(0),
            Extraction::BestGreedy,
        ),
        (
            "prior-bce-random",
            SelectionPolicy::EpsilonGreedyPrior,
            RolloutPolicy::RandomStep,
            Extraction::Bce,
        ),
        (
            "prior-bg-fixed0",
            SelectionPolicy::EpsilonGreedyPrior,
            RolloutPolicy::FixedStep(0),
            Extraction::BestGreedy,
        ),
    ];
    for (name, selection, rollout, extraction) in variants {
        let tuner = MctsTuner::default()
            .with_selection(selection)
            .with_rollout(rollout)
            .with_extraction(extraction);
        group.bench_function(name, |b| b.iter(|| black_box(tuner.tune(&ctx, &req))));
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
