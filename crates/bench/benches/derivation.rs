//! Micro-benchmarks of cost derivation (Eq. 1) — the hot path of every
//! budget-aware enumeration algorithm once the budget runs out.

use criterion::{criterion_group, criterion_main, Criterion};
use ixtune_bench::Session;
use ixtune_common::rng::seeded;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_core::{
    frozen_argmin, Constraints, DerivationState, FrozenEval, MctsTuner, MeteredWhatIf,
    RolloutPolicy, SelectionPolicy, Tuner, TuningContext, VanillaGreedy, WarmSnapshot, WarmState,
    WarmStore, WhatIfCache,
};
use ixtune_optimizer::WhatIfOptimizer;
use ixtune_workload::gen::BenchmarkKind;
use rand::RngExt;
use std::hint::black_box;

fn primed_client(session: &Session, entries: usize) -> MeteredWhatIf<'_> {
    let mut mw = MeteredWhatIf::new(&session.opt, entries);
    let n = session.cands.len();
    let m = session.opt.num_queries();
    let mut rng = seeded(7);
    while !mw.meter().exhausted() {
        let q = QueryId::from(rng.random_range(0..m));
        let size = rng.random_range(1..4usize);
        let cfg = IndexSet::from_ids(n, (0..size).map(|_| IndexId::from(rng.random_range(0..n))));
        mw.what_if(q, &cfg);
    }
    mw
}

/// Raw what-if evaluations: the compiled per-query plan-table kernel
/// versus the interpreted reference model it replaced. Each iteration
/// prices the same 64-cell batch of (query, configuration) pairs, so the
/// two series differ only in the evaluation path and their ratio is the
/// kernel speedup.
fn bench_whatif(c: &mut Criterion) {
    let mut group = c.benchmark_group("whatif");
    group.sample_size(30);

    let mut session = Session::build(BenchmarkKind::TpcDs);
    session.opt.set_compiled(true);
    let n = session.cands.len();
    let m = session.opt.num_queries();
    let mut rng = seeded(13);
    let cells: Vec<(QueryId, IndexSet)> = (0..64)
        .map(|_| {
            let q = QueryId::from(rng.random_range(0..m));
            let size = rng.random_range(1..4usize);
            let cfg =
                IndexSet::from_ids(n, (0..size).map(|_| IndexId::from(rng.random_range(0..n))));
            (q, cfg)
        })
        .collect();

    group.bench_function("compiled-call", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (q, cfg) in &cells {
                acc += session.opt.what_if_cost(*q, cfg);
            }
            black_box(acc)
        })
    });
    group.bench_function("interpreted-call", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (q, cfg) in &cells {
                acc += session.opt.interpreted_what_if_cost(*q, cfg);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derivation");
    group.sample_size(30);

    let session = Session::build(BenchmarkKind::TpcDs);
    let n = session.cands.len();
    let probe = IndexSet::from_ids(n, (0..20usize).map(IndexId::from));

    for entries in [500usize, 5_000] {
        let mw = primed_client(&session, entries);
        group.bench_function(format!("derived-per-query-{entries}-entries"), |b| {
            b.iter(|| black_box(mw.derived(QueryId::new(0), &probe)))
        });
        group.bench_function(format!("derived-workload-{entries}-entries"), |b| {
            b.iter(|| black_box(mw.derived_workload(&probe)))
        });
        let cache = mw.cache();
        group.bench_function(format!("derived-with-extra-{entries}-entries"), |b| {
            let base = cache.derived(QueryId::new(0), &probe);
            b.iter(|| {
                black_box(cache.derived_with_extra(QueryId::new(0), &probe, IndexId::new(21), base))
            })
        });
        // The pre-postings shape: same derivation, linear scan of every
        // multi entry instead of the inverted postings for `extra`.
        group.bench_function(format!("derived-with-extra-scan-{entries}-entries"), |b| {
            let base = cache.derived(QueryId::new(0), &probe);
            b.iter(|| {
                black_box(cache.derived_with_extra_scan(
                    QueryId::new(0),
                    &probe,
                    IndexId::new(21),
                    base,
                ))
            })
        });
    }
    group.finish();
}

/// Synthetic cache with a controlled universe size: `queries` queries,
/// `entries` multi-index what-if results per query drawn uniformly.
fn synthetic_cache(universe: usize, queries: usize, entries: usize) -> WhatIfCache {
    let mut rng = seeded(universe as u64);
    let mut cache = WhatIfCache::new(universe, vec![1000.0; queries]);
    for q in 0..queries {
        let q = QueryId::from(q);
        let mut stored = 0;
        while stored < entries {
            let size = rng.random_range(2..4usize);
            let cfg = IndexSet::from_ids(
                universe,
                (0..size).map(|_| IndexId::from(rng.random_range(0..universe))),
            );
            let cost = rng.random_range(100..900) as f64;
            if cache.put(q, &cfg, cost) {
                stored += 1;
            }
        }
    }
    cache
}

/// One greedy step — score every candidate extension of a committed
/// configuration — in the shape the enumerators had before this change
/// (materialize `C ∪ {x}`, full `derived_workload` rescan) and after
/// (allocation-free `DerivationState::probe_extend` over the postings).
fn bench_greedy_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy-step");
    group.sample_size(10);

    for universe in [64usize, 256, 1024] {
        let cache = synthetic_cache(universe, 20, 200);
        let mut state = DerivationState::workload(&cache);
        for i in 0..4 {
            state.commit_recompute(&cache, IndexId::from(i * universe / 5));
        }
        let config = state.config().clone();

        group.bench_function(format!("full-rescan-u{universe}"), |b| {
            b.iter(|| {
                let mut best = f64::INFINITY;
                for x in config.complement_iter() {
                    let total = cache.derived_workload(&config.with(x));
                    if total < best {
                        best = total;
                    }
                }
                black_box(best)
            })
        });
        group.bench_function(format!("incremental-u{universe}"), |b| {
            b.iter(|| {
                let mut best = f64::INFINITY;
                for x in config.complement_iter() {
                    let total = state.probe_extend(&cache, x);
                    if total < best {
                        best = total;
                    }
                }
                black_box(best)
            })
        });
        // The frozen-cache batched kernel behind `--session-threads`: same
        // argmin, priced via one ascending-cost entry pass per query
        // instead of one postings walk per (candidate, query) pair, fanned
        // out over 4 logical threads. Smaller universes stay serial in the
        // real enumerators (MIN_PARALLEL_WORK), so they are not measured.
        if universe >= 256 {
            let queries: Vec<QueryId> = (0..20usize).map(QueryId::from).collect();
            let per_query = state.per_query().to_vec();
            let admissible: Vec<(usize, IndexId)> = config.complement_iter().enumerate().collect();
            cache.freeze();
            group.bench_function(format!("parallel-u{universe}"), |b| {
                b.iter(|| {
                    black_box(frozen_argmin(
                        &cache,
                        &queries,
                        &per_query,
                        &config,
                        &admissible,
                        FrozenEval::Derive,
                        4,
                        &ixtune_core::Obs::disabled(),
                    ))
                })
            });
        }
    }
    group.finish();
}

/// A snapshot holding every cost a donor run of `tuner` paid for — the
/// store state a second identical session checks out.
fn donor_snapshot(
    session: &Session,
    tuner: &dyn Tuner,
    req: &ixtune_core::TuningRequest,
) -> std::sync::Arc<WarmSnapshot> {
    let store = WarmStore::new(64 << 20);
    let fp = session.opt.content_fingerprint();
    let nq = session.opt.num_queries();
    let state = std::sync::Arc::new(WarmState::new(store.checkout(
        "bench",
        fp,
        nq,
        session.cands.len(),
    )));
    let ctx = TuningContext::new(&session.opt, &session.cands).with_warm(state.clone());
    let _ = tuner.tune(&ctx, req);
    store.absorb("bench", fp, nq, session.cands.len(), state.drain());
    store.checkout("bench", fp, nq, session.cands.len())
}

/// Whole greedy sessions, cold start vs seeded from a warm snapshot: the
/// second-session shape of the warm cost store — every budgeted what-if
/// is answered from the snapshot, so the simulated optimizer never runs.
fn bench_warm_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy-step");
    group.sample_size(10);

    let session = Session::build(BenchmarkKind::TpcDs);
    for budget in [256usize, 1024] {
        let req = ixtune_core::TuningRequest::cardinality(8, budget);
        group.bench_function(format!("coldstart-u{budget}"), |b| {
            b.iter(|| {
                let ctx = TuningContext::new(&session.opt, &session.cands);
                black_box(VanillaGreedy.tune(&ctx, &req))
            })
        });
        let snap = donor_snapshot(&session, &VanillaGreedy, &req);
        group.bench_function(format!("warm-u{budget}"), |b| {
            b.iter(|| {
                let warm = std::sync::Arc::new(WarmState::new(std::sync::Arc::clone(&snap)));
                let ctx = TuningContext::new(&session.opt, &session.cands).with_warm(warm);
                black_box(VanillaGreedy.tune(&ctx, &req))
            })
        });
    }

    // Durability leg (gated: IXTUNE_BENCH_DURABLE=1, used by
    // scripts/bench_guard.sh): the identical cold-start session run while
    // the process is actively persisting — iterations are interleaved
    // with the settle-time WAL batch append the daemon performs between
    // sessions, under the default `batch` fsync policy. The append sits
    // in `iter_batched` setup, outside the timed region, exactly as it
    // sits outside the search loop in `ixtuned`, and fires on a 1-in-8
    // duty cycle: these micro-sessions are ~1000x shorter than real
    // ones, so appending every iteration would model a WAL write density
    // the daemon never approaches and the measured floor would be pure
    // cache-pollution artifact. The guarded claim is that durability's
    // presence (interleaved WAL writes, page-cache and allocator
    // traffic) leaves the tuning hot path itself untouched, so the
    // floors must match the plain `coldstart-u*` baselines in
    // BENCH_5.json. Append latency itself is observable via the
    // `wal-append` span and `ixtune_persist_*` metrics instead.
    if std::env::var("IXTUNE_BENCH_DURABLE").as_deref() == Ok("1") {
        use ixtune_persist::{Durability, Persist, Record, WarmBatch, WarmEntry};

        let dir = std::env::temp_dir().join(format!("ixtune-bench-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (persist, _, _) = Persist::open(&dir, Durability::Batch).expect("open bench WAL");
        let fp = session.opt.content_fingerprint();
        let nq = session.opt.num_queries();
        for budget in [256usize, 1024] {
            let req = ixtune_core::TuningRequest::cardinality(8, budget);
            // A plain companion measured back-to-back with the durable
            // series (milliseconds apart, identical host conditions): the
            // guard compares the pair so host load drift between bench
            // groups cannot masquerade as persist overhead.
            group.bench_function(format!("durable-baseline-u{budget}"), |b| {
                b.iter(|| {
                    let ctx = TuningContext::new(&session.opt, &session.cands);
                    black_box(VanillaGreedy.tune(&ctx, &req))
                })
            });
            // One donor run builds the representative settle batch: every
            // cost a cold session of this budget pays.
            let warm = std::sync::Arc::new(WarmState::new(std::sync::Arc::new(
                WarmSnapshot::empty(nq, session.cands.len()),
            )));
            let ctx = TuningContext::new(&session.opt, &session.cands)
                .with_warm(std::sync::Arc::clone(&warm));
            let _ = VanillaGreedy.tune(&ctx, &req);
            let batch = Record::WarmBatch(WarmBatch {
                key: "bench".into(),
                fingerprint: fp,
                num_queries: nq as u32,
                universe: session.cands.len() as u32,
                entries: warm
                    .drain()
                    .into_iter()
                    .map(|(q, config, cost)| WarmEntry {
                        query: q.index() as u32,
                        blocks: config.as_blocks().to_vec(),
                        cost_bits: cost.to_bits(),
                    })
                    .collect(),
            });
            let mut tick = 0usize;
            group.bench_function(format!("durable-coldstart-u{budget}"), |b| {
                b.iter_batched(
                    || {
                        tick += 1;
                        if tick.is_multiple_of(8) {
                            persist.append(&batch).expect("append bench batch");
                        }
                    },
                    |_| {
                        let ctx = TuningContext::new(&session.opt, &session.cands);
                        black_box(VanillaGreedy.tune(&ctx, &req))
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
        drop(persist);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Whole MCTS sessions, single-tree vs root-parallel: 4 worker trees on
/// private budget shares merged into the master — the session-level shape
/// of the tentpole, not just the scan kernel. `episodes-warm` is the
/// single-tree session seeded from a prior identical run's snapshot.
fn bench_mcts_episodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcts");
    group.sample_size(10);

    let session = Session::build(BenchmarkKind::TpcDs);
    let ctx = TuningContext::new(&session.opt, &session.cands);
    let req = ixtune_core::TuningRequest::cardinality(8, 200).with_seed(5);

    group.bench_function("episodes-serial", |b| {
        let tuner = MctsTuner::default();
        b.iter(|| black_box(tuner.tune(&ctx, &req.with_session_threads(1))))
    });
    group.bench_function("episodes-parallel", |b| {
        let tuner = MctsTuner::default().with_root_workers(4);
        b.iter(|| black_box(tuner.tune(&ctx, &req.with_session_threads(4))))
    });
    let tuner = MctsTuner::default();
    let snap = donor_snapshot(&session, &tuner, &req.with_session_threads(1));
    group.bench_function("episodes-warm", |b| {
        b.iter(|| {
            let warm = std::sync::Arc::new(WarmState::new(std::sync::Arc::clone(&snap)));
            let warm_ctx = TuningContext::new(&session.opt, &session.cands).with_warm(warm);
            black_box(tuner.tune(&warm_ctx, &req.with_session_threads(1)))
        })
    });
    group.finish();
}

/// MCTS rollout completion — the other inner loop rewritten to reuse
/// its action/weight buffers instead of collecting fresh `Vec`s per step.
fn bench_rollout(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollout");
    group.sample_size(20);

    let session = Session::build(BenchmarkKind::TpcDs);
    let ctx = TuningContext::new(&session.opt, &session.cands);
    let constraints = Constraints::cardinality(8);
    let policy = RolloutPolicy::RandomStep;
    let selection = SelectionPolicy::uct();
    let empty = IndexSet::empty(ctx.universe());
    let mut rng = seeded(11);

    group.bench_function("random-step-completion", |b| {
        b.iter(|| black_box(policy.rollout(&ctx, &constraints, &selection, &[], &empty, &mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_whatif,
    bench_derivation,
    bench_greedy_step,
    bench_warm_sessions,
    bench_rollout,
    bench_mcts_episodes
);
criterion_main!(benches);
