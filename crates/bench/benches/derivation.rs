//! Micro-benchmarks of cost derivation (Eq. 1) — the hot path of every
//! budget-aware enumeration algorithm once the budget runs out.

use criterion::{criterion_group, criterion_main, Criterion};
use ixtune_bench::Session;
use ixtune_common::rng::seeded;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_core::MeteredWhatIf;
use ixtune_optimizer::WhatIfOptimizer;
use ixtune_workload::gen::BenchmarkKind;
use rand::RngExt;
use std::hint::black_box;

fn primed_client(session: &Session, entries: usize) -> MeteredWhatIf<'_> {
    let mut mw = MeteredWhatIf::new(&session.opt, entries);
    let n = session.cands.len();
    let m = session.opt.num_queries();
    let mut rng = seeded(7);
    while !mw.meter().exhausted() {
        let q = QueryId::from(rng.random_range(0..m));
        let size = rng.random_range(1..4usize);
        let cfg = IndexSet::from_ids(n, (0..size).map(|_| IndexId::from(rng.random_range(0..n))));
        mw.what_if(q, &cfg);
    }
    mw
}

fn bench_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derivation");
    group.sample_size(30);

    let session = Session::build(BenchmarkKind::TpcDs);
    let n = session.cands.len();
    let probe = IndexSet::from_ids(n, (0..20usize).map(IndexId::from));

    for entries in [500usize, 5_000] {
        let mw = primed_client(&session, entries);
        group.bench_function(format!("derived-per-query-{entries}-entries"), |b| {
            b.iter(|| black_box(mw.derived(QueryId::new(0), &probe)))
        });
        group.bench_function(format!("derived-workload-{entries}-entries"), |b| {
            b.iter(|| black_box(mw.derived_workload(&probe)))
        });
        let cache = mw.cache();
        group.bench_function(format!("derived-with-extra-{entries}-entries"), |b| {
            let base = cache.derived(QueryId::new(0), &probe);
            b.iter(|| {
                black_box(cache.derived_with_extra(QueryId::new(0), &probe, IndexId::new(21), base))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_derivation);
criterion_main!(benches);
