//! End-to-end tuner benchmarks: one full budgeted tuning session per
//! iteration, per algorithm — the cost of regenerating one figure cell.

use criterion::{criterion_group, criterion_main, Criterion};
use ixtune_baselines::{DbaBandits, DtaTuner, NoDba};
use ixtune_bench::Session;
use ixtune_core::prelude::*;
use ixtune_workload::gen::BenchmarkKind;
use std::hint::black_box;

fn bench_tuners(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuners-tpch-b200-k10");
    group.sample_size(10);

    let session = Session::build(BenchmarkKind::TpcH);
    let ctx = session.ctx();
    let req = TuningRequest::cardinality(10, 200).with_seed(1);

    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(VanillaGreedy),
        Box::new(TwoPhaseGreedy),
        Box::new(AutoAdminGreedy::default()),
        Box::new(MctsTuner::default()),
        Box::new(DbaBandits::default()),
        Box::new(NoDba::default()),
        Box::new(DtaTuner::default()),
    ];
    for tuner in &tuners {
        group.bench_function(tuner.name(), |b| {
            b.iter(|| black_box(tuner.tune(&ctx, &req)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tuners);
criterion_main!(benches);
