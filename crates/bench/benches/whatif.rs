//! Micro-benchmarks of the simulated optimizer's what-if calls — the unit
//! of budget in every experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ixtune_bench::Session;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_optimizer::WhatIfOptimizer;
use ixtune_workload::gen::BenchmarkKind;
use std::hint::black_box;

fn bench_whatif(c: &mut Criterion) {
    let mut group = c.benchmark_group("whatif");
    group.sample_size(30);

    for kind in [BenchmarkKind::TpcH, BenchmarkKind::TpcDs] {
        let session = Session::build(kind);
        let n = session.cands.len();
        let empty = IndexSet::empty(n);
        let half = IndexSet::from_ids(n, (0..n).step_by(2).map(IndexId::from));

        group.bench_function(format!("{}-empty-config", kind.name()), |b| {
            b.iter_batched(
                || QueryId::new(0),
                |q| black_box(session.opt.what_if_cost(q, &empty)),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("{}-half-config", kind.name()), |b| {
            b.iter_batched(
                || QueryId::new(0),
                |q| black_box(session.opt.what_if_cost(q, &half)),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("{}-workload-cost", kind.name()), |b| {
            b.iter(|| black_box(session.opt.workload_cost(&half)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_whatif);
criterion_main!(benches);
