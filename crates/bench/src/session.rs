//! A prepared tuning session: workload + candidates + simulated optimizer.

use ixtune_candidates::{generate_default, CandidateSet};
use ixtune_core::tuner::TuningContext;
use ixtune_optimizer::{CostModel, SimulatedOptimizer};
use ixtune_workload::gen::BenchmarkKind;
use ixtune_workload::WorkloadStats;

/// Everything the experiment runners need for one benchmark workload.
pub struct Session {
    pub kind: BenchmarkKind,
    pub stats: WorkloadStats,
    pub cands: CandidateSet,
    pub opt: SimulatedOptimizer,
}

impl Session {
    /// Generate the workload, derive candidates, and build the optimizer.
    pub fn build(kind: BenchmarkKind) -> Self {
        Self::build_with(kind, CostModel::default())
    }

    /// Build with a custom cost model — e.g. `quirk_eps > 0` for the
    /// robustness experiment, where Assumption 1 (monotonicity) is allowed
    /// to fail like it can on a real optimizer.
    pub fn build_with(kind: BenchmarkKind, model: CostModel) -> Self {
        let inst = kind.generate();
        let stats = inst.stats();
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), model);
        Self {
            kind,
            stats,
            cands,
            opt,
        }
    }

    pub fn ctx(&self) -> TuningContext<'_> {
        TuningContext::new(&self.opt, &self.cands)
    }

    /// Decompose into the owned pieces a long-lived host (e.g. the tuning
    /// service) needs to keep: the candidate set and the optimizer. The
    /// host builds its own `TuningContext` views over them.
    pub fn into_parts(self) -> (CandidateSet, SimulatedOptimizer) {
        (self.cands, self.opt)
    }

    /// The default storage-constraint limit used by the DTA comparison:
    /// 3× the database size (the DTA default noted in §7.3).
    pub fn storage_limit_3x(&self) -> u64 {
        self.opt.schema().database_size_bytes().saturating_mul(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_tpch_session() {
        let s = Session::build(BenchmarkKind::TpcH);
        assert_eq!(s.stats.num_queries, 22);
        assert!(s.cands.len() > 50);
        assert!(s.storage_limit_3x() > s.opt.schema().database_size_bytes());
        let ctx = s.ctx();
        assert_eq!(ctx.universe(), s.cands.len());
    }
}
