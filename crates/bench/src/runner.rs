//! Grid runner: sweep (algorithm × K × budget × seed) and aggregate.

use crate::session::Session;
use ixtune_core::tuner::{Constraints, Tuner, TuningResult};
use serde::Serialize;

/// An algorithm entry in a sweep.
pub struct Algo {
    pub tuner: Box<dyn Tuner + Sync>,
    /// Stochastic algorithms run once per seed; deterministic ones once.
    pub stochastic: bool,
}

impl Algo {
    pub fn new(tuner: impl Tuner + Sync + 'static, stochastic: bool) -> Self {
        Self {
            tuner: Box::new(tuner),
            stochastic,
        }
    }
}

/// One aggregated grid cell.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    pub algorithm: String,
    pub k: usize,
    pub budget: usize,
    /// Mean improvement in percent across seeds.
    pub mean_pct: f64,
    /// Standard deviation across seeds (0 for deterministic algorithms).
    pub std_pct: f64,
    pub seeds: usize,
    pub calls_used: usize,
}

/// Aggregate per-seed results into a cell.
pub fn aggregate(algorithm: &str, k: usize, budget: usize, runs: &[TuningResult]) -> Cell {
    let vals: Vec<f64> = runs.iter().map(|r| r.improvement_pct()).collect();
    let n = vals.len().max(1) as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    Cell {
        algorithm: algorithm.to_string(),
        k,
        budget,
        mean_pct: mean,
        std_pct: var.sqrt(),
        seeds: runs.len(),
        calls_used: runs.iter().map(|r| r.calls_used).max().unwrap_or(0),
    }
}

/// Run `algos` over the cross product of `ks` × `budgets`, with `seeds`
/// seeds for stochastic algorithms. `constraints` builds the constraint for
/// each K (so storage limits can be attached).
pub fn run_grid(
    session: &Session,
    algos: &[Algo],
    ks: &[usize],
    budgets: &[usize],
    seeds: &[u64],
    constraints: impl Fn(usize) -> Constraints,
) -> Vec<Cell> {
    let ctx = session.ctx();
    let mut cells = Vec::new();
    for &k in ks {
        let cons = constraints(k);
        for &budget in budgets {
            for algo in algos {
                let seed_list: &[u64] = if algo.stochastic { seeds } else { &seeds[..1] };
                let runs: Vec<TuningResult> = seed_list
                    .iter()
                    .map(|&s| algo.tuner.tune(&ctx, &cons, budget, s))
                    .collect();
                cells.push(aggregate(&algo.tuner.name(), k, budget, &runs));
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_core::prelude::*;
    use ixtune_workload::gen::BenchmarkKind;

    #[test]
    fn aggregate_statistics() {
        use ixtune_common::IndexSet;
        use ixtune_core::matrix::Layout;
        let mk = |imp: f64| TuningResult {
            algorithm: "x".into(),
            config: IndexSet::empty(1),
            calls_used: 5,
            improvement: imp,
            layout: Layout::default(),
        };
        let cell = aggregate("x", 10, 100, &[mk(0.2), mk(0.4)]);
        assert!((cell.mean_pct - 30.0).abs() < 1e-9);
        assert!((cell.std_pct - 10.0).abs() < 1e-9);
        assert_eq!(cell.seeds, 2);
        assert_eq!(cell.calls_used, 5);
    }

    #[test]
    fn grid_runs_small_sweep() {
        let session = Session::build(BenchmarkKind::TpcH);
        let algos = vec![
            Algo::new(VanillaGreedy, false),
            Algo::new(MctsTuner::default(), true),
        ];
        let cells = run_grid(
            &session,
            &algos,
            &[5],
            &[50, 100],
            &[1, 2],
            Constraints::cardinality,
        );
        assert_eq!(cells.len(), 4);
        let mcts = cells.iter().find(|c| c.algorithm == "MCTS").unwrap();
        assert_eq!(mcts.seeds, 2);
        let vg = cells
            .iter()
            .find(|c| c.algorithm == "Vanilla Greedy")
            .unwrap();
        assert_eq!(vg.seeds, 1);
    }
}
