//! Grid runner: sweep (algorithm × K × budget × seed) and aggregate.
//!
//! Cells are independent tuning sessions, so the sweep fans out over a
//! work-stealing thread pool (`jobs` workers over scoped threads). Output
//! order is deterministic regardless of scheduling: cells are flattened in
//! serial order up front and collected by cell index, never by completion
//! order, so `jobs = 4` returns the exact `Vec<Cell>` that `jobs = 1` does
//! (modulo wall-clock readings).

use crate::session::Session;
use ixtune_core::budget::SessionTelemetry;
use ixtune_core::tuner::{Constraints, Tuner, TuningRequest, TuningResult};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// An algorithm entry in a sweep.
pub struct Algo {
    pub tuner: Box<dyn Tuner>,
}

impl Algo {
    pub fn new(tuner: impl Tuner + 'static) -> Self {
        Self {
            tuner: Box::new(tuner),
        }
    }
}

/// Per-cell session telemetry, summed across the seeds of the cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct CellTelemetry {
    /// Budgeted what-if calls issued to the optimizer.
    pub what_if_calls: usize,
    /// Cost requests answered by the session cache (free).
    pub cache_hits: usize,
    /// Cost requests answered by derivation (Eq. 1 / Eq. 2).
    pub derivations: usize,
    /// What-if calls spent bootstrapping priors (Algorithm 4).
    pub priors_calls: usize,
    /// What-if calls spent evaluating tree-selected configurations.
    pub selection_calls: usize,
    /// What-if calls spent evaluating rollout-completed configurations.
    pub rollout_calls: usize,
    /// What-if calls outside any labelled phase (greedy/baseline tuners).
    pub other_calls: usize,
    /// Logical session thread count the cell's sessions resolved (max
    /// across seeds — they all resolve the same request).
    pub session_threads: usize,
    /// Frozen-cache parallel candidate scans across the cell's sessions.
    pub parallel_scans: usize,
    /// Root-parallel MCTS tree merges across the cell's sessions.
    pub tree_merges: usize,
    /// Under-granted batched budget reservations (should stay 0).
    pub reservation_shortfalls: usize,
    /// Wall-clock spent tuning, summed across seeds, in milliseconds.
    pub wall_clock_ms: f64,
    /// Budgeted calls answered from the warm cost store across the cell's
    /// sessions (0 outside the service).
    pub warm_hits: usize,
    /// Warm store entries the cell's sessions were seeded with.
    pub warm_seeded: usize,
}

impl From<CellTelemetry> for SessionTelemetry {
    fn from(c: CellTelemetry) -> Self {
        Self {
            what_if_calls: c.what_if_calls,
            cache_hits: c.cache_hits,
            derivations: c.derivations,
            priors_calls: c.priors_calls,
            selection_calls: c.selection_calls,
            rollout_calls: c.rollout_calls,
            other_calls: c.other_calls,
            session_threads: c.session_threads,
            parallel_scans: c.parallel_scans,
            tree_merges: c.tree_merges,
            reservation_shortfalls: c.reservation_shortfalls,
            wall_clock_ms: c.wall_clock_ms,
            warm_hits: c.warm_hits,
            warm_seeded: c.warm_seeded,
        }
    }
}

impl CellTelemetry {
    fn accumulate(&mut self, t: &SessionTelemetry) {
        self.what_if_calls += t.what_if_calls;
        self.cache_hits += t.cache_hits;
        self.derivations += t.derivations;
        self.priors_calls += t.priors_calls;
        self.selection_calls += t.selection_calls;
        self.rollout_calls += t.rollout_calls;
        self.other_calls += t.other_calls;
        self.session_threads = self.session_threads.max(t.session_threads);
        self.parallel_scans += t.parallel_scans;
        self.tree_merges += t.tree_merges;
        self.reservation_shortfalls += t.reservation_shortfalls;
        self.wall_clock_ms += t.wall_clock_ms;
        self.warm_hits += t.warm_hits;
        self.warm_seeded += t.warm_seeded;
    }
}

/// One aggregated grid cell.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Cell {
    pub algorithm: String,
    pub k: usize,
    pub budget: usize,
    /// Mean improvement in percent across seeds.
    pub mean_pct: f64,
    /// Standard deviation across seeds (0 for deterministic algorithms).
    pub std_pct: f64,
    pub seeds: usize,
    pub calls_used: usize,
    /// Session telemetry summed across this cell's seeds.
    pub telemetry: CellTelemetry,
}

/// Aggregate per-seed results into a cell.
pub fn aggregate(algorithm: &str, k: usize, budget: usize, runs: &[TuningResult]) -> Cell {
    let vals: Vec<f64> = runs.iter().map(|r| r.improvement_pct()).collect();
    let n = vals.len().max(1) as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let mut telemetry = CellTelemetry::default();
    for r in runs {
        telemetry.accumulate(&r.telemetry);
    }
    Cell {
        algorithm: algorithm.to_string(),
        k,
        budget,
        mean_pct: mean,
        std_pct: var.sqrt(),
        seeds: runs.len(),
        calls_used: runs.iter().map(|r| r.calls_used).max().unwrap_or(0),
        telemetry,
    }
}

/// Cap the per-session thread count so `jobs` concurrent sessions cannot
/// oversubscribe the host: with `jobs > 1`, each session gets at most
/// `available_parallelism / jobs` threads (floored to 1). `requested = 0`
/// (auto) resolves to the available parallelism before capping. Returns
/// the capped value and warns on stderr when it actually clamps.
pub fn cap_session_threads(jobs: usize, requested: usize) -> usize {
    let avail = ixtune_common::sync::available_parallelism();
    let requested = if requested == 0 { avail } else { requested };
    let jobs = jobs.max(1);
    let cap = (avail / jobs).max(1);
    if requested > cap {
        eprintln!(
            "warning: --session-threads {requested} x --jobs {jobs} oversubscribes \
             {avail} available threads; capping sessions to {cap} thread(s)"
        );
        cap
    } else {
        requested
    }
}

/// Run `algos` over the cross product of `ks` × `budgets`, with `seeds`
/// seeds for stochastic algorithms, on `jobs` worker threads (`jobs <= 1`
/// runs inline). Each tuning session runs with `session_threads` logical
/// intra-session threads (results are invariant to it; see
/// [`cap_session_threads`] for the oversubscription guard callers should
/// apply). `constraints` builds the constraint for each K (so storage
/// limits can be attached).
#[allow(clippy::too_many_arguments)]
pub fn run_grid(
    session: &Session,
    algos: &[Algo],
    ks: &[usize],
    budgets: &[usize],
    seeds: &[u64],
    jobs: usize,
    session_threads: usize,
    constraints: impl Fn(usize) -> Constraints + Sync,
) -> Vec<Cell> {
    // Flatten the grid in serial order; this is the output order.
    let mut specs: Vec<(usize, usize, usize)> = Vec::new();
    for &k in ks {
        for &budget in budgets {
            for ai in 0..algos.len() {
                specs.push((k, budget, ai));
            }
        }
    }

    let run_cell = |&(k, budget, ai): &(usize, usize, usize)| -> Cell {
        let ctx = session.ctx();
        let algo = &algos[ai];
        let cons = constraints(k);
        let seed_list: &[u64] = if algo.tuner.is_stochastic() {
            seeds
        } else {
            &seeds[..1]
        };
        let runs: Vec<TuningResult> = seed_list
            .iter()
            .map(|&s| {
                // `Instant` is monotonic, so wall-clock readings cannot go
                // negative even if the system clock is adjusted mid-sweep.
                let start = Instant::now();
                let mut r = algo.tuner.tune(
                    &ctx,
                    &TuningRequest::new(cons, budget)
                        .with_seed(s)
                        .with_session_threads(session_threads),
                );
                r.telemetry.wall_clock_ms = start.elapsed().as_secs_f64() * 1e3;
                r
            })
            .collect();
        aggregate(&algo.tuner.name(), k, budget, &runs)
    };

    if jobs <= 1 || specs.len() <= 1 {
        return specs.iter().map(run_cell).collect();
    }

    // Work stealing: workers pull the next unclaimed cell index; results
    // are filed by index so the merge is order-independent.
    let next = AtomicUsize::new(0);
    let workers = jobs.min(specs.len());
    let mut slots: Vec<Option<Cell>> = Vec::new();
    slots.resize_with(specs.len(), || None);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    let mut done: Vec<(usize, Cell)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        done.push((i, run_cell(&specs[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, cell) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(cell);
            }
        }
    })
    .expect("sweep scope panicked");
    slots
        .into_iter()
        .map(|c| c.expect("every grid cell is claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_core::prelude::*;
    use ixtune_workload::gen::BenchmarkKind;

    #[test]
    fn aggregate_statistics() {
        use ixtune_common::IndexSet;
        use ixtune_core::matrix::Layout;
        let mk = |imp: f64| TuningResult {
            algorithm: "x".into(),
            config: IndexSet::empty(1),
            calls_used: 5,
            improvement: imp,
            layout: Layout::default(),
            telemetry: SessionTelemetry {
                what_if_calls: 5,
                cache_hits: 2,
                derivations: 3,
                other_calls: 5,
                wall_clock_ms: 1.5,
                ..SessionTelemetry::default()
            },
            stop_reason: None,
        };
        let cell = aggregate("x", 10, 100, &[mk(0.2), mk(0.4)]);
        assert!((cell.mean_pct - 30.0).abs() < 1e-9);
        assert!((cell.std_pct - 10.0).abs() < 1e-9);
        assert_eq!(cell.seeds, 2);
        assert_eq!(cell.calls_used, 5);
        // Telemetry sums across seeds.
        assert_eq!(cell.telemetry.what_if_calls, 10);
        assert_eq!(cell.telemetry.cache_hits, 4);
        assert_eq!(cell.telemetry.derivations, 6);
        assert_eq!(cell.telemetry.other_calls, 10);
        assert!((cell.telemetry.wall_clock_ms - 3.0).abs() < 1e-9);
    }

    #[test]
    fn grid_runs_small_sweep() {
        let session = Session::build(BenchmarkKind::TpcH);
        let algos = vec![Algo::new(VanillaGreedy), Algo::new(MctsTuner::default())];
        let cells = run_grid(
            &session,
            &algos,
            &[5],
            &[50, 100],
            &[1, 2],
            1,
            1,
            Constraints::cardinality,
        );
        assert_eq!(cells.len(), 4);
        let mcts = cells.iter().find(|c| c.algorithm == "MCTS").unwrap();
        assert_eq!(mcts.seeds, 2);
        // MCTS attributes its calls to phases; the phase split covers every
        // budgeted call.
        let t = &mcts.telemetry;
        assert!(t.what_if_calls > 0);
        assert_eq!(
            t.priors_calls + t.selection_calls + t.rollout_calls + t.other_calls,
            t.what_if_calls
        );
        assert!(t.priors_calls > 0, "default MCTS bootstraps priors");
        let vg = cells
            .iter()
            .find(|c| c.algorithm == "Vanilla Greedy")
            .unwrap();
        assert_eq!(vg.seeds, 1);
        assert_eq!(vg.telemetry.other_calls, vg.telemetry.what_if_calls);
        assert!(vg.telemetry.wall_clock_ms > 0.0);
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let session = Session::build(BenchmarkKind::TpcH);
        let mk_algos = || {
            vec![
                Algo::new(VanillaGreedy),
                Algo::new(TwoPhaseGreedy),
                Algo::new(MctsTuner::default()),
            ]
        };
        let run = |jobs: usize| {
            // Pin an explicit session thread count for both runs: results
            // must not depend on it, and pinning keeps the comparison
            // independent of the host's core count.
            run_grid(
                &session,
                &mk_algos(),
                &[3, 5],
                &[30, 60],
                &[1, 2],
                jobs,
                2,
                Constraints::cardinality,
            )
        };
        let strip_clock = |cells: Vec<Cell>| -> Vec<Cell> {
            cells
                .into_iter()
                .map(|mut c| {
                    // Wall clock is a measurement, not an output; everything
                    // else must be byte-identical.
                    c.telemetry.wall_clock_ms = 0.0;
                    c
                })
                .collect()
        };
        let serial = strip_clock(run(1));
        let parallel = strip_clock(run(4));
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn session_thread_cap_prevents_oversubscription() {
        let avail = ixtune_common::sync::available_parallelism();
        // jobs = 1: requests pass through (auto resolves to the host).
        assert_eq!(cap_session_threads(1, 1), 1);
        assert_eq!(cap_session_threads(1, 0), avail);
        assert_eq!(cap_session_threads(0, 1), 1, "jobs floor at 1");
        // More jobs than cores: sessions fall back to a single thread.
        assert_eq!(cap_session_threads(2 * avail, 0), 1);
        assert_eq!(cap_session_threads(2 * avail, 8), 1);
        // The cap never exceeds the per-job share.
        for jobs in 1..=4usize {
            let c = cap_session_threads(jobs, 0);
            assert!(c * jobs <= avail.max(jobs), "cap {c} x jobs {jobs}");
            assert!(c >= 1);
        }
    }
}
