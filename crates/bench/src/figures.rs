//! One runner per table/figure of the paper's evaluation (§7 and the
//! appendix). Each returns the rendered report text and writes CSV/JSON
//! sidecars into the output directory. See DESIGN.md §4 for the index.

use crate::report::{render_series, render_table, write_results};
use crate::runner::{cap_session_threads, run_grid, Algo, Cell};
use crate::session::Session;
use ixtune_baselines::{DbaBandits, DtaTuner, NoDba};
use ixtune_core::prelude::*;
use ixtune_optimizer::{LatencyModel, TuningClock};
use ixtune_workload::gen::BenchmarkKind;
use ixtune_workload::WorkloadStats;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    pub out_dir: PathBuf,
    /// Seeds for stochastic tuners (the paper uses 5).
    pub seeds: Vec<u64>,
    /// Cardinality constraints swept (the paper uses {5, 10, 20}).
    pub ks: Vec<usize>,
    /// Worker threads for grid sweeps (1 = serial).
    pub jobs: usize,
    /// Logical threads per tuning session (0 = auto-detect). Results are
    /// invariant to it; `jobs × session_threads` is capped to the host's
    /// parallelism by [`cap_session_threads`] before sweeps run.
    pub session_threads: usize,
}

impl ExpConfig {
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        Self {
            out_dir: out_dir.into(),
            seeds: vec![1, 2, 3, 4, 5],
            ks: vec![5, 10, 20],
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            session_threads: 0,
        }
    }

    /// Reduced grid for smoke runs.
    pub fn quick(mut self) -> Self {
        self.seeds.truncate(2);
        self.ks = vec![10];
        self
    }
}

fn greedy_algos() -> Vec<Algo> {
    vec![
        Algo::new(VanillaGreedy),
        Algo::new(TwoPhaseGreedy),
        Algo::new(AutoAdminGreedy::default()),
        Algo::new(MctsTuner::default()),
    ]
}

fn rl_algos() -> Vec<Algo> {
    vec![
        Algo::new(DbaBandits::default()),
        Algo::new(NoDba::default()),
        Algo::new(MctsTuner::default()),
    ]
}

fn sweep(
    session: &Session,
    algos: Vec<Algo>,
    cfg: &ExpConfig,
    name: &str,
    title: &str,
    constraints: impl Fn(usize) -> Constraints + Sync,
) -> String {
    let budgets = session.kind.budget_grid();
    let session_threads = cap_session_threads(cfg.jobs, cfg.session_threads);
    let mut out = String::new();
    let mut all_cells: Vec<Cell> = Vec::new();
    for &k in &cfg.ks {
        let cells = run_grid(
            session,
            &algos,
            &[k],
            budgets,
            &cfg.seeds,
            cfg.jobs,
            session_threads,
            &constraints,
        );
        let _ = writeln!(
            out,
            "{}",
            render_table(&format!("{title} — {} K={k}", session.kind.name()), &cells)
        );
        all_cells.extend(cells);
    }
    write_results(&cfg.out_dir, name, &all_cells).expect("write results");
    out
}

/// Table 1: workload statistics for all five benchmarks.
pub fn table1(cfg: &ExpConfig) -> String {
    let mut out = String::from("## Table 1 — database and workload statistics\n");
    let mut stats_rows: Vec<WorkloadStats> = Vec::new();
    let _ = writeln!(
        out,
        "{:<8} {:>9} {:>9} {:>8} {:>11} {:>13} {:>11}",
        "name", "size(GB)", "#queries", "#tables", "avg #joins", "avg #filters", "avg #scans"
    );
    for kind in BenchmarkKind::ALL {
        let inst = kind.generate();
        let s = inst.stats();
        let _ = writeln!(
            out,
            "{:<8} {:>9.1} {:>9} {:>8} {:>11.1} {:>13.1} {:>11.1}",
            s.name, s.size_gb, s.num_queries, s.num_tables, s.avg_joins, s.avg_filters, s.avg_scans
        );
        stats_rows.push(s);
    }
    std::fs::create_dir_all(&cfg.out_dir).ok();
    std::fs::write(
        cfg.out_dir.join("table1.json"),
        serde_json::to_string_pretty(&stats_rows).unwrap(),
    )
    .ok();
    out
}

/// Figure 2: tuning-time decomposition on TPC-DS (K = 20), budgets
/// 1000..5000 — what-if time versus other tuning time.
pub fn fig2(cfg: &ExpConfig) -> String {
    let session = Session::build(BenchmarkKind::TpcDs);
    let ctx = session.ctx();
    let model = LatencyModel::default();
    let mut out =
        String::from("## Figure 2 — TPC-DS tuning time split (K=20, budget-constrained greedy)\n");
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>14} {:>12} {:>10}",
        "budget", "what-if (min)", "other (min)", "total (min)", "what-if %"
    );
    let mut rows = Vec::new();
    for &budget in BenchmarkKind::TpcDs.budget_grid() {
        let r = TwoPhaseGreedy.tune(&ctx, &TuningRequest::cardinality(20, budget));
        let mut clock = TuningClock::new(&model);
        for (q, _) in r.layout.cells() {
            clock.record_call(&model, session.opt.query(*q));
        }
        // Derived-only evaluations add "other" time: approximate them by
        // the enumeration's evaluation count beyond the budgeted calls.
        let derived_evals = (session.cands.len() * 2).saturating_sub(r.calls_used);
        for _ in 0..derived_evals {
            clock.record_derived(&model);
        }
        let _ = writeln!(
            out,
            "{:>8} {:>14.1} {:>14.1} {:>12.1} {:>9.0}%",
            budget,
            clock.what_if_s / 60.0,
            clock.other_s / 60.0,
            clock.total_s() / 60.0,
            clock.what_if_fraction() * 100.0
        );
        rows.push(serde_json::json!({
            "budget": budget,
            "what_if_min": clock.what_if_s / 60.0,
            "other_min": clock.other_s / 60.0,
            "fraction": clock.what_if_fraction(),
        }));
    }
    std::fs::create_dir_all(&cfg.out_dir).ok();
    std::fs::write(
        cfg.out_dir.join("fig2.json"),
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
    out
}

/// Figures 8/9/10/16/17: MCTS versus the budget-aware greedy variants.
pub fn greedy_comparison(kind: BenchmarkKind, fig: &str, cfg: &ExpConfig) -> String {
    let session = Session::build(kind);
    sweep(
        &session,
        greedy_algos(),
        cfg,
        fig,
        &format!("Figure {fig} — greedy variants vs MCTS"),
        Constraints::cardinality,
    )
}

/// Figures 11/12/13/18/19: MCTS versus the existing RL approaches.
pub fn rl_comparison(kind: BenchmarkKind, fig: &str, cfg: &ExpConfig) -> String {
    let session = Session::build(kind);
    sweep(
        &session,
        rl_algos(),
        cfg,
        fig,
        &format!("Figure {fig} — RL baselines vs MCTS"),
        Constraints::cardinality,
    )
}

/// Figures 14/21: per-round convergence of DBA bandits and No DBA, with the
/// MCTS average as a reference line.
pub fn convergence(
    kind: BenchmarkKind,
    k: usize,
    budget: usize,
    fig: &str,
    cfg: &ExpConfig,
) -> String {
    let session = Session::build(kind);
    let ctx = session.ctx();
    let seed = cfg.seeds.first().copied().unwrap_or(1);
    let req = TuningRequest::cardinality(k, budget).with_seed(seed);

    let (_, bandit_trace) = DbaBandits::default().tune_traced(&ctx, &req);
    let (_, dqn_trace) = NoDba::default().tune_traced(&ctx, &req);
    let mcts_runs: Vec<_> = cfg
        .seeds
        .iter()
        .map(|&s| MctsTuner::default().tune(&ctx, &req.with_seed(s)))
        .collect();
    let mcts_mean =
        mcts_runs.iter().map(|r| r.improvement_pct()).sum::<f64>() / mcts_runs.len() as f64;
    let rounds = bandit_trace.len().max(dqn_trace.len());
    let mcts_line = vec![mcts_mean; rounds];
    let bandit_pct: Vec<f64> = bandit_trace.iter().map(|v| v * 100.0).collect();
    let dqn_pct: Vec<f64> = dqn_trace.iter().map(|v| v * 100.0).collect();

    let text = render_series(
        &format!(
            "Figure {fig} — convergence on {} (K={k}, B={budget})",
            kind.name()
        ),
        "round",
        &[
            ("DBA Bandits", &bandit_pct[..]),
            ("No DBA", &dqn_pct[..]),
            ("MCTS (avg)", &mcts_line[..]),
        ],
    );
    std::fs::create_dir_all(&cfg.out_dir).ok();
    std::fs::write(
        cfg.out_dir.join(format!("{fig}.json")),
        serde_json::to_string_pretty(&serde_json::json!({
            "workload": kind.name(), "k": k, "budget": budget,
            "dba_bandits": bandit_pct, "no_dba": dqn_pct, "mcts_mean": mcts_mean,
        }))
        .unwrap(),
    )
    .ok();
    text
}

/// Figures 15/20: MCTS versus the DTA-style tuner, with and without the
/// storage constraint (3× database size).
pub fn dta_comparison(kind: BenchmarkKind, with_sc: bool, fig: &str, cfg: &ExpConfig) -> String {
    let session = Session::build(kind);
    let limit = session.storage_limit_3x();
    let algos = vec![
        Algo::new(DtaTuner::default()),
        Algo::new(MctsTuner::default()),
    ];
    let sc_label = if with_sc { "with SC" } else { "without SC" };
    sweep(
        &session,
        algos,
        cfg,
        fig,
        &format!("Figure {fig} — DTA vs MCTS ({sc_label})"),
        |k| {
            if with_sc {
                Constraints::with_storage(k, limit)
            } else {
                Constraints::cardinality(k)
            }
        },
    )
}

/// Figures 22/23: the MCTS policy ablation — {UCT, Prior} × {BCE (Only),
/// Best-Greedy} under a fixed (Fig 22) or randomized (Fig 23) rollout step.
pub fn ablation(kind: BenchmarkKind, rollout: RolloutPolicy, fig: &str, cfg: &ExpConfig) -> String {
    let session = Session::build(kind);
    let variant = |selection, extraction| {
        MctsTuner::default()
            .with_selection(selection)
            .with_rollout(rollout)
            .with_extraction(extraction)
    };
    let algos = vec![
        Algo::new(variant(SelectionPolicy::uct(), Extraction::Bce)),
        Algo::new(variant(SelectionPolicy::uct(), Extraction::BestGreedy)),
        Algo::new(variant(
            SelectionPolicy::EpsilonGreedyPrior,
            Extraction::Bce,
        )),
        Algo::new(variant(
            SelectionPolicy::EpsilonGreedyPrior,
            Extraction::BestGreedy,
        )),
    ];
    sweep(
        &session,
        algos,
        cfg,
        fig,
        &format!("Figure {fig} — MCTS ablation ({} rollout)", rollout.label()),
        Constraints::cardinality,
    )
}

/// Extra experiment (beyond the paper's figures): robustness to cost-model
/// monotonicity violations. §3.1 notes Assumption 1 "may not always hold,
/// depending on the implementation of the query optimizer's cost model";
/// this runs the greedy-variants comparison with deterministic per-plan
/// noise injected into the what-if costs.
pub fn robustness(kind: BenchmarkKind, eps: f64, cfg: &ExpConfig) -> String {
    let model = ixtune_optimizer::CostModel {
        quirk_eps: eps,
        ..ixtune_optimizer::CostModel::default()
    };
    let session = Session::build_with(kind, model);
    sweep(
        &session,
        greedy_algos(),
        cfg,
        &format!("robustness-{}", kind.name().to_lowercase()),
        &format!("Robustness — non-monotone what-if costs (ε = {eps})"),
        Constraints::cardinality,
    )
}

/// Extra experiment: the MCTS update-policy ablation the paper's §8 points
/// at — plain average backup versus RAVE, plus the Boltzmann and classic
/// ε-greedy selection alternatives of §6.1.
pub fn extensions(kind: BenchmarkKind, cfg: &ExpConfig) -> String {
    let session = Session::build(kind);
    let algos = vec![
        Algo::new(MctsTuner::default()),
        Algo::new(MctsTuner::default().with_update(UpdatePolicy::Rave { k: 50.0 })),
        Algo::new(MctsTuner::default().with_selection(SelectionPolicy::Boltzmann { tau: 0.1 })),
        Algo::new(
            MctsTuner::default().with_selection(SelectionPolicy::ClassicEpsilon { epsilon: 0.1 }),
        ),
        Algo::new(MctsTuner::default().with_extraction(Extraction::TreeByValue)),
        Algo::new(MctsTuner::default().with_extraction(Extraction::TreeByVisits)),
    ];
    sweep(
        &session,
        algos,
        cfg,
        &format!("extensions-{}", kind.name().to_lowercase()),
        "Extensions — RAVE / Boltzmann / classic ε-greedy / tree-walk extraction",
        Constraints::cardinality,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            out_dir: std::env::temp_dir().join("ixtune-fig-test"),
            seeds: vec![1],
            ks: vec![5],
            jobs: 2,
            session_threads: 1,
        }
    }

    #[test]
    fn table1_lists_all_workloads() {
        let t = table1(&tiny_cfg());
        for name in ["JOB", "TPC-H", "TPC-DS", "Real-D", "Real-M"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }

    #[test]
    fn greedy_comparison_smoke_on_tpch() {
        let cfg = tiny_cfg();
        let t = greedy_comparison(BenchmarkKind::TpcH, "fig17-test", &cfg);
        assert!(t.contains("Vanilla Greedy"));
        assert!(t.contains("MCTS"));
        assert!(cfg.out_dir.join("fig17-test.csv").exists());
    }

    #[test]
    fn convergence_smoke() {
        let cfg = tiny_cfg();
        let t = convergence(BenchmarkKind::TpcH, 5, 200, "fig21-test", &cfg);
        assert!(t.contains("DBA Bandits"));
        assert!(t.contains("No DBA"));
    }

    #[test]
    fn quick_mode_shrinks_grid() {
        let cfg = ExpConfig::new("x").quick();
        assert_eq!(cfg.seeds.len(), 2);
        assert_eq!(cfg.ks, vec![10]);
    }
}
