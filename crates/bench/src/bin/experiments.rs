//! Regenerate the paper's tables and figures.
//!
//! Usage:
//! ```text
//! experiments [--quick] [--out DIR] [--seeds N] [--jobs N]
//!             [--session-threads N] <id>...
//! experiments all
//! experiments list
//! ```
//! `--jobs N` sets the number of sweep worker threads (default: all
//! cores; `--jobs 1` runs serially — results are identical either way).
//! `--session-threads N` sets the logical threads *inside* each tuning
//! session (default 0 = auto; results are bit-identical for every value).
//! When `jobs × session_threads` exceeds the host's parallelism, sessions
//! are capped with a warning so the sweep never oversubscribes.
//! Experiment ids: `table1 fig2 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//! fig15 fig16 fig17 fig18 fig19 fig20 fig21 fig22 fig23`.

use ixtune_bench::figures::{self, ExpConfig};
use ixtune_core::RolloutPolicy;
use ixtune_workload::gen::BenchmarkKind;
use std::time::Instant;

const ALL: &[&str] = &[
    "table1", "fig2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
];

/// Beyond-the-paper experiments, run on request (not part of `all`).
const EXTRAS: &[&str] = &["robustness", "extensions"];

fn run_one(id: &str, cfg: &ExpConfig) -> Option<String> {
    use BenchmarkKind::*;
    let out = match id {
        "table1" => figures::table1(cfg),
        "fig2" => figures::fig2(cfg),
        "fig8" => figures::greedy_comparison(TpcDs, "fig8", cfg),
        "fig9" => figures::greedy_comparison(RealD, "fig9", cfg),
        "fig10" => figures::greedy_comparison(RealM, "fig10", cfg),
        "fig11" => figures::rl_comparison(TpcDs, "fig11", cfg),
        "fig12" => figures::rl_comparison(RealD, "fig12", cfg),
        "fig13" => figures::rl_comparison(RealM, "fig13", cfg),
        "fig14" => {
            let mut s = figures::convergence(TpcDs, 10, 5_000, "fig14a", cfg);
            s.push_str(&figures::convergence(RealD, 10, 5_000, "fig14b", cfg));
            s.push_str(&figures::convergence(RealM, 20, 5_000, "fig14c", cfg));
            s
        }
        "fig15" => {
            let mut s = String::new();
            for (kind, tag) in [(TpcDs, "a"), (RealD, "b"), (RealM, "c")] {
                s.push_str(&figures::dta_comparison(
                    kind,
                    true,
                    &format!("fig15{tag}-sc"),
                    cfg,
                ));
                s.push_str(&figures::dta_comparison(
                    kind,
                    false,
                    &format!("fig15{tag}-nosc"),
                    cfg,
                ));
            }
            s
        }
        "fig16" => figures::greedy_comparison(Job, "fig16", cfg),
        "fig17" => figures::greedy_comparison(TpcH, "fig17", cfg),
        "fig18" => figures::rl_comparison(Job, "fig18", cfg),
        "fig19" => figures::rl_comparison(TpcH, "fig19", cfg),
        "fig20" => {
            let mut s = figures::dta_comparison(Job, false, "fig20a-nosc", cfg);
            s.push_str(&figures::dta_comparison(TpcH, true, "fig20b-sc", cfg));
            s.push_str(&figures::dta_comparison(TpcH, false, "fig20c-nosc", cfg));
            s
        }
        "fig21" => {
            let mut s = figures::convergence(Job, 10, 1_000, "fig21a", cfg);
            s.push_str(&figures::convergence(TpcH, 10, 1_000, "fig21b", cfg));
            s
        }
        "fig22" => {
            let mut s = String::new();
            for kind in BenchmarkKind::ALL {
                s.push_str(&figures::ablation(
                    kind,
                    RolloutPolicy::FixedStep(0),
                    &format!("fig22-{}", kind.name().to_lowercase()),
                    cfg,
                ));
            }
            s
        }
        "fig23" => {
            let mut s = String::new();
            for kind in BenchmarkKind::ALL {
                s.push_str(&figures::ablation(
                    kind,
                    RolloutPolicy::RandomStep,
                    &format!("fig23-{}", kind.name().to_lowercase()),
                    cfg,
                ));
            }
            s
        }
        "robustness" => {
            let mut s = String::new();
            for eps in [0.02, 0.10] {
                s.push_str(&figures::robustness(TpcH, eps, cfg));
            }
            s
        }
        "extensions" => {
            let mut s = figures::extensions(TpcH, cfg);
            s.push_str(&figures::extensions(TpcDs, cfg));
            s
        }
        _ => return None,
    };
    Some(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::new("results");
    let mut quick = false;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                cfg.out_dir = args.get(i).expect("--out DIR").into();
            }
            "--seeds" => {
                i += 1;
                let n: usize = args.get(i).expect("--seeds N").parse().expect("numeric");
                cfg.seeds = (1..=n as u64).collect();
            }
            "--jobs" => {
                i += 1;
                cfg.jobs = args.get(i).expect("--jobs N").parse().expect("numeric")
            }
            "--session-threads" => {
                i += 1;
                cfg.session_threads = args
                    .get(i)
                    .expect("--session-threads N")
                    .parse()
                    .expect("numeric")
            }
            "list" => {
                println!("available experiments: {}", ALL.join(" "));
                println!("extras (not in `all`): {}", EXTRAS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if quick {
        cfg = cfg.quick();
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }

    let started = Instant::now();
    for id in &ids {
        let t = Instant::now();
        match run_one(id, &cfg) {
            Some(text) => {
                println!("{text}");
                eprintln!("[{id} done in {:.1?}]", t.elapsed());
            }
            None => eprintln!("unknown experiment `{id}` — try `list`"),
        }
    }
    eprintln!(
        "all requested experiments finished in {:.1?}; results in {}",
        started.elapsed(),
        cfg.out_dir.display()
    );
}
