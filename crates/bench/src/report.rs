//! Report rendering: paper-style text tables and CSV/JSON sidecars.

use crate::runner::Cell;
use ixtune_core::budget::SessionTelemetry;
use ixtune_core::telemetry::TelemetryV2;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Render one K's worth of cells as a budget × algorithm table, mirroring
/// the figures' series (x-axis budget, one line per algorithm).
pub fn render_table(title: &str, cells: &[Cell]) -> String {
    let budgets: BTreeSet<usize> = cells.iter().map(|c| c.budget).collect();
    let mut algos: Vec<String> = Vec::new();
    for c in cells {
        if !algos.contains(&c.algorithm) {
            algos.push(c.algorithm.clone());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = write!(out, "{:>10}", "budget");
    for a in &algos {
        let _ = write!(out, " | {a:>22}");
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:->10}", "");
    for _ in &algos {
        let _ = write!(out, "-+-{:->22}", "");
    }
    let _ = writeln!(out);
    for b in budgets {
        let _ = write!(out, "{b:>10}");
        for a in &algos {
            match cells.iter().find(|c| c.budget == b && &c.algorithm == a) {
                Some(c) if c.seeds > 1 => {
                    let _ = write!(out, " | {:>13.1}% ± {:>4.1}", c.mean_pct, c.std_pct);
                }
                Some(c) => {
                    let _ = write!(out, " | {:>15.1}%      ", c.mean_pct);
                }
                None => {
                    let _ = write!(out, " | {:>22}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// CSV rows for a list of cells (one file per experiment). Algorithm names
/// are quoted (ablation variant names contain commas).
pub fn to_csv(cells: &[Cell]) -> String {
    let mut out = String::from("algorithm,k,budget,mean_pct,std_pct,seeds,calls_used\n");
    for c in cells {
        let _ = writeln!(
            out,
            "\"{}\",{},{},{:.4},{:.4},{},{}",
            c.algorithm.replace('"', "\"\""),
            c.k,
            c.budget,
            c.mean_pct,
            c.std_pct,
            c.seeds,
            c.calls_used
        );
    }
    out
}

/// Per-cell telemetry sidecar: one JSON object per cell with the cell's
/// coordinates and its summed session counters, in the versioned
/// telemetry schema (`"version": 2` with typed sections). Old sidecars in
/// `results/` stay readable through `ixtune_core::telemetry::v1`.
pub fn to_telemetry_json(cells: &[Cell]) -> String {
    #[derive(serde::Serialize)]
    struct Row {
        algorithm: String,
        k: usize,
        budget: usize,
        seeds: usize,
        telemetry: TelemetryV2,
    }
    let rows: Vec<Row> = cells
        .iter()
        .map(|c| Row {
            algorithm: c.algorithm.clone(),
            k: c.k,
            budget: c.budget,
            seeds: c.seeds,
            telemetry: SessionTelemetry::from(c.telemetry).into(),
        })
        .collect();
    serde_json::to_string_pretty(&rows).expect("telemetry rows serialize")
}

/// Write CSV, JSON, and telemetry sidecars for an experiment into `dir`.
pub fn write_results(dir: &Path, name: &str, cells: &[Cell]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.csv")), to_csv(cells))?;
    let json = serde_json::to_string_pretty(cells).expect("cells serialize");
    fs::write(dir.join(format!("{name}.json")), json)?;
    fs::write(
        dir.join(format!("{name}.telemetry.json")),
        to_telemetry_json(cells),
    )?;
    Ok(())
}

/// Render a simple two-column series (e.g. convergence traces).
pub fn render_series(title: &str, xlabel: &str, columns: &[(&str, &[f64])]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = write!(out, "{xlabel:>8}");
    for (name, _) in columns {
        let _ = write!(out, " | {name:>16}");
    }
    let _ = writeln!(out);
    let len = columns.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for i in 0..len {
        let _ = write!(out, "{:>8}", i + 1);
        for (_, v) in columns {
            match v.get(i) {
                Some(x) => {
                    let _ = write!(out, " | {:>15.1}%", x);
                }
                None => {
                    let _ = write!(out, " | {:>16}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::runner::CellTelemetry;

    fn cells() -> Vec<Cell> {
        vec![
            Cell {
                algorithm: "A".into(),
                k: 5,
                budget: 100,
                mean_pct: 10.0,
                std_pct: 1.0,
                seeds: 5,
                calls_used: 100,
                telemetry: CellTelemetry {
                    what_if_calls: 100,
                    cache_hits: 40,
                    derivations: 25,
                    other_calls: 100,
                    wall_clock_ms: 12.5,
                    ..CellTelemetry::default()
                },
            },
            Cell {
                algorithm: "B".into(),
                k: 5,
                budget: 100,
                mean_pct: 20.0,
                std_pct: 0.0,
                seeds: 1,
                calls_used: 90,
                telemetry: CellTelemetry::default(),
            },
        ]
    }

    #[test]
    fn table_contains_all_algorithms() {
        let t = render_table("test", &cells());
        assert!(t.contains("A"));
        assert!(t.contains("B"));
        assert!(t.contains("10.0"));
        assert!(t.contains("20.0"));
        assert!(t.contains("± "));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = to_csv(&cells());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("\"A\",5,100,"));
    }

    #[test]
    fn csv_quotes_commas_and_inner_quotes() {
        let mut cs = cells();
        cs[0].algorithm = "MCTS[UCT, fixed-step(0), \"BCE\"]".into();
        let csv = to_csv(&cs);
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("\"MCTS[UCT, fixed-step(0), \"\"BCE\"\"]\","));
    }

    #[test]
    fn write_results_creates_files() {
        let dir = std::env::temp_dir().join("ixtune-report-test");
        write_results(&dir, "t", &cells()).unwrap();
        assert!(dir.join("t.csv").exists());
        assert!(dir.join("t.json").exists());
        assert!(dir.join("t.telemetry.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_json_is_versioned_v2_rows() {
        let json = to_telemetry_json(&cells());
        for key in [
            "algorithm",
            "k",
            "budget",
            "seeds",
            "version",
            "calls",
            "cache",
            "exec",
            "what_if_calls",
            "cache_hits",
            "derivations",
            "session_threads",
            "wall_clock_ms",
        ] {
            // One occurrence per cell.
            assert_eq!(json.matches(&format!("\"{key}\"")).count(), 2, "{key}");
        }
        assert_eq!(json.matches("\"version\": 2").count(), 2);
        assert!(json.contains("\"what_if_calls\": 100"));
        assert!(json.contains("\"cache_hits\": 40"));
        assert!(json.contains("\"wall_clock_ms\": 12.5"));
        // The sidecar round-trips through the v2 schema types.
        let parsed = serde_json::value_from_str(&json).unwrap();
        let serde::Value::Arr(rows) = parsed else {
            panic!("sidecar must be a JSON array");
        };
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let v = row.get("telemetry").expect("telemetry section");
            assert_eq!(
                v.get("version").and_then(serde::Value::as_u64),
                Some(u64::from(ixtune_core::telemetry::TELEMETRY_VERSION))
            );
        }
        // And the v1 reader refuses v2 rows: flat v1 files and sectioned
        // v2 sidecars cannot be confused for one another.
        assert!(ixtune_core::telemetry::v1::read_rows(&json).is_err());
    }

    #[test]
    fn series_renders_rows() {
        let s = render_series("conv", "round", &[("X", &[1.0, 2.0][..])]);
        assert!(s.contains("round"));
        assert!(s.contains("2.0%"));
    }
}
