//! Experiment harness reproducing every table and figure of the paper's
//! evaluation, plus Criterion micro-benchmarks (`benches/`).
//!
//! * [`session`] — builds a workload + candidates + optimizer bundle;
//! * [`runner`] — sweeps (algorithm × K × budget × seed) grids;
//! * [`report`] — paper-style tables and CSV/JSON sidecars;
//! * [`figures`] — one runner per table/figure (see DESIGN.md §4).
//!
//! The `experiments` binary dispatches by experiment id:
//!
//! ```text
//! cargo run -p ixtune-bench --release --bin experiments -- table1 fig8
//! cargo run -p ixtune-bench --release --bin experiments -- all --quick
//! ```

pub mod figures;
pub mod report;
pub mod runner;
pub mod session;

pub use figures::ExpConfig;
pub use runner::{run_grid, Algo, Cell};
pub use session::Session;
