//! Deterministic, seeded fault-injection plane.
//!
//! A [`FaultPlan`] is compiled once from a spec string (CLI `--fault-spec`
//! or `IXTUNE_FAULT_SPEC`) and threaded through the daemon. Each named
//! *injection site* carries one trigger:
//!
//! * `p<float>`  — fire with probability `p` per call, decided by a pure
//!   hash of `(seed, site, call-index)`; no RNG state, no ordering
//!   dependence between sites;
//! * `every<N>`  — fire on every N-th call at the site (1-based);
//! * `after<K>`  — fire on every call once `K` calls have happened.
//!
//! The whole schedule is reproducible from the single `u64` seed plus the
//! per-site call index, so a failing chaos run is replayed exactly by
//! re-running with the same spec. Sites come in two consumption styles:
//!
//! * [`FaultPlan::fire`] advances a *shared* per-site cursor — right for
//!   sites serialized by a lock or a single consumer (WAL appends, wire
//!   writes, worker claims);
//! * [`FaultPlan::cursor`] hands out a *caller-local* cursor — right for
//!   per-session call streams (the what-if path), where a shared counter
//!   would make injection depend on thread interleaving.
//!
//! The default [`FaultPlan::none`] holds no allocation and every check is
//! a single `Option` branch, so production paths pay nothing.
//!
//! Spec grammar (`;`-separated, whitespace ignored):
//!
//! ```text
//! seed=42;whatif.error=p0.05;persist.fsync=every3;wire.drop=after10
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The closed set of injection-site names. Specs naming anything else are
/// rejected at parse time so typos cannot silently disable a fault.
pub mod site {
    /// Budgeted what-if call fails (cost source error).
    pub const WHATIF_ERROR: &str = "whatif.error";
    /// Budgeted what-if call returns late (latency spike, observation only).
    pub const WHATIF_LATENCY: &str = "whatif.latency";
    /// WAL frame append fails with an IO error.
    pub const PERSIST_APPEND: &str = "persist.append";
    /// fsync of the WAL or snapshot fails.
    pub const PERSIST_FSYNC: &str = "persist.fsync";
    /// Snapshot rename (commit point of compaction) fails.
    pub const PERSIST_RENAME: &str = "persist.rename";
    /// Response frame silently dropped (connection closed, no reply).
    pub const WIRE_DROP: &str = "wire.drop";
    /// Response frame truncated mid-payload.
    pub const WIRE_TRUNCATE: &str = "wire.truncate";
    /// Response frame bytes corrupted before the terminator.
    pub const WIRE_GARBLE: &str = "wire.garble";
    /// Session worker panics mid-run.
    pub const WORKER_PANIC: &str = "worker.panic";

    /// Every site, in canonical (spec-render) order.
    pub const ALL: [&str; 9] = [
        WHATIF_ERROR,
        WHATIF_LATENCY,
        PERSIST_APPEND,
        PERSIST_FSYNC,
        PERSIST_RENAME,
        WIRE_DROP,
        WIRE_TRUNCATE,
        WIRE_GARBLE,
        WORKER_PANIC,
    ];
}

/// When a site fires, in terms of the site-local call index `n` (0-based).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Trigger {
    /// Fire iff `hash(seed, site, n)` lands below `p`.
    Probability(f64),
    /// Fire iff `(n + 1) % k == 0`.
    Every(u64),
    /// Fire iff `n >= k`.
    After(u64),
}

impl Trigger {
    fn parse(s: &str) -> Result<Self, String> {
        if let Some(p) = s.strip_prefix('p') {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("bad probability in trigger `{s}`"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability out of [0,1] in trigger `{s}`"));
            }
            return Ok(Trigger::Probability(p));
        }
        if let Some(k) = s.strip_prefix("every") {
            let k: u64 = k.parse().map_err(|_| format!("bad count in `{s}`"))?;
            if k == 0 {
                return Err("`every0` never fires; use a real period".into());
            }
            return Ok(Trigger::Every(k));
        }
        if let Some(k) = s.strip_prefix("after") {
            let k: u64 = k.parse().map_err(|_| format!("bad count in `{s}`"))?;
            return Ok(Trigger::After(k));
        }
        Err(format!(
            "unknown trigger `{s}` (expected p<float>, every<N>, or after<K>)"
        ))
    }

    fn render(&self) -> String {
        match self {
            Trigger::Probability(p) => format!("p{p}"),
            Trigger::Every(k) => format!("every{k}"),
            Trigger::After(k) => format!("after{k}"),
        }
    }
}

struct SiteState {
    name: &'static str,
    trigger: Trigger,
    label_hash: u64,
    /// Shared call cursor for [`FaultPlan::fire`] consumers.
    cursor: AtomicU64,
    /// Total fires across shared and local cursors.
    injected: AtomicU64,
}

struct PlanInner {
    seed: u64,
    /// Configured sites only, in `site::ALL` order.
    sites: Vec<SiteState>,
}

impl PlanInner {
    fn site(&self, name: &str) -> Option<&SiteState> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// The pure per-call decision: no state, no ordering dependence.
    fn decide(&self, st: &SiteState, n: u64) -> bool {
        let fired = match st.trigger {
            Trigger::Probability(p) => unit(mix(self.seed, st.label_hash, n)) < p,
            Trigger::Every(k) => (n + 1).is_multiple_of(k),
            Trigger::After(k) => n >= k,
        };
        if fired {
            st.injected.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }
}

/// FNV-1a over the site label — same constants as `rng::derive`, so fault
/// streams and tuning RNG streams share one derivation idiom.
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer over `(seed, site, call-index)` — same mixer as
/// `rng::derive_indexed`.
fn mix(seed: u64, site_hash: u64, n: u64) -> u64 {
    let mut z =
        (seed ^ site_hash).wrapping_add(n.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map the top 53 bits to a uniform float in `[0, 1)`.
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A compiled, shareable fault schedule. Clones share cursors and
/// injected counters.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "FaultPlan(none)"),
            Some(_) => write!(f, "FaultPlan({})", self.spec()),
        }
    }
}

impl FaultPlan {
    /// The inert plan: every check is one branch, nothing allocates.
    pub fn none() -> Self {
        Self { inner: None }
    }

    /// Compile a spec string. The empty string (and all-whitespace)
    /// compiles to the inert plan, so `IXTUNE_FAULT_SPEC=""` is a no-op.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec.trim().is_empty() {
            return Ok(Self::none());
        }
        let mut seed: u64 = 0;
        let mut triggers: Vec<(&'static str, Trigger)> = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected `key=value`, got `{part}`"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("bad seed `{value}` (expected u64)"))?;
                continue;
            }
            let name = site::ALL
                .iter()
                .find(|s| **s == key)
                .copied()
                .ok_or_else(|| {
                    format!(
                        "unknown fault site `{key}` (known: {})",
                        site::ALL.join(", ")
                    )
                })?;
            if triggers.iter().any(|(n, _)| *n == name) {
                return Err(format!("fault site `{name}` given twice"));
            }
            triggers.push((name, Trigger::parse(value)?));
        }
        if triggers.is_empty() {
            return Ok(Self::none());
        }
        // Canonical order so spec() renders identically however written.
        triggers.sort_by_key(|(name, _)| site::ALL.iter().position(|s| s == name));
        let sites = triggers
            .into_iter()
            .map(|(name, trigger)| SiteState {
                name,
                trigger,
                label_hash: label_hash(name),
                cursor: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            })
            .collect();
        Ok(Self {
            inner: Some(Arc::new(PlanInner { seed, sites })),
        })
    }

    /// Whether any site is configured at all.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The plan's seed (0 for the inert plan).
    pub fn seed(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.seed)
    }

    /// Canonical re-render of the spec — written to artifacts so a failing
    /// chaos run can be replayed byte-for-byte.
    pub fn spec(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut out = format!("seed={}", inner.seed);
        for s in &inner.sites {
            out.push(';');
            out.push_str(s.name);
            out.push('=');
            out.push_str(&s.trigger.render());
        }
        out
    }

    /// Advance the *shared* cursor for `site` and report whether this call
    /// is faulted. Use only at sites whose calls are serialized (a lock, a
    /// single consumer); concurrent callers would race for indices.
    pub fn fire(&self, site: &str) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let Some(st) = inner.site(site) else {
            return false;
        };
        let n = st.cursor.fetch_add(1, Ordering::Relaxed);
        inner.decide(st, n)
    }

    /// A caller-local cursor over `site`: each holder sees call indices
    /// 0, 1, 2, … of its own stream, independent of other threads. The
    /// injected-total counter is still shared with the plan.
    pub fn cursor(&self, site: &str) -> FaultCursor {
        let present = self.inner.as_ref().is_some_and(|i| i.site(site).is_some());
        FaultCursor {
            inner: if present { self.inner.clone() } else { None },
            site: site.to_string(),
            n: 0,
        }
    }

    /// Total fires recorded at `site` (0 if unconfigured).
    pub fn injected(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.site(site))
            .map_or(0, |s| s.injected.load(Ordering::Relaxed))
    }

    /// Every configured site with its injected-total, in canonical order.
    pub fn sites(&self) -> Vec<(&'static str, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.sites
                .iter()
                .map(|s| (s.name, s.injected.load(Ordering::Relaxed)))
                .collect()
        })
    }
}

/// Caller-local fault cursor; see [`FaultPlan::cursor`].
#[derive(Clone)]
pub struct FaultCursor {
    inner: Option<Arc<PlanInner>>,
    site: String,
    n: u64,
}

impl FaultCursor {
    /// Advance this cursor's private call index and report the decision.
    pub fn fire(&mut self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let n = self.n;
        self.n += 1;
        let Some(st) = inner.site(&self.site) else {
            return false;
        };
        inner.decide(st, n)
    }

    /// An inert cursor that never fires.
    pub fn none() -> Self {
        Self {
            inner: None,
            site: String::new(),
            n: 0,
        }
    }
}

impl Default for FaultCursor {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_missing_specs_are_inert() {
        assert!(!FaultPlan::none().enabled());
        assert!(!FaultPlan::parse("").unwrap().enabled());
        assert!(!FaultPlan::parse("  ; ; ").unwrap().enabled());
        assert!(!FaultPlan::parse("seed=7").unwrap().enabled());
        assert!(!FaultPlan::none().fire(site::WHATIF_ERROR));
        assert!(!FaultPlan::none().cursor(site::WHATIF_ERROR).fire());
    }

    #[test]
    fn unknown_sites_and_bad_triggers_are_rejected() {
        assert!(FaultPlan::parse("whatif.eror=p0.5").is_err());
        assert!(FaultPlan::parse("whatif.error=q0.5").is_err());
        assert!(FaultPlan::parse("whatif.error=p1.5").is_err());
        assert!(FaultPlan::parse("whatif.error=every0").is_err());
        assert!(FaultPlan::parse("seed=abc;whatif.error=p0.5").is_err());
        assert!(FaultPlan::parse("whatif.error=p0.5;whatif.error=p0.1").is_err());
        assert!(FaultPlan::parse("whatif.error").is_err());
    }

    #[test]
    fn spec_rerenders_canonically() {
        let plan = FaultPlan::parse("wire.drop=every4; seed=9 ; whatif.error=p0.25").unwrap();
        assert_eq!(plan.spec(), "seed=9;whatif.error=p0.25;wire.drop=every4");
        let replay = FaultPlan::parse(&plan.spec()).unwrap();
        assert_eq!(replay.spec(), plan.spec());
    }

    #[test]
    fn every_and_after_semantics() {
        let plan = FaultPlan::parse("persist.append=every3").unwrap();
        let fired: Vec<bool> = (0..7).map(|_| plan.fire(site::PERSIST_APPEND)).collect();
        assert_eq!(fired, [false, false, true, false, false, true, false]);

        let plan = FaultPlan::parse("persist.fsync=after2").unwrap();
        let fired: Vec<bool> = (0..5).map(|_| plan.fire(site::PERSIST_FSYNC)).collect();
        assert_eq!(fired, [false, false, true, true, true]);
        assert_eq!(plan.injected(site::PERSIST_FSYNC), 3);
    }

    #[test]
    fn probability_stream_is_a_pure_function_of_seed_and_index() {
        let a = FaultPlan::parse("seed=1234;whatif.error=p0.3").unwrap();
        let b = FaultPlan::parse("seed=1234;whatif.error=p0.3").unwrap();
        let run = |p: &FaultPlan| -> Vec<bool> {
            let mut c = p.cursor(site::WHATIF_ERROR);
            (0..256).map(|_| c.fire()).collect()
        };
        assert_eq!(run(&a), run(&b), "same seed, same schedule");
        let fires = run(&a).iter().filter(|f| **f).count();
        assert!(
            (32..160).contains(&fires),
            "p=0.3 over 256 calls fired {fires} times"
        );
        let c = FaultPlan::parse("seed=1235;whatif.error=p0.3").unwrap();
        assert_ne!(run(&a), run(&c), "different seed, different schedule");
    }

    #[test]
    fn local_cursors_are_independent_but_share_the_injected_total() {
        let plan = FaultPlan::parse("whatif.error=every2").unwrap();
        let mut x = plan.cursor(site::WHATIF_ERROR);
        let mut y = plan.cursor(site::WHATIF_ERROR);
        let xs: Vec<bool> = (0..4).map(|_| x.fire()).collect();
        let ys: Vec<bool> = (0..4).map(|_| y.fire()).collect();
        assert_eq!(xs, ys, "each cursor sees its own index stream");
        assert_eq!(plan.injected(site::WHATIF_ERROR), 4);
        assert_eq!(
            plan.sites(),
            vec![(site::WHATIF_ERROR, 4)],
            "sites() reports canonical order and totals"
        );
    }

    #[test]
    fn shared_and_local_cursors_do_not_perturb_each_other() {
        let plan = FaultPlan::parse("whatif.error=every2").unwrap();
        let mut local = plan.cursor(site::WHATIF_ERROR);
        assert!(!local.fire());
        assert!(!plan.fire(site::WHATIF_ERROR), "shared index 0");
        assert!(local.fire(), "local index 1 unaffected by shared calls");
    }
}
