//! Interned configuration keys.
//!
//! A tuning session looks the same small set of [`IndexSet`]s up over and
//! over: every cached what-if result, every warm-store row, every exact-hit
//! probe keys on a configuration bitset. Hashing a multi-block bitset
//! through `std`'s SipHash on each probe is the single most expensive part
//! of the hit path, so the hot stores intern configurations once —
//! [`ConfigInterner`] maps `IndexSet → u32` with stable insertion-ordered
//! ids — and key their per-query rows by the integer instead
//! ([`IdCostMap`], an open-addressed `u32 → f64` table). A lookup then
//! costs one cheap FNV pass over the blocks (to find the id) plus a couple
//! of array probes, and repeated lookups of the *same* interned id skip
//! the bitset entirely.
//!
//! Both tables are plain `Vec`s: reads are `&self` and lock-free, writes
//! take `&mut self`, which matches the cache's write-then-freeze protocol
//! and the warm store's copy-on-write publication.

use crate::bitset::IndexSet;

/// FNV-1a over the configuration's blocks — much cheaper than SipHash for
/// the short, fixed-length block arrays configurations compile to, and
/// deterministic across processes (ids are *not*, they are insertion
/// ordered; only the hash layout relies on this).
#[inline]
fn hash_blocks(blocks: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in blocks {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sentinel marking an empty open-addressed slot.
const EMPTY: u32 = u32::MAX;

/// Insertion-ordered interner from [`IndexSet`] to a dense `u32` id.
///
/// Ids are assigned `0, 1, 2, …` in first-seen order and never change, so
/// they can be used as array indices by the caller. The interner owns one
/// clone of each distinct configuration.
#[derive(Clone, Debug, Default)]
pub struct ConfigInterner {
    /// `sets[id]` = the interned configuration (insertion order).
    sets: Vec<IndexSet>,
    /// Open-addressed id table (linear probing, power-of-two capacity).
    table: Vec<u32>,
    mask: usize,
}

impl ConfigInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct configurations interned.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The configuration behind `id`. Panics on a foreign id.
    pub fn resolve(&self, id: u32) -> &IndexSet {
        &self.sets[id as usize]
    }

    /// Interned configurations in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &IndexSet)> {
        self.sets.iter().enumerate().map(|(i, s)| (i as u32, s))
    }

    /// Id of `set` if it was interned before.
    #[inline]
    pub fn get(&self, set: &IndexSet) -> Option<u32> {
        if self.sets.is_empty() {
            return None;
        }
        let mut i = hash_blocks(set.as_blocks()) as usize & self.mask;
        loop {
            let id = self.table[i];
            if id == EMPTY {
                return None;
            }
            if self.sets[id as usize] == *set {
                return Some(id);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Id of `set`, interning it (one clone) on first sight.
    pub fn intern(&mut self, set: &IndexSet) -> u32 {
        if let Some(id) = self.get(set) {
            return id;
        }
        let id = self.sets.len() as u32;
        assert!(id != EMPTY, "interner capacity exhausted");
        self.sets.push(set.clone());
        // Grow at 7/8 load so probe chains stay short.
        if self.table.is_empty() || self.sets.len() * 8 > self.table.len() * 7 {
            self.rehash((self.table.len() * 2).max(16));
        } else {
            self.place(id);
        }
        id
    }

    fn rehash(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        self.table = vec![EMPTY; cap];
        self.mask = cap - 1;
        for id in 0..self.sets.len() as u32 {
            self.place(id);
        }
    }

    fn place(&mut self, id: u32) {
        let mut i = hash_blocks(self.sets[id as usize].as_blocks()) as usize & self.mask;
        while self.table[i] != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.table[i] = id;
    }
}

/// Open-addressed `u32 → f64` map for interner-keyed cost rows.
///
/// Fibonacci-hashed linear probing over a power-of-two table; the key
/// `u32::MAX` is reserved as the empty sentinel (the interner can never
/// hand it out).
#[derive(Clone, Debug, Default)]
pub struct IdCostMap {
    slots: Vec<(u32, f64)>,
    mask: usize,
    len: usize,
}

impl IdCostMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, id: u32) -> usize {
        // Fibonacci hashing spreads consecutive interner ids.
        (id.wrapping_mul(0x9e37_79b9) as usize) & self.mask
    }

    /// Stored cost for `id`, if any.
    #[inline]
    pub fn get(&self, id: u32) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let mut i = self.slot_of(id);
        loop {
            let (k, v) = self.slots[i];
            if k == id {
                return Some(v);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert `id → cost`, returning the previous cost if the id was
    /// already present (the value is then left unchanged — first write
    /// wins, matching the stores' duplicate semantics).
    pub fn insert(&mut self, id: u32, cost: f64) -> Option<f64> {
        debug_assert!(id != EMPTY, "u32::MAX is the empty sentinel");
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = self.slot_of(id);
        loop {
            let (k, v) = self.slots[i];
            if k == id {
                return Some(v);
            }
            if k == EMPTY {
                self.slots[i] = (id, cost);
                self.len += 1;
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Entries in table order (diagnostics/serialization helpers).
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.slots
            .iter()
            .filter(|(k, _)| *k != EMPTY)
            .map(|&(k, v)| (k, v))
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(8);
        debug_assert!(cap.is_power_of_two());
        let old = std::mem::replace(&mut self.slots, vec![(EMPTY, 0.0); cap]);
        self.mask = cap - 1;
        for (k, v) in old {
            if k == EMPTY {
                continue;
            }
            let mut i = self.slot_of(k);
            while self.slots[i].0 != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = (k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IndexId;

    fn set(universe: usize, ids: &[u32]) -> IndexSet {
        IndexSet::from_ids(universe, ids.iter().copied().map(IndexId::new))
    }

    #[test]
    fn interner_assigns_stable_insertion_ordered_ids() {
        let mut it = ConfigInterner::new();
        let a = set(100, &[1, 2]);
        let b = set(100, &[3]);
        assert_eq!(it.get(&a), None);
        assert_eq!(it.intern(&a), 0);
        assert_eq!(it.intern(&b), 1);
        assert_eq!(it.intern(&a), 0, "re-interning is a lookup");
        assert_eq!(it.get(&b), Some(1));
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(0), &a);
        let ids: Vec<u32> = it.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn interner_survives_growth() {
        let mut it = ConfigInterner::new();
        let sets: Vec<IndexSet> = (0..500u32).map(|i| set(600, &[i, i + 7])).collect();
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(it.intern(s), i as u32);
        }
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(it.get(s), Some(i as u32), "i={i}");
        }
        assert_eq!(it.get(&set(600, &[599])), None);
    }

    #[test]
    fn id_cost_map_roundtrips_and_keeps_first_write() {
        let mut m = IdCostMap::new();
        assert_eq!(m.get(3), None);
        assert_eq!(m.insert(3, 1.5), None);
        assert_eq!(m.insert(3, 9.9), Some(1.5), "duplicate reports old value");
        assert_eq!(m.get(3), Some(1.5), "first write wins");
        for i in 0..1000u32 {
            m.insert(i, i as f64 * 0.5);
        }
        assert_eq!(m.len(), 1000);
        for i in (0..1000u32).rev() {
            let expect = if i == 3 { 1.5 } else { i as f64 * 0.5 };
            assert_eq!(m.get(i), Some(expect), "i={i}");
        }
        assert_eq!(m.get(5000), None);
        assert_eq!(m.iter().count(), 1000);
    }
}
