//! Newtype identifiers.
//!
//! All identifiers are dense `u32` indexes into the owning container
//! (schema table list, workload query list, candidate index list), which
//! keeps hot structures compact and lets configurations be plain bitsets.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a dense index.
            #[inline]
            pub const fn new(v: u32) -> Self {
                Self(v)
            }

            /// The dense index as `usize`, for container indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a table within a [`Schema`](https://docs.rs/ixtune-workload).
    TableId,
    "T"
);
id_type!(
    /// Identifier of a column *within its table* (position in the table's column list).
    ColumnId,
    "c"
);
id_type!(
    /// Identifier of a query within a workload.
    QueryId,
    "Q"
);
id_type!(
    /// Identifier of a candidate index within the candidate set produced for
    /// a workload. Configurations are sets of these.
    IndexId,
    "I"
);

/// A fully-qualified column reference: `(table, column)`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug, Default,
)]
pub struct ColumnRef {
    pub table: TableId,
    pub column: ColumnId,
}

impl ColumnRef {
    #[inline]
    pub const fn new(table: TableId, column: ColumnId) -> Self {
        Self { table, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let t = TableId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(TableId::from(7usize), t);
        assert_eq!(TableId::from(7u32), t);
        assert_eq!(format!("{t}"), "T7");
        assert_eq!(format!("{t:?}"), "T7");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(IndexId::new(1) < IndexId::new(2));
        assert!(QueryId::new(0) < QueryId::new(10));
    }

    #[test]
    fn column_ref_display() {
        let c = ColumnRef::new(TableId::new(2), ColumnId::new(5));
        assert_eq!(format!("{c}"), "T2.c5");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(IndexId::default(), IndexId::new(0));
    }
}
