//! [`IndexSet`]: a dense bitset over candidate-index ids.
//!
//! An index *configuration* in the paper is a subset `C ⊆ I` of the
//! candidate indexes. Configurations are compared, unioned, and — most
//! importantly for cost derivation (Eq. 1) — subset-tested millions of
//! times per tuning run, so the representation is a plain `Vec<u64>` of
//! bit blocks sized to the candidate universe.

use crate::ids::IndexId;
use serde::{Deserialize, Serialize};
use std::fmt;

const BITS: usize = 64;

/// A set of [`IndexId`]s backed by a fixed-width bitset.
///
/// All sets participating in an operation must have been created with the
/// same `universe` size (the number of candidate indexes); operations on
/// differently-sized sets panic in debug builds.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexSet {
    blocks: Vec<u64>,
    universe: u32,
}

impl IndexSet {
    /// The empty configuration over a universe of `universe` candidates.
    pub fn empty(universe: usize) -> Self {
        Self {
            blocks: vec![0; universe.div_ceil(BITS)],
            universe: universe as u32,
        }
    }

    /// The full configuration (all candidates).
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for b in &mut s.blocks {
            *b = u64::MAX;
        }
        if let Some(last) = s.blocks.last_mut() {
            let tail = universe % BITS;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Build a set from an iterator of ids.
    pub fn from_ids<I: IntoIterator<Item = IndexId>>(universe: usize, ids: I) -> Self {
        let mut s = Self::empty(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// A singleton configuration `{id}`.
    pub fn singleton(universe: usize, id: IndexId) -> Self {
        Self::from_ids(universe, [id])
    }

    /// Number of candidate indexes this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Raw bit blocks (64 ids per block, ascending). Exposed for batch
    /// scans that do block-wise set algebra across many sets without
    /// materializing intermediate differences.
    #[inline]
    pub fn as_blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Rebuild a configuration from its raw block array — the inverse of
    /// [`as_blocks`](Self::as_blocks), used when deserializing persisted
    /// warm-store rows. Returns `None` when the block count does not match
    /// the universe or a bit beyond the universe is set (a torn or foreign
    /// encoding must not produce an out-of-range member).
    pub fn from_blocks(universe: usize, blocks: Vec<u64>) -> Option<Self> {
        if blocks.len() != universe.div_ceil(BITS) {
            return None;
        }
        if let Some(&last) = blocks.last() {
            let tail = universe % BITS;
            if tail != 0 && last >> tail != 0 {
                return None;
            }
        }
        Some(Self {
            blocks,
            universe: universe as u32,
        })
    }

    #[inline]
    fn check(&self, id: IndexId) {
        debug_assert!(
            id.index() < self.universe as usize,
            "index {id} outside universe {}",
            self.universe
        );
    }

    /// Insert `id`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, id: IndexId) -> bool {
        self.check(id);
        let (b, m) = (id.index() / BITS, 1u64 << (id.index() % BITS));
        let fresh = self.blocks[b] & m == 0;
        self.blocks[b] |= m;
        fresh
    }

    /// Remove `id`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: IndexId) -> bool {
        self.check(id);
        let (b, m) = (id.index() / BITS, 1u64 << (id.index() % BITS));
        let present = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: IndexId) -> bool {
        self.check(id);
        self.blocks[id.index() / BITS] & (1u64 << (id.index() % BITS)) != 0
    }

    /// Number of indexes in the configuration (`|C|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `self ⊆ other`. This is the hot operation behind cost derivation.
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// `self ⊇ other`.
    #[inline]
    pub fn is_superset(&self, other: &Self) -> bool {
        other.is_subset(self)
    }

    /// `self \ {excluded} ⊆ other`, without materializing the difference.
    ///
    /// This is the subset test cost derivation performs for every posting
    /// hit (`S ⊆ C ∪ {x} ⇔ S \ {x} ⊆ C`), so it must not clone.
    #[inline]
    pub fn is_subset_except(&self, other: &Self, excluded: IndexId) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.check(excluded);
        let (eb, em) = (excluded.index() / BITS, 1u64 << (excluded.index() % BITS));
        self.blocks
            .iter()
            .enumerate()
            .zip(&other.blocks)
            .all(|((bi, &a), &b)| {
                let mask = if bi == eb { !em } else { u64::MAX };
                a & mask & !b == 0
            })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Returns `self ∪ {id}` as a new set (the MDP transition `s' = s ∪ {a}`).
    pub fn with(&self, id: IndexId) -> Self {
        let mut s = self.clone();
        s.insert(id);
        s
    }

    /// Returns `self \ {id}` as a new set.
    pub fn without(&self, id: IndexId) -> Self {
        let mut s = self.clone();
        s.remove(id);
        s
    }

    /// Iterate over member ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = IndexId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, &block)| BlockIter {
                block,
                base: bi * BITS,
            })
    }

    /// Iterate over the complement (ids in the universe but not in the set) —
    /// the action set `A(s) = I − s` of the MDP. Walks negated blocks with
    /// `trailing_zeros` (this sits in the MCTS action-set and rollout inner
    /// loops, where a per-id `contains` probe is measurably slower).
    pub fn complement_iter(&self) -> impl Iterator<Item = IndexId> + '_ {
        let n = self.universe();
        self.blocks
            .iter()
            .enumerate()
            .flat_map(move |(bi, &block)| {
                let base = bi * BITS;
                // Mask off bits beyond the universe in the last block.
                let valid = if n - base >= BITS {
                    u64::MAX
                } else {
                    (1u64 << (n - base)) - 1
                };
                BlockIter {
                    block: !block & valid,
                    base,
                }
            })
    }

    /// Collect members into a vector.
    pub fn to_vec(&self) -> Vec<IndexId> {
        self.iter().collect()
    }
}

struct BlockIter {
    block: u64,
    base: usize,
}

impl Iterator for BlockIter {
    type Item = IndexId;

    #[inline]
    fn next(&mut self) -> Option<IndexId> {
        if self.block == 0 {
            return None;
        }
        let tz = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(IndexId::from(self.base + tz))
    }
}

impl fmt::Debug for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<IndexId> for IndexSet {
    /// Builds a set whose universe is just large enough for the max id.
    /// Intended for tests; production code should use [`IndexSet::from_ids`]
    /// with the candidate-universe size.
    fn from_iter<T: IntoIterator<Item = IndexId>>(iter: T) -> Self {
        let ids: Vec<IndexId> = iter.into_iter().collect();
        let universe = ids.iter().map(|i| i.index() + 1).max().unwrap_or(0);
        Self::from_ids(universe, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<IndexId> {
        v.iter().copied().map(IndexId::new).collect()
    }

    #[test]
    fn empty_and_insert() {
        let mut s = IndexSet::empty(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.insert(IndexId::new(5)));
        assert!(!s.insert(IndexId::new(5)));
        assert!(s.contains(IndexId::new(5)));
        assert!(!s.contains(IndexId::new(6)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove() {
        let mut s = IndexSet::from_ids(10, ids(&[1, 3, 7]));
        assert!(s.remove(IndexId::new(3)));
        assert!(!s.remove(IndexId::new(3)));
        assert_eq!(s.to_vec(), ids(&[1, 7]));
    }

    #[test]
    fn subset_relations() {
        let a = IndexSet::from_ids(200, ids(&[1, 64, 130]));
        let b = IndexSet::from_ids(200, ids(&[1, 2, 64, 130, 199]));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(b.is_superset(&a));
        assert!(a.is_subset(&a));
        let empty = IndexSet::empty(200);
        assert!(empty.is_subset(&a));
    }

    #[test]
    fn union() {
        let mut a = IndexSet::from_ids(70, ids(&[0, 65]));
        let b = IndexSet::from_ids(70, ids(&[1, 65]));
        a.union_with(&b);
        assert_eq!(a.to_vec(), ids(&[0, 1, 65]));
    }

    #[test]
    fn with_without_do_not_mutate() {
        let a = IndexSet::from_ids(10, ids(&[2]));
        let b = a.with(IndexId::new(4));
        assert_eq!(a.len(), 1);
        assert_eq!(b.to_vec(), ids(&[2, 4]));
        let c = b.without(IndexId::new(2));
        assert_eq!(c.to_vec(), ids(&[4]));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn iter_crosses_block_boundaries() {
        let members = ids(&[0, 63, 64, 127, 128]);
        let s = IndexSet::from_ids(130, members.clone());
        assert_eq!(s.to_vec(), members);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn complement() {
        let s = IndexSet::from_ids(5, ids(&[1, 3]));
        let comp: Vec<IndexId> = s.complement_iter().collect();
        assert_eq!(comp, ids(&[0, 2, 4]));
    }

    #[test]
    fn full_set() {
        for n in [0usize, 1, 63, 64, 65, 67, 128, 130] {
            let s = IndexSet::full(n);
            assert_eq!(s.len(), n, "universe {n}");
            assert_eq!(s.to_vec(), (0..n).map(IndexId::from).collect::<Vec<_>>());
            assert_eq!(s.complement_iter().count(), 0, "universe {n}");
        }
        assert!(IndexSet::from_ids(67, ids(&[66])).is_subset(&IndexSet::full(67)));
    }

    #[test]
    fn complement_crosses_block_boundaries() {
        let s = IndexSet::from_ids(130, ids(&[0, 63, 64, 127, 128]));
        let comp: Vec<IndexId> = s.complement_iter().collect();
        let naive: Vec<IndexId> = (0..130usize)
            .map(IndexId::from)
            .filter(|&id| !s.contains(id))
            .collect();
        assert_eq!(comp, naive);
        assert_eq!(comp.len(), 125);
    }

    #[test]
    fn subset_except_matches_materialized_difference() {
        let a = IndexSet::from_ids(200, ids(&[1, 64, 130]));
        let b = IndexSet::from_ids(200, ids(&[1, 130, 199]));
        // a \ {64} = {1, 130} ⊆ b, but a itself is not.
        assert!(!a.is_subset(&b));
        assert!(a.is_subset_except(&b, IndexId::new(64)));
        // Excluding a non-member changes nothing.
        assert!(!a.is_subset_except(&b, IndexId::new(2)));
        assert!(a.is_subset_except(&a, IndexId::new(64)));
    }

    #[test]
    fn display() {
        let s = IndexSet::from_ids(10, ids(&[1, 2]));
        assert_eq!(format!("{s}"), "{I1, I2}");
        assert_eq!(format!("{}", IndexSet::empty(4)), "{}");
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: IndexSet = ids(&[3, 9]).into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_blocks_inverts_as_blocks_and_rejects_bad_input() {
        let s = IndexSet::from_ids(100, ids(&[0, 63, 64, 99]));
        let back = IndexSet::from_blocks(100, s.as_blocks().to_vec()).unwrap();
        assert_eq!(back, s);
        // Wrong block count for the universe.
        assert!(IndexSet::from_blocks(100, vec![0]).is_none());
        assert!(IndexSet::from_blocks(64, vec![0, 0]).is_none());
        // A bit beyond the universe must be rejected, not truncated.
        assert!(IndexSet::from_blocks(100, vec![0, 1 << 40]).is_none());
        // Exactly block-aligned universes have no tail to check.
        assert!(IndexSet::from_blocks(128, vec![u64::MAX, u64::MAX]).is_some());
    }
}
