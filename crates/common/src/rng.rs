//! Deterministic RNG helpers.
//!
//! Every stochastic component in the workspace (MCTS rollouts, ε-greedy
//! action sampling, synthetic workload generation, DQN exploration) takes an
//! explicit seed and derives its generator through these helpers, so that
//! experiments are reproducible bit-for-bit (the paper runs 5 seeds and
//! reports mean ± std; we do the same).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct the standard generator from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a stream-specific generator from a base seed and a stream label.
///
/// Mixing the label via FNV-1a keeps independently-seeded components (e.g.
/// the rollout RNG vs the query-selection RNG) decorrelated even when the
/// user supplies adjacent base seeds.
pub fn derive(seed: u64, stream: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in stream.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Derive the generator for worker `index` within a labelled stream family.
///
/// Root-parallel search runs `N` logically independent workers from one
/// session seed; each worker needs its own decorrelated stream whose
/// identity depends only on `(seed, stream, index)` — never on thread
/// scheduling. The label is mixed FNV-1a style as in [`derive`], then the
/// worker index is folded in through a SplitMix64 finalizer so adjacent
/// indexes land far apart in seed space.
pub fn derive_indexed(seed: u64, stream: &str, index: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in stream.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let state = (seed ^ h).wrapping_add(index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Weighted sampling: pick an element index with probability proportional to
/// `weights[i]`. Non-finite or negative weights are treated as zero; if all
/// weights are zero the choice is uniform. Returns `None` on empty input.
///
/// This implements the paper's Eq. 6 sampling rule
/// `Pr(a|s) = Q̂(s,a) / Σ_b Q̂(s,b)` used by the ε-greedy variant.
pub fn weighted_choice<R: rand::Rng>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
    let total: f64 = weights.iter().copied().map(clean).sum();
    if total <= 0.0 {
        return Some(rng.random_range(0..weights.len()));
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= clean(w);
        if target <= 0.0 {
            return Some(i);
        }
    }
    // Floating-point slack: fall back to the last positive-weight element.
    weights.iter().rposition(|&w| clean(w) > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn derive_streams_differ() {
        let mut a = derive(1, "rollout");
        let mut b = derive(1, "query-selection");
        let xa: u64 = a.random();
        let xb: u64 = b.random();
        assert_ne!(xa, xb);
    }

    #[test]
    fn derive_is_deterministic() {
        let x: u64 = derive(7, "s").random();
        let y: u64 = derive(7, "s").random();
        assert_eq!(x, y);
    }

    #[test]
    fn derive_indexed_is_deterministic_and_splits() {
        let x: u64 = derive_indexed(7, "mcts-root-worker", 0).random();
        let y: u64 = derive_indexed(7, "mcts-root-worker", 0).random();
        assert_eq!(x, y);
        let streams: Vec<u64> = (0..4)
            .map(|w| derive_indexed(7, "mcts-root-worker", w).random())
            .collect();
        for i in 0..streams.len() {
            for j in i + 1..streams.len() {
                assert_ne!(streams[i], streams[j]);
            }
        }
        // Worker streams are decorrelated from the label-only stream too.
        let base: u64 = derive(7, "mcts-root-worker").random();
        assert!(!streams.contains(&base));
    }

    #[test]
    fn weighted_choice_empty() {
        assert_eq!(weighted_choice(&mut seeded(0), &[]), None);
    }

    #[test]
    fn weighted_choice_all_zero_is_uniform() {
        let mut rng = seeded(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[weighted_choice(&mut rng, &[0.0, 0.0, 0.0]).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = seeded(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_choice(&mut rng, &[1.0, 0.0, 9.0]).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac = counts[2] as f64 / 30_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn weighted_choice_ignores_nan_and_negative() {
        let mut rng = seeded(9);
        for _ in 0..100 {
            let i = weighted_choice(&mut rng, &[f64::NAN, -3.0, 2.0]).unwrap();
            assert_eq!(i, 2);
        }
    }
}
