//! Workspace error type.

use std::fmt;

/// Errors surfaced by ixtune library crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The mini-SQL parser rejected its input.
    Parse {
        /// Byte offset of the offending token in the source text.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A name (table, column, alias) could not be resolved against the schema.
    UnknownName(String),
    /// An operation received inconsistent inputs (e.g. a configuration over
    /// the wrong candidate universe, or K = 0).
    Invalid(String),
    /// A metered what-if call was attempted with no budget remaining.
    BudgetExhausted,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::UnknownName(name) => write!(f, "unknown name: {name}"),
            Error::Invalid(msg) => write!(f, "invalid input: {msg}"),
            Error::BudgetExhausted => write!(f, "what-if call budget exhausted"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Parse {
            offset: 12,
            message: "expected FROM".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 12: expected FROM");
        assert_eq!(
            Error::UnknownName("lineitem".into()).to_string(),
            "unknown name: lineitem"
        );
        assert_eq!(
            Error::BudgetExhausted.to_string(),
            "what-if call budget exhausted"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Invalid("x".into()));
    }
}
