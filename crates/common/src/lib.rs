//! Shared foundation types for the `ixtune` workspace.
//!
//! This crate contains the vocabulary used by every other crate:
//!
//! * [`ids`] — small, copyable newtype identifiers for tables, columns,
//!   queries, and candidate indexes;
//! * [`bitset`] — [`IndexSet`], the dense bitset that represents an *index
//!   configuration* (a subset of the candidate indexes) and supports the
//!   subset tests that cost derivation is built on;
//! * [`error`] — the workspace error type;
//! * [`fault`] — the deterministic fault-injection plane: a seeded
//!   [`fault::FaultPlan`] with named injection sites, inert by default;
//! * [`rng`] — deterministic RNG construction helpers so that every
//!   stochastic component is reproducible from an explicit seed;
//! * [`sync`] — atomic budget reservation and thread-count resolution for
//!   intra-session parallelism.

pub mod bitset;
pub mod error;
pub mod fault;
pub mod ids;
pub mod intern;
pub mod rng;
pub mod sync;

pub use bitset::IndexSet;
pub use error::{Error, Result};
pub use fault::{FaultCursor, FaultPlan};
pub use ids::{ColumnId, ColumnRef, IndexId, QueryId, TableId};
pub use intern::{ConfigInterner, IdCostMap};
