//! Small concurrency primitives for intra-session parallelism.
//!
//! The what-if budget `B` bounds *optimizer calls*, not CPU, so a session
//! may fan work out across threads — but no interleaving may ever let the
//! workers collectively consume more than `B` calls. [`AtomicBudget`] is
//! the shared reservation pool that enforces this: workers draw batched
//! grants up front and run against their private grant, so the per-call
//! hot path stays free of shared-state traffic.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared pool of remaining what-if calls, drawn down in batches.
///
/// `reserve(n)` grants `min(n, remaining)` atomically: the sum of all
/// grants can never exceed the initial pool, regardless of how reserving
/// threads interleave.
#[derive(Debug)]
pub struct AtomicBudget {
    remaining: AtomicUsize,
}

impl AtomicBudget {
    pub fn new(remaining: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(remaining),
        }
    }

    /// Calls still available in the pool.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Reserve up to `n` calls; returns the number actually granted
    /// (`min(n, remaining)` at the instant the CAS succeeds, so the grant
    /// can never overshoot the pool).
    pub fn reserve(&self, n: usize) -> usize {
        let mut cur = self.remaining.load(Ordering::Acquire);
        loop {
            let granted = n.min(cur);
            if granted == 0 {
                return 0;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - granted,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return granted,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Threads the host can actually run in parallel (`1` if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a requested session thread count: `0` means "auto" (use all
/// available hardware parallelism); any explicit value is honored as the
/// *logical* thread count — results are invariant to it by construction,
/// and the execution layer separately clamps the number of OS threads it
/// actually spawns to the hardware.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_grants_at_most_remaining() {
        let pool = AtomicBudget::new(5);
        assert_eq!(pool.reserve(3), 3);
        assert_eq!(pool.remaining(), 2);
        // remaining < n: partial grant, pool drains to zero.
        assert_eq!(pool.reserve(10), 2);
        assert_eq!(pool.remaining(), 0);
    }

    #[test]
    fn reserve_on_empty_pool_grants_zero() {
        let pool = AtomicBudget::new(0);
        assert_eq!(pool.reserve(1), 0);
        assert_eq!(pool.reserve(0), 0);
        assert_eq!(pool.remaining(), 0);
    }

    #[test]
    fn concurrent_reserves_never_oversubscribe() {
        let pool = AtomicBudget::new(1000);
        let granted: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..100).map(|_| pool.reserve(3)).sum::<usize>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(granted + pool.remaining(), 1000);
        assert!(granted <= 1000);
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(4), 4);
        assert_eq!(effective_threads(0), available_parallelism());
        assert!(effective_threads(0) >= 1);
    }
}
