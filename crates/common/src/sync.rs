//! Small concurrency primitives for intra-session parallelism.
//!
//! The what-if budget `B` bounds *optimizer calls*, not CPU, so a session
//! may fan work out across threads — but no interleaving may ever let the
//! workers collectively consume more than `B` calls. [`AtomicBudget`] is
//! the shared reservation pool that enforces this: workers draw batched
//! grants up front and run against their private grant, so the per-call
//! hot path stays free of shared-state traffic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A shared pool of remaining what-if calls, drawn down in batches.
///
/// `reserve(n)` grants `min(n, remaining)` atomically: the sum of all
/// grants can never exceed the initial pool, regardless of how reserving
/// threads interleave.
#[derive(Debug)]
pub struct AtomicBudget {
    remaining: AtomicUsize,
}

impl AtomicBudget {
    pub fn new(remaining: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(remaining),
        }
    }

    /// Calls still available in the pool.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Reserve up to `n` calls; returns the number actually granted
    /// (`min(n, remaining)` at the instant the CAS succeeds, so the grant
    /// can never overshoot the pool).
    pub fn reserve(&self, n: usize) -> usize {
        let mut cur = self.remaining.load(Ordering::Acquire);
        loop {
            let granted = n.min(cur);
            if granted == 0 {
                return 0;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - granted,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return granted,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A classic monitor: state guarded by a mutex plus a condition variable
/// for waiters. The building block of the tuning service's session
/// manager (bounded queue, state-change notification) — kept here so
/// other crates get the lock/notify pairing right by construction
/// (every mutation can notify; every wait re-checks its predicate).
#[derive(Debug, Default)]
pub struct Monitor<T> {
    state: Mutex<T>,
    cond: Condvar,
}

impl<T> Monitor<T> {
    pub fn new(state: T) -> Self {
        Self {
            state: Mutex::new(state),
            cond: Condvar::new(),
        }
    }

    /// Run `f` on the guarded state and wake all waiters afterwards.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.lock();
        let r = f(&mut guard);
        self.cond.notify_all();
        r
    }

    /// Read (or mutate without notifying) the guarded state.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.lock())
    }

    /// Block until `pred` holds, then run `f` on the state (still under
    /// the lock) and wake all waiters — the waiter itself usually mutates.
    pub fn wait_update<R>(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        let mut guard = self.lock();
        while !pred(&guard) {
            guard = self.cond.wait(guard).expect("monitor poisoned");
        }
        let r = f(&mut guard);
        self.cond.notify_all();
        r
    }

    /// Like [`wait_update`](Self::wait_update) with a timeout: returns
    /// `None` if `pred` still fails when the timeout elapses.
    pub fn wait_update_timeout<R>(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&T) -> bool,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let mut guard = self.lock();
        let mut remaining = timeout;
        while !pred(&guard) {
            let start = std::time::Instant::now();
            let (g, res) = self
                .cond
                .wait_timeout(guard, remaining)
                .expect("monitor poisoned");
            guard = g;
            if pred(&guard) {
                break;
            }
            if res.timed_out() {
                return None;
            }
            remaining = remaining.saturating_sub(start.elapsed());
        }
        let r = f(&mut guard);
        self.cond.notify_all();
        Some(r)
    }

    fn lock(&self) -> MutexGuard<'_, T> {
        self.state.lock().expect("monitor poisoned")
    }
}

/// Threads the host can actually run in parallel (`1` if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a requested session thread count: `0` means "auto" (use all
/// available hardware parallelism); any explicit value is honored as the
/// *logical* thread count — results are invariant to it by construction,
/// and the execution layer separately clamps the number of OS threads it
/// actually spawns to the hardware.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_grants_at_most_remaining() {
        let pool = AtomicBudget::new(5);
        assert_eq!(pool.reserve(3), 3);
        assert_eq!(pool.remaining(), 2);
        // remaining < n: partial grant, pool drains to zero.
        assert_eq!(pool.reserve(10), 2);
        assert_eq!(pool.remaining(), 0);
    }

    #[test]
    fn reserve_on_empty_pool_grants_zero() {
        let pool = AtomicBudget::new(0);
        assert_eq!(pool.reserve(1), 0);
        assert_eq!(pool.reserve(0), 0);
        assert_eq!(pool.remaining(), 0);
    }

    #[test]
    fn concurrent_reserves_never_oversubscribe() {
        let pool = AtomicBudget::new(1000);
        let granted: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..100).map(|_| pool.reserve(3)).sum::<usize>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(granted + pool.remaining(), 1000);
        assert!(granted <= 1000);
    }

    #[test]
    fn monitor_wait_observes_update() {
        let m = Monitor::new(0usize);
        std::thread::scope(|s| {
            s.spawn(|| {
                let seen = m.wait_update(|&v| v >= 3, |v| *v);
                assert_eq!(seen, 3);
            });
            for _ in 0..3 {
                m.update(|v| *v += 1);
            }
        });
        assert_eq!(m.with(|v| *v), 3);
    }

    #[test]
    fn monitor_wait_timeout_expires() {
        let m = Monitor::new(false);
        let r = m.wait_update_timeout(Duration::from_millis(20), |&v| v, |_| ());
        assert!(r.is_none());
        m.update(|v| *v = true);
        let r = m.wait_update_timeout(Duration::from_millis(20), |&v| v, |_| 7);
        assert_eq!(r, Some(7));
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(4), 4);
        assert_eq!(effective_threads(0), available_parallelism());
        assert!(effective_threads(0) >= 1);
    }
}
