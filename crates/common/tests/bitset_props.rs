//! Property tests for the `IndexSet` bitset — configurations are the core
//! data structure of the whole system, so its algebra must be airtight.

use ixtune_common::{IndexId, IndexSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: usize = 150;

fn model(mask: &[bool]) -> BTreeSet<usize> {
    mask.iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i)
        .collect()
}

fn build(mask: &[bool]) -> IndexSet {
    IndexSet::from_ids(
        UNIVERSE,
        mask.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| IndexId::from(i)),
    )
}

proptest! {
    #[test]
    fn membership_matches_model(mask in prop::collection::vec(any::<bool>(), UNIVERSE)) {
        let set = build(&mask);
        let reference = model(&mask);
        prop_assert_eq!(set.len(), reference.len());
        for i in 0..UNIVERSE {
            prop_assert_eq!(set.contains(IndexId::from(i)), reference.contains(&i));
        }
        let iterated: Vec<usize> = set.iter().map(|id| id.index()).collect();
        prop_assert_eq!(iterated, reference.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn subset_matches_model(
        a in prop::collection::vec(any::<bool>(), UNIVERSE),
        b in prop::collection::vec(any::<bool>(), UNIVERSE),
    ) {
        let (sa, sb) = (build(&a), build(&b));
        let (ma, mb) = (model(&a), model(&b));
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sb.is_superset(&sa), ma.is_subset(&mb));
    }

    #[test]
    fn union_matches_model(
        a in prop::collection::vec(any::<bool>(), UNIVERSE),
        b in prop::collection::vec(any::<bool>(), UNIVERSE),
    ) {
        let (mut sa, sb) = (build(&a), build(&b));
        let expected: Vec<usize> = model(&a).union(&model(&b)).copied().collect();
        sa.union_with(&sb);
        let got: Vec<usize> = sa.iter().map(|id| id.index()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn with_without_invert(mask in prop::collection::vec(any::<bool>(), UNIVERSE), i in 0..UNIVERSE) {
        let set = build(&mask);
        let id = IndexId::from(i);
        let with = set.with(id);
        prop_assert!(with.contains(id));
        prop_assert!(set.is_subset(&with));
        let without = with.without(id);
        prop_assert!(!without.contains(id));
        if !set.contains(id) {
            prop_assert_eq!(without, set);
        }
    }

    #[test]
    fn complement_partitions_universe(mask in prop::collection::vec(any::<bool>(), UNIVERSE)) {
        let set = build(&mask);
        let comp: Vec<usize> = set.complement_iter().map(|id| id.index()).collect();
        prop_assert_eq!(comp.len() + set.len(), UNIVERSE);
        for id in &comp {
            prop_assert!(!set.contains(IndexId::from(*id)));
        }
    }

    #[test]
    fn empty_is_subset_of_everything(mask in prop::collection::vec(any::<bool>(), UNIVERSE)) {
        let set = build(&mask);
        let empty = IndexSet::empty(UNIVERSE);
        prop_assert!(empty.is_subset(&set));
        prop_assert!(set.is_subset(&IndexSet::full(UNIVERSE)));
    }
}
