//! CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding every
//! WAL record and snapshot payload. Table-driven; the table is built at
//! compile time so the hot path is one lookup per byte.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Published IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"budget-aware index tuning".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "byte {byte} bit {bit}");
            }
        }
    }
}
