//! # ixtune-persist — durable daemon state
//!
//! The paper's premise is that what-if optimizer calls are the scarce
//! resource; every cost the daemon has already paid for is capital. This
//! crate makes that capital survive process death: an append-only,
//! CRC-checked write-ahead log of warm-store publications and session
//! lifecycle events, compacted into generation-numbered snapshots, with
//! a recovery path that replays the newest valid snapshot plus the WAL
//! tail and truncates torn bytes instead of failing.
//!
//! The crate is std-only and knows nothing about the service layer's
//! types: specs and results travel as opaque JSON strings, warm rows as
//! `(query, bitset blocks, f64::to_bits cost)` primitives, so recovery
//! is bit-identical and no dependency cycle forms.
//!
//! Layering:
//!
//! - [`codec`] — bounded LEB128/fixed-width binary encoding
//! - [`crc`] — CRC-32 (IEEE), compile-time table
//! - [`wal`] — `[len][crc][payload]` framing with torn-tail scanning
//! - [`record`] — the durable event set and its [`PersistState`] fold
//! - [`store`] — [`Persist`]: open/recover, append, compact, stats

pub mod codec;
pub mod crc;
pub mod record;
pub mod store;
pub mod wal;

pub use record::{
    PersistState, Record, SessionRow, SessionStatus, WarmBatch, WarmEntry, WarmTable,
    SNAPSHOT_VERSION,
};
pub use store::{
    fault_site, AppendOutcome, CompactOutcome, Durability, FaultHook, Persist, PersistStats,
    RecoveryInfo, BATCH_BYTES, BATCH_RECORDS,
};
