//! WAL framing: `[u32 len LE][u32 crc LE][payload]` per record.
//!
//! The reader walks frames until the file ends cleanly or a frame fails —
//! short header, short payload, length beyond the file, or CRC mismatch.
//! Any failure marks a *torn tail*: everything before it is the valid
//! prefix and is kept; everything from the failed frame on is truncated
//! away so the next append continues from a clean boundary. A torn tail
//! is the expected signature of dying mid-write, not an error.

use crate::crc::crc32;
use std::fs::File;
use std::io::{self, Read, Write};

/// Frame header: payload length + payload CRC, both little-endian u32.
pub const FRAME_HEADER: usize = 8;

/// Largest payload a frame may carry (64 MiB). A corrupted length word
/// must not drive a giant allocation; anything above this is torn.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Append one framed payload. Returns the bytes written (header + payload).
pub fn append_frame(file: &mut File, payload: &[u8]) -> io::Result<u64> {
    debug_assert!(payload.len() as u64 <= u64::from(MAX_PAYLOAD));
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    file.write_all(&frame)?;
    Ok(frame.len() as u64)
}

/// The result of scanning a WAL file.
pub struct WalScan {
    /// Payloads of every frame in the valid prefix, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Length of the valid prefix in bytes.
    pub valid_len: u64,
    /// Whether bytes after the valid prefix had to be discarded.
    pub torn: bool,
}

/// Scan every valid frame from the start of `file`.
pub fn scan(file: &mut File) -> io::Result<WalScan> {
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == buf.len() {
            // Clean end: every byte belonged to a whole frame.
            return Ok(WalScan {
                payloads,
                valid_len: pos as u64,
                torn: false,
            });
        }
        let rest = &buf[pos..];
        if rest.len() < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD || rest.len() - FRAME_HEADER < len as usize {
            break;
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len as usize];
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        pos += FRAME_HEADER + len as usize;
    }
    Ok(WalScan {
        payloads,
        valid_len: pos as u64,
        torn: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Seek;

    fn temp_wal(tag: &str) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "ixtune-persist-waltest-{tag}-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        (path, file)
    }

    fn rewound(mut file: File) -> File {
        file.rewind().unwrap();
        file
    }

    #[test]
    fn frames_roundtrip_in_order() {
        let (path, mut file) = temp_wal("roundtrip");
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1, 2, 3], vec![0xff; 1000]];
        for p in &payloads {
            append_frame(&mut file, p).unwrap();
        }
        let got = scan(&mut rewound(file)).unwrap();
        assert!(!got.torn);
        assert_eq!(got.payloads, payloads);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupt_byte_tears_the_tail_there() {
        let (path, mut file) = temp_wal("corrupt");
        let first = append_frame(&mut file, b"keep me").unwrap();
        append_frame(&mut file, b"lose me").unwrap();
        // Flip a payload byte of the second frame.
        let mut raw = std::fs::read(&path).unwrap();
        let idx = first as usize + FRAME_HEADER;
        raw[idx] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let mut file = File::open(&path).unwrap();
        let got = scan(&mut file).unwrap();
        assert!(got.torn);
        assert_eq!(got.payloads, vec![b"keep me".to_vec()]);
        assert_eq!(got.valid_len, first);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncation_mid_frame_keeps_the_prefix() {
        let (path, mut file) = temp_wal("truncate");
        let first = append_frame(&mut file, b"whole").unwrap();
        append_frame(&mut file, b"half-written record").unwrap();
        drop(file);
        let raw = std::fs::read(&path).unwrap();
        // Cut anywhere inside the second frame: same valid prefix.
        for cut in first as usize + 1..raw.len() {
            std::fs::write(&path, &raw[..cut]).unwrap();
            let got = scan(&mut File::open(&path).unwrap()).unwrap();
            assert!(got.torn, "cut={cut}");
            assert_eq!(got.payloads.len(), 1, "cut={cut}");
            assert_eq!(got.valid_len, first, "cut={cut}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn oversized_length_word_is_torn_not_allocated() {
        let (path, mut file) = temp_wal("oversized");
        append_frame(&mut file, b"ok").unwrap();
        file.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        file.write_all(&0u32.to_le_bytes()).unwrap();
        let got = scan(&mut rewound(file)).unwrap();
        assert!(got.torn);
        assert_eq!(got.payloads, vec![b"ok".to_vec()]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_scans_clean() {
        let (path, file) = temp_wal("empty");
        let got = scan(&mut rewound(file)).unwrap();
        assert!(!got.torn);
        assert!(got.payloads.is_empty());
        assert_eq!(got.valid_len, 0);
        std::fs::remove_file(path).unwrap();
    }
}
