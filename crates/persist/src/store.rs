//! The durable store: generation-numbered snapshots plus a live WAL.
//!
//! On-disk layout inside the data dir:
//!
//! ```text
//! snap-<gen>.bin   state at the moment generation <gen> began (one CRC
//!                  frame; absent for generation 0)
//! wal-<gen>.log    records appended during generation <gen>
//! ```
//!
//! Recovery walks generations newest-first: the first generation whose
//! snapshot decodes wins; its WAL tail is scanned, torn bytes are
//! truncated at the first bad frame, and the surviving records are folded
//! on top. Compaction serializes the live state into `snap-<g+1>`
//! (write-temp + atomic rename), opens a fresh `wal-<g+1>`, and prunes
//! every older generation.

use crate::record::{PersistState, Record};
use crate::wal::{self, FRAME_HEADER};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fault-injection callback: given an injection-site name, decide whether
/// this call should fail. The persist crate stays dependency-free, so the
/// seeded fault plan lives upstream and is handed in as a closure.
pub type FaultHook = Arc<dyn Fn(&'static str) -> bool + Send + Sync>;

/// Injection-site names recognized by this store. The literals match
/// `ixtune_common::fault::site` so one spec string names both layers.
pub mod fault_site {
    /// A WAL frame append fails before any byte is written.
    pub const APPEND: &str = "persist.append";
    /// An fsync (WAL batch, snapshot, or explicit sync) fails.
    pub const FSYNC: &str = "persist.fsync";
    /// The snapshot rename — compaction's commit point — fails.
    pub const RENAME: &str = "persist.rename";
}

fn injected(site: &'static str) -> io::Error {
    io::Error::other(format!("injected: {site}"))
}

/// When appended records reach stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    /// fsync after every append. Survives power loss.
    Always,
    /// fsync every [`BATCH_RECORDS`] records or [`BATCH_BYTES`] unsynced
    /// bytes, and at compaction/close. Survives process death; a power
    /// loss may tear the last batch (recovery truncates it).
    Batch,
    /// Never fsync on the append path. The page cache still survives a
    /// SIGKILL of the process, so crash recovery works; only the machine
    /// dying loses the tail.
    Never,
}

/// Batch policy: sync after this many unsynced records…
pub const BATCH_RECORDS: u64 = 64;
/// …or this many unsynced bytes, whichever comes first.
pub const BATCH_BYTES: u64 = 256 << 10;

impl Durability {
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Batch => "batch",
            Self::Never => "never",
        }
    }
}

impl FromStr for Durability {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(Self::Always),
            "batch" => Ok(Self::Batch),
            "never" => Ok(Self::Never),
            other => Err(format!(
                "unknown durability '{other}' (expected always|batch|never)"
            )),
        }
    }
}

/// What recovery found and did. Mirrored into observability by the
/// service layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryInfo {
    /// Generation recovery settled on.
    pub generation: u64,
    /// Whether a snapshot file was read (false for a cold start or gen 0).
    pub snapshot_loaded: bool,
    /// Snapshot generations that failed to decode and were skipped.
    pub snapshots_skipped: u64,
    /// Records replayed from the WAL tail.
    pub wal_records: u64,
    /// Bytes of torn tail truncated from the WAL.
    pub torn_bytes: u64,
    /// Whether a torn tail was found (even a zero-byte logical tear —
    /// e.g. a valid-length prefix of garbage — counts).
    pub torn_tail: bool,
    /// Wall-clock recovery took, in milliseconds.
    pub duration_ms: f64,
}

/// Outcome of a single append, for metrics.
#[derive(Clone, Copy, Debug)]
pub struct AppendOutcome {
    /// Bytes this append added (frame header + payload).
    pub bytes: u64,
    /// Whether this append fsynced.
    pub synced: bool,
    /// Live WAL size after the append.
    pub wal_bytes: u64,
}

/// Outcome of a compaction, for metrics.
#[derive(Clone, Copy, Debug)]
pub struct CompactOutcome {
    /// The new (post-compaction) generation.
    pub generation: u64,
    /// Size of the snapshot written, in bytes.
    pub snapshot_bytes: u64,
    /// Old generation files removed.
    pub pruned_files: u64,
}

/// A point-in-time view of the store, for `ixtunectl persist`.
#[derive(Clone, Debug)]
pub struct PersistStats {
    pub generation: u64,
    pub wal_bytes: u64,
    pub records_total: u64,
    pub fsyncs_total: u64,
    pub compactions_total: u64,
    pub durability: Durability,
    pub recovery: RecoveryInfo,
}

struct Inner {
    wal: File,
    /// Mutable so the service layer can demote (e.g. to `Never`) when the
    /// disk starts failing, instead of crashing or spamming errors.
    durability: Durability,
    /// Optional fault-injection decision hook; `None` in production.
    fault: Option<FaultHook>,
    generation: u64,
    wal_bytes: u64,
    unsynced_records: u64,
    unsynced_bytes: u64,
    records_total: u64,
    fsyncs_total: u64,
    compactions_total: u64,
    /// The live fold of snapshot + every appended record. Compaction
    /// serializes this under the same lock appends take, so the snapshot
    /// it writes is exactly the WAL's content at a record boundary — no
    /// caller-supplied state, no capture/compact race.
    fold: PersistState,
}

impl Inner {
    fn faulted(&self, site: &'static str) -> bool {
        self.fault.as_ref().is_some_and(|h| h(site))
    }
}

/// Handle to the durable store. Appends and compactions serialize on an
/// internal mutex, so a compaction always observes a record boundary.
pub struct Persist {
    dir: PathBuf,
    recovery: RecoveryInfo,
    inner: Mutex<Inner>,
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation}.bin"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

/// Parse `<stem>-<gen>.<ext>` → generation.
fn parse_generation(name: &str, stem: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(stem)?
        .strip_prefix('-')?
        .strip_suffix(ext)?
        .strip_suffix('.')?
        .parse()
        .ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes the rename itself durable. Best-effort on
    // platforms where opening a directory fails.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

impl Persist {
    /// Open (or create) the store at `dir`, recover the newest valid
    /// state, and truncate any torn WAL tail.
    pub fn open(
        dir: impl Into<PathBuf>,
        durability: Durability,
    ) -> io::Result<(Self, PersistState, RecoveryInfo)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let started = Instant::now();

        // Every generation any file mentions, newest first.
        let mut generations: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            let g = parse_generation(&name, "snap", "bin")
                .or_else(|| parse_generation(&name, "wal", "log"));
            if let Some(g) = g {
                if !generations.contains(&g) {
                    generations.push(g);
                }
            }
        }
        generations.sort_unstable_by(|a, b| b.cmp(a));

        let mut info = RecoveryInfo::default();
        let mut state = PersistState::default();
        let mut generation = 0u64;
        for &g in &generations {
            let snap = snap_path(&dir, g);
            if snap.exists() {
                match read_snapshot(&snap) {
                    Ok(st) => {
                        state = st;
                        generation = g;
                        info.snapshot_loaded = true;
                        break;
                    }
                    Err(_) => {
                        // Corrupt snapshot: fall back to an older one.
                        info.snapshots_skipped += 1;
                        continue;
                    }
                }
            }
            if g == 0 {
                // Gen 0 legitimately has no snapshot.
                generation = 0;
                break;
            }
        }
        info.generation = generation;

        // Replay the generation's WAL tail and truncate torn bytes.
        let wal_file = wal_path(&dir, generation);
        let mut wal_bytes = 0u64;
        if wal_file.exists() {
            let mut f = OpenOptions::new().read(true).write(true).open(&wal_file)?;
            let scanned = wal::scan(&mut f)?;
            if scanned.torn {
                let total = f.metadata()?.len();
                info.torn_tail = true;
                info.torn_bytes = total - scanned.valid_len;
                f.set_len(scanned.valid_len)?;
                f.sync_all()?;
            }
            wal_bytes = scanned.valid_len;
            for payload in &scanned.payloads {
                match Record::decode(payload) {
                    Ok(rec) => {
                        state.apply(rec);
                        info.wal_records += 1;
                    }
                    Err(_) => {
                        // A CRC-valid frame that doesn't decode means the
                        // writer and reader disagree; treat the rest as torn.
                        info.torn_tail = true;
                        break;
                    }
                }
            }
        }

        let mut wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_file)?;
        wal.seek(io::SeekFrom::End(0))?;

        info.duration_ms = started.elapsed().as_secs_f64() * 1e3;
        let persist = Persist {
            dir,
            recovery: info.clone(),
            inner: Mutex::new(Inner {
                wal,
                durability,
                fault: None,
                generation,
                wal_bytes,
                unsynced_records: 0,
                unsynced_bytes: 0,
                records_total: 0,
                fsyncs_total: 0,
                compactions_total: 0,
                fold: state.clone(),
            }),
        };
        Ok((persist, state, info))
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn durability(&self) -> Durability {
        self.inner.lock().expect("persist lock").durability
    }

    /// Change the durability policy of a live store — the degradation
    /// ladder demotes to [`Durability::Never`] when syncs keep failing.
    pub fn set_durability(&self, durability: Durability) {
        self.inner.lock().expect("persist lock").durability = durability;
    }

    /// Install a fault-injection hook. Sites consulted: see [`fault_site`].
    pub fn set_fault_hook(&self, hook: FaultHook) {
        self.inner.lock().expect("persist lock").fault = Some(hook);
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> &RecoveryInfo {
        &self.recovery
    }

    /// Append one record, fsyncing per the durability policy.
    pub fn append(&self, rec: &Record) -> io::Result<AppendOutcome> {
        let payload = rec.encode();
        let mut inner = self.inner.lock().expect("persist lock");
        if inner.faulted(fault_site::APPEND) {
            return Err(injected(fault_site::APPEND));
        }
        let bytes = wal::append_frame(&mut inner.wal, &payload)?;
        inner.fold.apply(rec.clone());
        inner.wal_bytes += bytes;
        inner.records_total += 1;
        inner.unsynced_records += 1;
        inner.unsynced_bytes += bytes;
        let synced = match inner.durability {
            Durability::Always => true,
            Durability::Batch => {
                inner.unsynced_records >= BATCH_RECORDS || inner.unsynced_bytes >= BATCH_BYTES
            }
            Durability::Never => false,
        };
        if synced {
            if inner.faulted(fault_site::FSYNC) {
                return Err(injected(fault_site::FSYNC));
            }
            inner.wal.sync_all()?;
            inner.fsyncs_total += 1;
            inner.unsynced_records = 0;
            inner.unsynced_bytes = 0;
        }
        Ok(AppendOutcome {
            bytes,
            synced,
            wal_bytes: inner.wal_bytes,
        })
    }

    /// Flush any unsynced batch to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("persist lock");
        if inner.unsynced_records > 0 {
            if inner.faulted(fault_site::FSYNC) {
                return Err(injected(fault_site::FSYNC));
            }
            inner.wal.sync_all()?;
            inner.fsyncs_total += 1;
            inner.unsynced_records = 0;
            inner.unsynced_bytes = 0;
        }
        Ok(())
    }

    /// Serialize the live fold as the next generation's snapshot, switch
    /// the live WAL over, and prune older generations. Atomic with respect
    /// to appends: the snapshot captures exactly the records written so
    /// far, and the fresh WAL receives everything after.
    pub fn compact(&self) -> io::Result<CompactOutcome> {
        let mut inner = self.inner.lock().expect("persist lock");
        let next = inner.generation + 1;

        let payload = inner.fold.encode();
        let snapshot_bytes = (payload.len() + FRAME_HEADER) as u64;
        let tmp = self.dir.join(format!("snap-{next}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            wal::append_frame(&mut f, &payload)?;
            if inner.durability != Durability::Never {
                if inner.faulted(fault_site::FSYNC) {
                    let _ = fs::remove_file(&tmp);
                    return Err(injected(fault_site::FSYNC));
                }
                f.sync_all()?;
                inner.fsyncs_total += 1;
            }
        }
        if inner.faulted(fault_site::RENAME) {
            let _ = fs::remove_file(&tmp);
            return Err(injected(fault_site::RENAME));
        }
        fs::rename(&tmp, snap_path(&self.dir, next))?;
        if inner.durability != Durability::Never {
            sync_dir(&self.dir)?;
        }

        // Switch the live WAL to the new generation before pruning, so a
        // crash here leaves both generations readable.
        let new_wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(wal_path(&self.dir, next))?;
        let old_gen = inner.generation;
        inner.wal = new_wal;
        inner.generation = next;
        inner.wal_bytes = 0;
        inner.unsynced_records = 0;
        inner.unsynced_bytes = 0;
        inner.compactions_total += 1;

        let mut pruned_files = 0u64;
        for g in (0..=old_gen).rev() {
            for path in [snap_path(&self.dir, g), wal_path(&self.dir, g)] {
                if path.exists() && fs::remove_file(&path).is_ok() {
                    pruned_files += 1;
                }
            }
        }

        Ok(CompactOutcome {
            generation: next,
            snapshot_bytes,
            pruned_files,
        })
    }

    /// A clone of the live fold (what a crash-now recovery would yield,
    /// modulo any unsynced tail under `Durability::Never`).
    pub fn state(&self) -> PersistState {
        self.inner.lock().expect("persist lock").fold.clone()
    }

    /// Current store statistics.
    pub fn stats(&self) -> PersistStats {
        let inner = self.inner.lock().expect("persist lock");
        PersistStats {
            generation: inner.generation,
            wal_bytes: inner.wal_bytes,
            records_total: inner.records_total,
            fsyncs_total: inner.fsyncs_total,
            compactions_total: inner.compactions_total,
            durability: inner.durability,
            recovery: self.recovery.clone(),
        }
    }
}

fn read_snapshot(path: &Path) -> io::Result<PersistState> {
    let mut f = File::open(path)?;
    let scanned = wal::scan(&mut f)?;
    if scanned.torn || scanned.payloads.len() != 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot is torn or malformed",
        ));
    }
    PersistState::decode(&scanned.payloads[0])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SessionStatus, WarmBatch, WarmEntry};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ixtune-persist-storetest-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn submit(id: u64) -> Record {
        Record::SessionSubmitted {
            id,
            spec_json: format!("{{\"id\":{id}}}"),
        }
    }

    fn warm_batch(n: u64) -> Record {
        Record::WarmBatch(WarmBatch {
            key: "w".into(),
            fingerprint: 9,
            num_queries: 4,
            universe: 64,
            entries: (0..n)
                .map(|i| WarmEntry {
                    query: (i % 4) as u32,
                    blocks: vec![i],
                    cost_bits: (i as f64 * 1.5).to_bits(),
                })
                .collect(),
        })
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let dir = temp_dir("reopen");
        {
            let (p, state, info) = Persist::open(&dir, Durability::Batch).unwrap();
            assert_eq!(info.generation, 0);
            assert!(!info.snapshot_loaded);
            assert!(state.sessions.is_empty());
            p.append(&submit(0)).unwrap();
            p.append(&Record::SessionRunning { id: 0 }).unwrap();
            p.append(&warm_batch(5)).unwrap();
            p.append(&Record::SessionDone {
                id: 0,
                result_json: "{}".into(),
            })
            .unwrap();
            // No clean shutdown: drop without sync (page cache keeps it).
        }
        let (_p, state, info) = Persist::open(&dir, Durability::Batch).unwrap();
        assert_eq!(info.wal_records, 4);
        assert!(!info.torn_tail);
        assert_eq!(state.next_id, 1);
        assert_eq!(state.sessions.len(), 1);
        assert!(matches!(
            state.sessions[0].status,
            SessionStatus::Done { .. }
        ));
        assert_eq!(state.warm_entries(), 5);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = temp_dir("torn");
        {
            let (p, _, _) = Persist::open(&dir, Durability::Always).unwrap();
            p.append(&submit(0)).unwrap();
            p.append(&submit(1)).unwrap();
        }
        // Corrupt the last frame's payload.
        let wal = wal_path(&dir, 0);
        let mut raw = fs::read(&wal).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xff;
        fs::write(&wal, &raw).unwrap();

        let (p, state, info) = Persist::open(&dir, Durability::Always).unwrap();
        assert!(info.torn_tail);
        assert!(info.torn_bytes > 0);
        assert_eq!(info.wal_records, 1);
        assert_eq!(state.sessions.len(), 1, "valid prefix survives");
        // The file itself was truncated: appends continue cleanly.
        p.append(&submit(1)).unwrap();
        drop(p);
        let (_p, state, info) = Persist::open(&dir, Durability::Always).unwrap();
        assert!(!info.torn_tail);
        assert_eq!(state.sessions.len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn compaction_switches_generation_and_prunes() {
        let dir = temp_dir("compact");
        let (p, _, _) = Persist::open(&dir, Durability::Batch).unwrap();
        for i in 0..3 {
            p.append(&submit(i)).unwrap();
        }
        let out = p.compact().unwrap();
        assert_eq!(out.generation, 1);
        assert!(snap_path(&dir, 1).exists());
        assert!(wal_path(&dir, 1).exists());
        assert!(!wal_path(&dir, 0).exists(), "old generation pruned");

        // Post-compaction appends land in the new WAL and replay on top.
        p.append(&submit(3)).unwrap();
        drop(p);
        let (_p, recovered, info) = Persist::open(&dir, Durability::Batch).unwrap();
        assert_eq!(info.generation, 1);
        assert!(info.snapshot_loaded);
        assert_eq!(info.wal_records, 1);
        assert_eq!(recovered.sessions.len(), 4);
        assert_eq!(recovered.next_id, 4);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_generation() {
        let dir = temp_dir("fallback");
        let (p, _, _) = Persist::open(&dir, Durability::Batch).unwrap();
        p.append(&submit(0)).unwrap();
        p.compact().unwrap(); // gen 1
        p.append(&submit(1)).unwrap();
        p.compact().unwrap(); // gen 2
        drop(p);
        // Wreck the gen-2 snapshot; recovery must fall back… but gen 1 was
        // pruned, so it lands on an empty state plus whatever WAL remains.
        // Rebuild gen 1 artificially to prove the fallback path.
        let older = PersistState::default();
        let mut f = File::create(snap_path(&dir, 1)).unwrap();
        wal::append_frame(&mut f, &older.encode()).unwrap();
        drop(f);
        fs::write(snap_path(&dir, 2), b"garbage not a frame").unwrap();

        let (_p, recovered, info) = Persist::open(&dir, Durability::Batch).unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(info.snapshots_skipped, 1);
        assert!(recovered.sessions.is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    /// Injected append faults fail without writing a byte or touching the
    /// fold, injected fsync faults fail after the bytes hit the WAL, and
    /// an injected rename aborts compaction with no generation switch.
    #[test]
    fn fault_hook_fails_the_named_sites_only() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let dir = temp_dir("fault");
        let (p, _, _) = Persist::open(&dir, Durability::Always).unwrap();
        let arm_append = Arc::new(AtomicBool::new(false));
        let arm_fsync = Arc::new(AtomicBool::new(false));
        let arm_rename = Arc::new(AtomicBool::new(false));
        let (a, f, r) = (arm_append.clone(), arm_fsync.clone(), arm_rename.clone());
        p.set_fault_hook(Arc::new(move |site| match site {
            fault_site::APPEND => a.load(Ordering::Relaxed),
            fault_site::FSYNC => f.load(Ordering::Relaxed),
            fault_site::RENAME => r.load(Ordering::Relaxed),
            _ => false,
        }));

        p.append(&submit(0)).unwrap();

        arm_append.store(true, Ordering::Relaxed);
        assert!(p.append(&submit(1)).is_err());
        arm_append.store(false, Ordering::Relaxed);
        assert_eq!(p.state().sessions.len(), 1, "failed append left no trace");

        arm_fsync.store(true, Ordering::Relaxed);
        assert!(p.append(&submit(1)).is_err());
        arm_fsync.store(false, Ordering::Relaxed);
        assert_eq!(
            p.state().sessions.len(),
            2,
            "fsync failure happens after the record is in the WAL"
        );

        arm_rename.store(true, Ordering::Relaxed);
        assert!(p.compact().is_err());
        arm_rename.store(false, Ordering::Relaxed);
        let stats = p.stats();
        assert_eq!(stats.generation, 0, "aborted compaction keeps generation");
        assert!(
            !snap_path(&dir, 1).exists() && !dir.join("snap-1.tmp").exists(),
            "aborted compaction leaves no snapshot or temp file"
        );
        p.compact().unwrap();
        assert_eq!(p.stats().generation, 1);

        // Everything recovered on reopen despite the injected turbulence.
        drop(p);
        let (_p, state, _) = Persist::open(&dir, Durability::Always).unwrap();
        assert_eq!(state.sessions.len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    /// Demoting a live store to `Never` stops the fsync stream — the
    /// degradation ladder's escape hatch when the disk misbehaves.
    #[test]
    fn set_durability_demotes_a_live_store() {
        let dir = temp_dir("demote");
        let (p, _, _) = Persist::open(&dir, Durability::Always).unwrap();
        p.append(&submit(0)).unwrap();
        let fsyncs = p.stats().fsyncs_total;
        assert!(fsyncs > 0);
        p.set_durability(Durability::Never);
        assert_eq!(p.durability(), Durability::Never);
        for i in 1..10 {
            assert!(!p.append(&submit(i)).unwrap().synced);
        }
        assert_eq!(p.stats().fsyncs_total, fsyncs, "no fsyncs after demotion");
        assert_eq!(p.stats().durability, Durability::Never);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn durability_policies_count_fsyncs() {
        let dir = temp_dir("fsync");
        let (p, _, _) = Persist::open(&dir, Durability::Always).unwrap();
        let a = p.append(&submit(0)).unwrap();
        assert!(a.synced);
        assert_eq!(p.stats().fsyncs_total, 1);
        drop(p);
        fs::remove_dir_all(&dir).unwrap();

        let (p, _, _) = Persist::open(&dir, Durability::Never).unwrap();
        for i in 0..200 {
            assert!(!p.append(&submit(i)).unwrap().synced);
        }
        assert_eq!(p.stats().fsyncs_total, 0);
        drop(p);
        fs::remove_dir_all(&dir).unwrap();

        let (p, _, _) = Persist::open(&dir, Durability::Batch).unwrap();
        let mut synced = 0;
        for i in 0..(BATCH_RECORDS * 2) {
            if p.append(&submit(i)).unwrap().synced {
                synced += 1;
            }
        }
        assert_eq!(synced, 2, "one sync per full batch");
        p.sync().unwrap(); // nothing pending → no extra fsync
        assert_eq!(p.stats().fsyncs_total, 2);
        fs::remove_dir_all(dir).unwrap();
    }
}
