//! The compact binary codec WAL records and snapshots are written in.
//!
//! Integers are LEB128 varints (session ids, counts, and string lengths
//! are small almost always), bitset blocks and cost bits are fixed 8-byte
//! little-endian words. Costs travel as `f64::to_bits` so a recovered
//! value is **bit-identical** to the one that was logged — recovery must
//! never round a cost, or a warm-served session would stop being
//! bit-identical to the cold run that paid for it.
//!
//! Decoding is strictly bounded: every read checks the remaining length
//! and returns [`CodecError`] instead of panicking, because the decoder's
//! input is whatever survived a crash.

use std::fmt;

/// A malformed or truncated encoding. The WAL layer treats any decode
/// error like a CRC mismatch: the record (and everything after it) is
/// part of a torn tail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

/// Append-only encoder over a byte buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 unsigned varint.
    #[inline]
    pub fn varu64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Fixed 8-byte little-endian word (bitset blocks, cost bits).
    #[inline]
    pub fn u64_fixed(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `f64` as its exact bit pattern.
    #[inline]
    pub fn f64_bits(&mut self, v: f64) {
        self.u64_fixed(v.to_bits());
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.varu64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The decoder must consume its input exactly; trailing garbage means
    /// the encoding and decoding disagree.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            err(format!("{} trailing bytes", self.buf.len() - self.pos))
        }
    }

    #[inline]
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => err("unexpected end of input (u8)"),
        }
    }

    #[inline]
    pub fn varu64(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return err("varint overflows u64");
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return err("varint longer than 10 bytes");
            }
        }
    }

    /// A varint checked against an addressable-size bound, for counts and
    /// lengths (a torn length byte must not drive a huge allocation).
    pub fn count(&mut self, what: &str) -> Result<usize, CodecError> {
        let v = self.varu64()?;
        if v > self.remaining() as u64 {
            return err(format!("{what} count {v} exceeds remaining input"));
        }
        Ok(v as usize)
    }

    #[inline]
    pub fn u64_fixed(&mut self) -> Result<u64, CodecError> {
        if self.remaining() < 8 {
            return err("unexpected end of input (u64)");
        }
        let mut word = [0u8; 8];
        word.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(word))
    }

    #[inline]
    pub fn f64_bits(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64_fixed()?))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.varu64()?;
        if len > self.remaining() as u64 {
            return err(format!("byte string length {len} exceeds remaining input"));
        }
        let len = len as usize;
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    pub fn str(&mut self) -> Result<String, CodecError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|e| CodecError(format!("invalid UTF-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.varu64(v);
            let mut r = Reader::new(w.buf.as_slice());
            assert_eq!(r.varu64().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn f64_bits_are_exact() {
        for v in [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, 1e-300] {
            let mut w = Writer::new();
            w.f64_bits(v);
            let mut r = Reader::new(w.buf.as_slice());
            assert_eq!(r.f64_bits().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = Writer::new();
        w.str("hello");
        w.u64_fixed(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let outcome = r.str().and_then(|_| r.u64_fixed());
            assert!(outcome.is_err(), "cut={cut} must not decode");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        // A length prefix far beyond the buffer must fail cleanly.
        let mut w = Writer::new();
        w.varu64(1 << 40);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).bytes().is_err());
        assert!(Reader::new(&bytes).count("entries").is_err());
    }
}
