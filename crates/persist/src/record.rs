//! The WAL record set and the replayed state it folds into.
//!
//! Records are the daemon's durable events: warm-store publications
//! (the ledger of simulated what-if calls a settled session paid for),
//! session lifecycle transitions with their checkpoint pointers, and
//! store-wide flushes. The persist crate stays dependency-free, so the
//! domain types are mirrored structurally: configurations travel as raw
//! bitset blocks, costs as `f64::to_bits`, and service-level specs and
//! results as opaque JSON strings the service layer (de)serializes.
//!
//! [`PersistState`] is the fold of a snapshot plus a WAL tail — exactly
//! what [`crate::Persist::open`] hands back for the service to import.

use crate::codec::{CodecError, Reader, Writer};
use std::collections::HashMap;

/// One simulated `(query, config) → cost` cell of a warm publication.
/// `blocks` is the configuration bitset's raw block array; `cost_bits`
/// is `f64::to_bits` of the what-if cost, so recovery is bit-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarmEntry {
    pub query: u32,
    pub blocks: Vec<u64>,
    pub cost_bits: u64,
}

/// One warm-store publication: the deduplicated ledger a settled session
/// contributed for `(key, fingerprint)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarmBatch {
    /// Workload key (`WorkloadSpec::key()`).
    pub key: String,
    /// Optimizer content fingerprint; entries are shared only between
    /// sessions whose schema/workload/candidates are identical.
    pub fingerprint: u64,
    pub num_queries: u32,
    pub universe: u32,
    pub entries: Vec<WarmEntry>,
}

/// A session lifecycle event or warm-store mutation. Appended in event
/// order; replay folds them into [`PersistState`].
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A settled session's ledger was absorbed into the warm store.
    WarmBatch(WarmBatch),
    /// The operator flushed the warm store (`ixtunectl store flush`).
    WarmFlush,
    /// A session was admitted. `spec_json` is the serialized `SubmitSpec`.
    SessionSubmitted { id: u64, spec_json: String },
    /// A worker claimed the session.
    SessionRunning { id: u64 },
    /// The session checkpointed and parked. `checkpoint` is the file name
    /// (relative to the data dir's checkpoint directory) and
    /// `wall_clock_ms` the time accumulated across its run segments.
    SessionSuspended {
        id: u64,
        checkpoint: String,
        wall_clock_ms: f64,
    },
    /// A client re-queued the suspended session.
    SessionResumed { id: u64 },
    /// Terminal: finished with a result (serialized `ResultPayload`).
    SessionDone { id: u64, result_json: String },
    /// Terminal: cancelled, keeping a best-so-far result when one exists.
    SessionCancelled {
        id: u64,
        result_json: Option<String>,
    },
    /// Terminal: construction failed or the worker panicked.
    SessionFailed { id: u64, error: String },
}

const TAG_WARM_BATCH: u8 = 0;
const TAG_WARM_FLUSH: u8 = 1;
const TAG_SUBMITTED: u8 = 2;
const TAG_RUNNING: u8 = 3;
const TAG_SUSPENDED: u8 = 4;
const TAG_RESUMED: u8 = 5;
const TAG_DONE: u8 = 6;
const TAG_CANCELLED: u8 = 7;
const TAG_FAILED: u8 = 8;

impl Record {
    /// Encode into the WAL payload form (framing and CRC are the WAL
    /// layer's concern).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Record::WarmBatch(batch) => {
                w.u8(TAG_WARM_BATCH);
                w.str(&batch.key);
                w.u64_fixed(batch.fingerprint);
                w.varu64(u64::from(batch.num_queries));
                w.varu64(u64::from(batch.universe));
                w.varu64(batch.entries.len() as u64);
                for e in &batch.entries {
                    w.varu64(u64::from(e.query));
                    w.varu64(e.blocks.len() as u64);
                    for &b in &e.blocks {
                        w.u64_fixed(b);
                    }
                    w.u64_fixed(e.cost_bits);
                }
            }
            Record::WarmFlush => w.u8(TAG_WARM_FLUSH),
            Record::SessionSubmitted { id, spec_json } => {
                w.u8(TAG_SUBMITTED);
                w.varu64(*id);
                w.str(spec_json);
            }
            Record::SessionRunning { id } => {
                w.u8(TAG_RUNNING);
                w.varu64(*id);
            }
            Record::SessionSuspended {
                id,
                checkpoint,
                wall_clock_ms,
            } => {
                w.u8(TAG_SUSPENDED);
                w.varu64(*id);
                w.str(checkpoint);
                w.f64_bits(*wall_clock_ms);
            }
            Record::SessionResumed { id } => {
                w.u8(TAG_RESUMED);
                w.varu64(*id);
            }
            Record::SessionDone { id, result_json } => {
                w.u8(TAG_DONE);
                w.varu64(*id);
                w.str(result_json);
            }
            Record::SessionCancelled { id, result_json } => {
                w.u8(TAG_CANCELLED);
                w.varu64(*id);
                match result_json {
                    Some(json) => {
                        w.u8(1);
                        w.str(json);
                    }
                    None => w.u8(0),
                }
            }
            Record::SessionFailed { id, error } => {
                w.u8(TAG_FAILED);
                w.varu64(*id);
                w.str(error);
            }
        }
        w.into_bytes()
    }

    /// Decode one record, consuming the payload exactly.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(payload);
        let rec = Self::read(&mut r)?;
        r.finish()?;
        Ok(rec)
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            TAG_WARM_BATCH => {
                let key = r.str()?;
                let fingerprint = r.u64_fixed()?;
                let num_queries = u32::try_from(r.varu64()?)
                    .map_err(|_| CodecError("num_queries exceeds u32".into()))?;
                let universe = u32::try_from(r.varu64()?)
                    .map_err(|_| CodecError("universe exceeds u32".into()))?;
                let n = r.count("warm entries")?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let query = u32::try_from(r.varu64()?)
                        .map_err(|_| CodecError("query id exceeds u32".into()))?;
                    let nb = r.count("blocks")?;
                    let mut blocks = Vec::with_capacity(nb);
                    for _ in 0..nb {
                        blocks.push(r.u64_fixed()?);
                    }
                    let cost_bits = r.u64_fixed()?;
                    entries.push(WarmEntry {
                        query,
                        blocks,
                        cost_bits,
                    });
                }
                Record::WarmBatch(WarmBatch {
                    key,
                    fingerprint,
                    num_queries,
                    universe,
                    entries,
                })
            }
            TAG_WARM_FLUSH => Record::WarmFlush,
            TAG_SUBMITTED => Record::SessionSubmitted {
                id: r.varu64()?,
                spec_json: r.str()?,
            },
            TAG_RUNNING => Record::SessionRunning { id: r.varu64()? },
            TAG_SUSPENDED => Record::SessionSuspended {
                id: r.varu64()?,
                checkpoint: r.str()?,
                wall_clock_ms: r.f64_bits()?,
            },
            TAG_RESUMED => Record::SessionResumed { id: r.varu64()? },
            TAG_DONE => Record::SessionDone {
                id: r.varu64()?,
                result_json: r.str()?,
            },
            TAG_CANCELLED => {
                let id = r.varu64()?;
                let result_json = match r.u8()? {
                    0 => None,
                    1 => Some(r.str()?),
                    t => return Err(CodecError(format!("bad option tag {t}"))),
                };
                Record::SessionCancelled { id, result_json }
            }
            TAG_FAILED => Record::SessionFailed {
                id: r.varu64()?,
                error: r.str()?,
            },
            tag => return Err(CodecError(format!("unknown record tag {tag}"))),
        })
    }
}

/// Where a recovered session sits in its lifecycle. `Running` survives in
/// the log when the daemon died mid-session; importers treat it as
/// `Queued` (the session re-runs, from its checkpoint when one exists).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    Queued,
    Running,
    Suspended,
    Done { result_json: String },
    Cancelled { result_json: Option<String> },
    Failed { error: String },
}

impl SessionStatus {
    /// Whether the session can never run again.
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            Self::Done { .. } | Self::Cancelled { .. } | Self::Failed { .. }
        )
    }
}

/// One recovered session.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionRow {
    pub id: u64,
    pub spec_json: String,
    pub status: SessionStatus,
    /// Checkpoint file name, kept while a suspension is outstanding
    /// (cleared when the session goes terminal).
    pub checkpoint: Option<String>,
    /// Wall-clock accumulated across completed run segments.
    pub wall_clock_ms: f64,
    /// True once the session has resumed at least once: the spec's
    /// deterministic one-shot triggers are spent.
    pub resumed: bool,
}

/// One recovered warm-store table, deduplicated per `(query, config)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarmTable {
    pub num_queries: u32,
    pub universe: u32,
    pub entries: Vec<WarmEntry>,
    /// Dedup index over `(query, blocks)` — replaying a batch twice (or a
    /// compaction racing an append) must not double entries.
    seen: HashMap<(u32, Vec<u64>), ()>,
}

impl WarmTable {
    fn push(&mut self, e: WarmEntry) {
        if self.seen.insert((e.query, e.blocks.clone()), ()).is_none() {
            self.entries.push(e);
        }
    }
}

/// The fold of every durable event: what the service imports at startup
/// and what compaction serializes into the next snapshot generation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PersistState {
    /// The next session id the daemon may assign (max submitted id + 1).
    pub next_id: u64,
    /// Sessions in id order.
    pub sessions: Vec<SessionRow>,
    /// Warm tables keyed by `(workload key, fingerprint)`, in first-seen
    /// order.
    pub warm: Vec<((String, u64), WarmTable)>,
}

impl PersistState {
    fn session_mut(&mut self, id: u64) -> Option<&mut SessionRow> {
        self.sessions.iter_mut().find(|s| s.id == id)
    }

    fn warm_table_mut(&mut self, key: &str, fingerprint: u64) -> &mut WarmTable {
        if let Some(i) = self
            .warm
            .iter()
            .position(|((k, f), _)| k == key && *f == fingerprint)
        {
            return &mut self.warm[i].1;
        }
        self.warm
            .push(((key.to_string(), fingerprint), WarmTable::default()));
        &mut self.warm.last_mut().expect("just pushed").1
    }

    /// Total warm entries across tables.
    pub fn warm_entries(&self) -> usize {
        self.warm.iter().map(|(_, t)| t.entries.len()).sum()
    }

    /// Fold one event in. Unknown session ids are tolerated (a compacted
    /// snapshot plus a stale WAL can mention sessions the snapshot already
    /// settled); replay must never fail on ordering.
    pub fn apply(&mut self, rec: Record) {
        match rec {
            Record::WarmBatch(batch) => {
                let table = self.warm_table_mut(&batch.key, batch.fingerprint);
                if table.entries.is_empty() {
                    table.num_queries = batch.num_queries;
                    table.universe = batch.universe;
                }
                for e in batch.entries {
                    table.push(e);
                }
            }
            Record::WarmFlush => self.warm.clear(),
            Record::SessionSubmitted { id, spec_json } => {
                self.next_id = self.next_id.max(id + 1);
                if self.session_mut(id).is_none() {
                    self.sessions.push(SessionRow {
                        id,
                        spec_json,
                        status: SessionStatus::Queued,
                        checkpoint: None,
                        wall_clock_ms: 0.0,
                        resumed: false,
                    });
                }
            }
            Record::SessionRunning { id } => {
                if let Some(row) = self.session_mut(id) {
                    if !row.status.terminal() {
                        row.status = SessionStatus::Running;
                    }
                }
            }
            Record::SessionSuspended {
                id,
                checkpoint,
                wall_clock_ms,
            } => {
                if let Some(row) = self.session_mut(id) {
                    row.status = SessionStatus::Suspended;
                    row.checkpoint = Some(checkpoint);
                    row.wall_clock_ms = wall_clock_ms;
                }
            }
            Record::SessionResumed { id } => {
                if let Some(row) = self.session_mut(id) {
                    if !row.status.terminal() {
                        row.status = SessionStatus::Queued;
                    }
                    row.resumed = true;
                }
            }
            Record::SessionDone { id, result_json } => {
                if let Some(row) = self.session_mut(id) {
                    row.status = SessionStatus::Done { result_json };
                    row.checkpoint = None;
                }
            }
            Record::SessionCancelled { id, result_json } => {
                if let Some(row) = self.session_mut(id) {
                    row.status = SessionStatus::Cancelled { result_json };
                    row.checkpoint = None;
                }
            }
            Record::SessionFailed { id, error } => {
                if let Some(row) = self.session_mut(id) {
                    row.status = SessionStatus::Failed { error };
                    row.checkpoint = None;
                }
            }
        }
    }

    /// Encode the whole state as a snapshot payload (versioned; framing
    /// and CRC are the snapshot writer's concern).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(SNAPSHOT_VERSION);
        w.varu64(self.next_id);
        w.varu64(self.sessions.len() as u64);
        for s in &self.sessions {
            w.varu64(s.id);
            w.str(&s.spec_json);
            match &s.status {
                SessionStatus::Queued => w.u8(0),
                SessionStatus::Running => w.u8(1),
                SessionStatus::Suspended => w.u8(2),
                SessionStatus::Done { result_json } => {
                    w.u8(3);
                    w.str(result_json);
                }
                SessionStatus::Cancelled { result_json } => {
                    w.u8(4);
                    match result_json {
                        Some(json) => {
                            w.u8(1);
                            w.str(json);
                        }
                        None => w.u8(0),
                    }
                }
                SessionStatus::Failed { error } => {
                    w.u8(5);
                    w.str(error);
                }
            }
            match &s.checkpoint {
                Some(name) => {
                    w.u8(1);
                    w.str(name);
                }
                None => w.u8(0),
            }
            w.f64_bits(s.wall_clock_ms);
            w.u8(u8::from(s.resumed));
        }
        w.varu64(self.warm.len() as u64);
        for ((key, fingerprint), table) in &self.warm {
            w.str(key);
            w.u64_fixed(*fingerprint);
            w.varu64(u64::from(table.num_queries));
            w.varu64(u64::from(table.universe));
            w.varu64(table.entries.len() as u64);
            for e in &table.entries {
                w.varu64(u64::from(e.query));
                w.varu64(e.blocks.len() as u64);
                for &b in &e.blocks {
                    w.u64_fixed(b);
                }
                w.u64_fixed(e.cost_bits);
            }
        }
        w.into_bytes()
    }

    /// Decode a snapshot payload.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(CodecError(format!(
                "snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let next_id = r.varu64()?;
        let n = r.count("sessions")?;
        let mut sessions = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.varu64()?;
            let spec_json = r.str()?;
            let status = match r.u8()? {
                0 => SessionStatus::Queued,
                1 => SessionStatus::Running,
                2 => SessionStatus::Suspended,
                3 => SessionStatus::Done {
                    result_json: r.str()?,
                },
                4 => {
                    let result_json = match r.u8()? {
                        0 => None,
                        1 => Some(r.str()?),
                        t => return Err(CodecError(format!("bad option tag {t}"))),
                    };
                    SessionStatus::Cancelled { result_json }
                }
                5 => SessionStatus::Failed { error: r.str()? },
                t => return Err(CodecError(format!("unknown status tag {t}"))),
            };
            let checkpoint = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                t => return Err(CodecError(format!("bad option tag {t}"))),
            };
            let wall_clock_ms = r.f64_bits()?;
            let resumed = r.u8()? != 0;
            sessions.push(SessionRow {
                id,
                spec_json,
                status,
                checkpoint,
                wall_clock_ms,
                resumed,
            });
        }
        let nw = r.count("warm tables")?;
        let mut state = PersistState {
            next_id,
            sessions,
            warm: Vec::with_capacity(nw),
        };
        for _ in 0..nw {
            let key = r.str()?;
            let fingerprint = r.u64_fixed()?;
            let num_queries = u32::try_from(r.varu64()?)
                .map_err(|_| CodecError("num_queries exceeds u32".into()))?;
            let universe = u32::try_from(r.varu64()?)
                .map_err(|_| CodecError("universe exceeds u32".into()))?;
            let ne = r.count("warm entries")?;
            let table = state.warm_table_mut(&key, fingerprint);
            table.num_queries = num_queries;
            table.universe = universe;
            for _ in 0..ne {
                let query = u32::try_from(r.varu64()?)
                    .map_err(|_| CodecError("query id exceeds u32".into()))?;
                let nb = r.count("blocks")?;
                let mut blocks = Vec::with_capacity(nb);
                for _ in 0..nb {
                    blocks.push(r.u64_fixed()?);
                }
                let cost_bits = r.u64_fixed()?;
                table.push(WarmEntry {
                    query,
                    blocks,
                    cost_bits,
                });
            }
        }
        r.finish()?;
        Ok(state)
    }
}

/// Snapshot payload version; recovery refuses formats it cannot read
/// (and falls back to an older generation).
pub const SNAPSHOT_VERSION: u8 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::SessionSubmitted {
                id: 0,
                spec_json: "{\"k\":3}".into(),
            },
            Record::SessionRunning { id: 0 },
            Record::WarmBatch(WarmBatch {
                key: "tpch".into(),
                fingerprint: 0xfeed_beef,
                num_queries: 22,
                universe: 500,
                entries: vec![
                    WarmEntry {
                        query: 3,
                        blocks: vec![0b1010, 0, 1 << 63],
                        cost_bits: 1234.5f64.to_bits(),
                    },
                    WarmEntry {
                        query: 0,
                        blocks: vec![],
                        cost_bits: f64::NAN.to_bits(),
                    },
                ],
            }),
            Record::SessionSuspended {
                id: 0,
                checkpoint: "s-0.ckpt.json".into(),
                wall_clock_ms: 12.75,
            },
            Record::SessionResumed { id: 0 },
            Record::SessionDone {
                id: 0,
                result_json: "{\"improvement\":0.5}".into(),
            },
            Record::SessionCancelled {
                id: 1,
                result_json: None,
            },
            Record::SessionCancelled {
                id: 2,
                result_json: Some("{}".into()),
            },
            Record::SessionFailed {
                id: 3,
                error: "panicked".into(),
            },
            Record::WarmFlush,
        ]
    }

    #[test]
    fn record_codec_roundtrips() {
        for rec in sample_records() {
            let bytes = rec.encode();
            assert_eq!(Record::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn replay_folds_lifecycle_and_warm_batches() {
        let mut st = PersistState::default();
        st.apply(Record::SessionSubmitted {
            id: 7,
            spec_json: "{}".into(),
        });
        assert_eq!(st.next_id, 8);
        st.apply(Record::SessionRunning { id: 7 });
        st.apply(Record::SessionSuspended {
            id: 7,
            checkpoint: "s-7.ckpt.json".into(),
            wall_clock_ms: 3.5,
        });
        let row = &st.sessions[0];
        assert_eq!(row.status, SessionStatus::Suspended);
        assert_eq!(row.checkpoint.as_deref(), Some("s-7.ckpt.json"));
        st.apply(Record::SessionResumed { id: 7 });
        assert_eq!(st.sessions[0].status, SessionStatus::Queued);
        assert!(st.sessions[0].resumed);
        assert!(st.sessions[0].checkpoint.is_some(), "resume keeps the ckpt");
        st.apply(Record::SessionDone {
            id: 7,
            result_json: "{}".into(),
        });
        assert!(st.sessions[0].status.terminal());
        assert_eq!(st.sessions[0].checkpoint, None, "terminal clears the ckpt");

        let batch = WarmBatch {
            key: "w".into(),
            fingerprint: 1,
            num_queries: 2,
            universe: 64,
            entries: vec![WarmEntry {
                query: 1,
                blocks: vec![3],
                cost_bits: 9.0f64.to_bits(),
            }],
        };
        st.apply(Record::WarmBatch(batch.clone()));
        st.apply(Record::WarmBatch(batch));
        assert_eq!(st.warm_entries(), 1, "replayed duplicates fold away");
        st.apply(Record::WarmFlush);
        assert_eq!(st.warm_entries(), 0);
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let mut st = PersistState::default();
        for rec in sample_records() {
            st.apply(rec);
        }
        // Put a warm table back after the trailing flush so the snapshot
        // carries one, including a NaN-cost entry.
        st.apply(Record::WarmBatch(WarmBatch {
            key: "synth:3".into(),
            fingerprint: 42,
            num_queries: 5,
            universe: 128,
            entries: vec![WarmEntry {
                query: 4,
                blocks: vec![u64::MAX, 7],
                cost_bits: (-0.0f64).to_bits(),
            }],
        }));
        let bytes = st.encode();
        let back = PersistState::decode(&bytes).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn snapshot_rejects_unknown_version() {
        let mut bytes = PersistState::default().encode();
        bytes[0] = SNAPSHOT_VERSION + 1;
        assert!(PersistState::decode(&bytes).is_err());
    }
}
