//! Property tests for the persist crate's durability contract:
//!
//! * the record and snapshot codecs roundtrip **bit-identically** —
//!   including NaN-payload and `-0.0` costs, which travel as raw
//!   `f64::to_bits` patterns;
//! * recovery after arbitrary truncation or a byte flip always yields the
//!   longest valid prefix of what was appended, and reports the torn tail.

use ixtune_persist::{Durability, Persist, PersistState, Record, WarmBatch, WarmEntry};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per proptest case; removed by the case.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ixtune-persist-props-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Printable-ASCII strings, JSON punctuation included.
fn arb_str() -> impl Strategy<Value = String> {
    "[ -~]{0,24}"
}

fn arb_entry() -> impl Strategy<Value = WarmEntry> {
    (
        any::<u32>(),
        prop::collection::vec(any::<u64>(), 0..4),
        any::<u64>(),
    )
        .prop_map(|(query, blocks, cost_bits)| WarmEntry {
            query,
            blocks,
            cost_bits,
        })
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (
            arb_str(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(arb_entry(), 0..6),
        )
            .prop_map(|(key, fingerprint, num_queries, universe, entries)| {
                Record::WarmBatch(WarmBatch {
                    key,
                    fingerprint,
                    num_queries,
                    universe,
                    entries,
                })
            }),
        (0u32..1).prop_map(|_| Record::WarmFlush),
        (any::<u64>(), arb_str())
            .prop_map(|(id, spec_json)| Record::SessionSubmitted { id, spec_json }),
        any::<u64>().prop_map(|id| Record::SessionRunning { id }),
        (any::<u64>(), arb_str(), any::<u64>()).prop_map(|(id, checkpoint, bits)| {
            // Any bit pattern, NaN payloads included: the codec must not
            // canonicalize floats.
            Record::SessionSuspended {
                id,
                checkpoint,
                wall_clock_ms: f64::from_bits(bits),
            }
        }),
        any::<u64>().prop_map(|id| Record::SessionResumed { id }),
        (any::<u64>(), arb_str())
            .prop_map(|(id, result_json)| Record::SessionDone { id, result_json }),
        (any::<u64>(), any::<bool>(), arb_str()).prop_map(|(id, some, json)| {
            Record::SessionCancelled {
                id,
                result_json: some.then_some(json),
            }
        }),
        (any::<u64>(), arb_str()).prop_map(|(id, error)| Record::SessionFailed { id, error }),
    ]
}

/// Fold `records[..k]` into a fresh state.
fn fold(records: &[Record], k: usize) -> PersistState {
    let mut st = PersistState::default();
    for rec in &records[..k] {
        st.apply(rec.clone());
    }
    st
}

proptest! {
    /// Encoding is canonical: decode(encode(r)) re-encodes to the same
    /// bytes. (Byte equality rather than `==` so NaN costs and wall
    /// clocks are compared as bit patterns.)
    #[test]
    fn record_codec_roundtrips_bit_identically(rec in arb_record()) {
        let bytes = rec.encode();
        let back = Record::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(back.encode(), bytes);
    }

    /// The snapshot codec roundtrips the fold of any record sequence.
    #[test]
    fn snapshot_codec_roundtrips_any_fold(records in prop::collection::vec(arb_record(), 0..24)) {
        let st = fold(&records, records.len());
        let bytes = st.encode();
        let back = PersistState::decode(&bytes).expect("decode own snapshot");
        prop_assert_eq!(back.encode(), bytes);
        prop_assert_eq!(back.warm_entries(), st.warm_entries());
    }

    /// Warm costs recovered from disk carry the exact bit patterns that
    /// were appended — the warm store's bit-identity guarantee survives
    /// the WAL. Queries are made distinct so dedup keeps every entry.
    #[test]
    fn warm_costs_recover_bit_exact(
        bits in prop::collection::vec(any::<u64>(), 1..16),
        fingerprint in any::<u64>(),
    ) {
        let entries: Vec<WarmEntry> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| WarmEntry { query: i as u32, blocks: vec![i as u64], cost_bits: b })
            .collect();
        let dir = scratch_dir();
        {
            let (p, _, _) = Persist::open(&dir, Durability::Batch).unwrap();
            p.append(&Record::WarmBatch(WarmBatch {
                key: "w".into(),
                fingerprint,
                num_queries: bits.len() as u32,
                universe: 64,
                entries: entries.clone(),
            })).unwrap();
        }
        let (_p, state, _) = Persist::open(&dir, Durability::Batch).unwrap();
        let table = &state.warm.iter().find(|((k, f), _)| k == "w" && *f == fingerprint)
            .expect("warm table recovered").1;
        let recovered: Vec<u64> = table.entries.iter().map(|e| e.cost_bits).collect();
        prop_assert_eq!(recovered, bits);
        std::fs::remove_dir_all(dir).unwrap();
    }
}

proptest! {
    // Filesystem-heavy cases: fewer iterations, each opens a store and
    // fsyncs per append.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the WAL at ANY byte leaves recovery with exactly the
    /// records whose frames fit below the cut, the torn flag set iff
    /// partial-frame bytes were dropped, and a replayable store.
    #[test]
    fn truncation_at_any_byte_recovers_the_valid_prefix(
        records in prop::collection::vec(arb_record(), 1..10),
        cut_raw in any::<u64>(),
    ) {
        let dir = scratch_dir();
        // Cumulative frame end offsets; ends[k] = bytes after k records.
        let mut ends = vec![0u64];
        {
            let (p, _, _) = Persist::open(&dir, Durability::Always).unwrap();
            for rec in &records {
                ends.push(p.append(rec).unwrap().wal_bytes);
            }
        }
        let total = *ends.last().unwrap();
        let cut = cut_raw % (total + 1);
        let wal = dir.join("wal-0.log");
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let expect_k = ends.iter().filter(|&&e| e > 0 && e <= cut).count();
        let (_p, state, info) = Persist::open(&dir, Durability::Always).unwrap();
        prop_assert_eq!(info.wal_records, expect_k as u64);
        prop_assert_eq!(info.torn_tail, cut != ends[expect_k]);
        prop_assert_eq!(info.torn_bytes, cut - ends[expect_k]);
        prop_assert_eq!(state.encode(), fold(&records, expect_k).encode());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Flipping ANY byte of the WAL is caught by the frame CRC: recovery
    /// keeps the frames before the corrupted one, reports a torn tail,
    /// and the reopened store accepts new appends.
    #[test]
    fn byte_flip_anywhere_recovers_a_valid_prefix(
        records in prop::collection::vec(arb_record(), 1..8),
        pos_raw in any::<u64>(),
    ) {
        let dir = scratch_dir();
        let mut ends = vec![0u64];
        {
            let (p, _, _) = Persist::open(&dir, Durability::Always).unwrap();
            for rec in &records {
                ends.push(p.append(rec).unwrap().wal_bytes);
            }
        }
        let wal = dir.join("wal-0.log");
        let mut raw = std::fs::read(&wal).unwrap();
        let pos = (pos_raw % raw.len() as u64) as usize;
        raw[pos] ^= 0x01;
        std::fs::write(&wal, &raw).unwrap();

        // The frame containing `pos` (and everything after) is lost.
        let expect_k = ends.iter().filter(|&&e| e > 0 && e <= pos as u64).count();
        let (p, state, info) = Persist::open(&dir, Durability::Always).unwrap();
        prop_assert_eq!(info.wal_records, expect_k as u64);
        prop_assert!(info.torn_tail, "a flipped byte is always a tear");
        prop_assert_eq!(state.encode(), fold(&records, expect_k).encode());
        // The tail was truncated: the store keeps working.
        p.append(&Record::WarmFlush).unwrap();
        drop(p);
        let (_p, _, info) = Persist::open(&dir, Durability::Always).unwrap();
        prop_assert!(!info.torn_tail, "recovery healed the file");
        prop_assert_eq!(info.wal_records, expect_k as u64 + 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Compacting at an arbitrary point never changes the recovered
    /// state: snapshot + WAL tail ≡ pure WAL replay.
    #[test]
    fn compaction_point_is_invisible_to_recovery(
        records in prop::collection::vec(arb_record(), 1..10),
        at_raw in any::<u64>(),
    ) {
        let dir = scratch_dir();
        let at = (at_raw % (records.len() as u64 + 1)) as usize;
        {
            let (p, _, _) = Persist::open(&dir, Durability::Batch).unwrap();
            for (i, rec) in records.iter().enumerate() {
                if i == at {
                    p.compact().unwrap();
                }
                p.append(rec).unwrap();
            }
            if at == records.len() {
                p.compact().unwrap();
            }
        }
        let (_p, state, _) = Persist::open(&dir, Durability::Batch).unwrap();
        prop_assert_eq!(state.encode(), fold(&records, records.len()).encode());
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// Deterministic corner: an empty WAL file (created, never written, e.g.
/// killed before the first append) recovers to the empty state without a
/// torn-tail report.
#[test]
fn empty_wal_file_recovers_cleanly() {
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal-0.log"), b"").unwrap();
    let (_p, state, info) = Persist::open(&dir, Durability::Batch).unwrap();
    assert_eq!(info.wal_records, 0);
    assert!(!info.torn_tail);
    assert_eq!(state.encode(), PersistState::default().encode());
    std::fs::remove_dir_all(dir).unwrap();
}
