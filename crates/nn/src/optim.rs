//! First-order optimizers over an [`Mlp`]'s parameters.

use crate::mlp::Mlp;

/// A gradient-descent optimizer.
pub trait Optimizer {
    /// Apply one update from the network's accumulated gradients.
    fn step(&mut self, net: &mut Mlp);
}

/// Plain stochastic gradient descent.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f64,
}

impl Sgd {
    pub fn new(lr: f64) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp) {
        let lr = self.lr;
        net.visit_params(|p, g| *p -= lr * g);
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp) {
        let n = net.num_params();
        if self.m.len() != n {
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
        }
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let mut i = 0;
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params(|p, g| {
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mh = m[i] / bc1;
            let vh = v[i] / bc2;
            *p -= lr * mh / (vh.sqrt() + eps);
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_loss_net() -> Mlp {
        // 1→1 linear net: y = w x + b; fit y = 3x + 1.
        Mlp::new(&[1, 1], &mut StdRng::seed_from_u64(5))
    }

    fn train(opt: &mut dyn Optimizer, net: &mut Mlp, iters: usize) -> f64 {
        let data = [(-1.0f64, -2.0f64), (0.0, 1.0), (1.0, 4.0), (2.0, 7.0)];
        for _ in 0..iters {
            net.zero_grad();
            for (x, t) in &data {
                let cache = net.forward_cached(&[*x]);
                net.backward(&cache, &[cache.output()[0] - t]);
            }
            opt.step(net);
        }
        data.iter()
            .map(|(x, t)| (net.forward(&[*x])[0] - t).powi(2))
            .sum::<f64>()
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        let mut net = quadratic_loss_net();
        let mut opt = Sgd::new(0.05);
        let loss = train(&mut opt, &mut net, 500);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn adam_converges_on_linear_fit() {
        let mut net = quadratic_loss_net();
        let mut opt = Adam::new(0.05);
        let loss = train(&mut opt, &mut net, 500);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn adam_is_stateful_across_steps() {
        let mut net = quadratic_loss_net();
        let mut opt = Adam::new(0.01);
        let l1 = train(&mut opt, &mut net, 50);
        let l2 = train(&mut opt, &mut net, 200);
        assert!(l2 < l1);
    }
}
