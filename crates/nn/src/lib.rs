//! A minimal dense neural-network library.
//!
//! Just enough machinery for the paper's *No DBA* baseline (§7.2.2): a
//! multilayer perceptron with relu hidden layers trained by Adam on MSE —
//! the paper's adaptation uses "three fully connected layers, each with 96
//! neurons, and relu as the activation function", trained on CPU.
//!
//! * [`mlp`] — the network: forward pass, backprop, parameter updates;
//! * [`optim`] — SGD and Adam;
//! * [`replay`] — a fixed-capacity experience replay buffer.
//!
//! # Example
//!
//! ```
//! use ixtune_nn::{Adam, Mlp, Optimizer};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Fit y = 2x with a 1→8→1 relu network.
//! let mut net = Mlp::new(&[1, 8, 1], &mut StdRng::seed_from_u64(1));
//! let mut opt = Adam::new(0.02);
//! for _ in 0..500 {
//!     net.zero_grad();
//!     for x in [-1.0, 0.5, 1.0, 2.0] {
//!         let cache = net.forward_cached(&[x]);
//!         let d = [cache.output()[0] - 2.0 * x];
//!         net.backward(&cache, &d);
//!     }
//!     opt.step(&mut net);
//! }
//! assert!((net.forward(&[1.5])[0] - 3.0).abs() < 0.2);
//! ```

pub mod mlp;
pub mod optim;
pub mod replay;

pub use mlp::Mlp;
pub use optim::{Adam, Optimizer, Sgd};
pub use replay::ReplayBuffer;
