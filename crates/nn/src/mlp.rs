//! Multilayer perceptron with relu hidden activations and a linear output
//! layer, plus reverse-mode gradients.

use rand::rngs::StdRng;
use rand::RngExt;

/// Forward-pass cache: pre-activation and post-activation values per layer.
#[derive(Clone, Debug)]
pub struct Cache {
    /// `acts[0]` is the input; `acts[l+1]` is layer `l`'s output after its
    /// activation.
    acts: Vec<Vec<f64>>,
    /// Pre-activation values per layer (needed for the relu gradient).
    pre: Vec<Vec<f64>>,
}

impl Cache {
    /// The network output.
    pub fn output(&self) -> &[f64] {
        self.acts.last().expect("nonempty cache")
    }
}

/// A dense MLP. Layer `l` maps `dims[l] → dims[l+1]`; all layers except the
/// last apply relu.
#[derive(Clone, Debug)]
pub struct Mlp {
    dims: Vec<usize>,
    /// Row-major weights per layer: `w[l][o * in + i]`.
    weights: Vec<Vec<f64>>,
    biases: Vec<Vec<f64>>,
    grad_w: Vec<Vec<f64>>,
    grad_b: Vec<Vec<f64>>,
}

impl Mlp {
    /// He-initialized network with the given layer dimensions
    /// (e.g. `[input, 96, 96, 96, output]`).
    pub fn new(dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        let mut grad_w = Vec::new();
        let mut grad_b = Vec::new();
        for l in 0..dims.len() - 1 {
            let (fan_in, fan_out) = (dims[l], dims[l + 1]);
            let scale = (2.0 / fan_in as f64).sqrt();
            let w: Vec<f64> = (0..fan_in * fan_out)
                .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
                .collect();
            weights.push(w);
            biases.push(vec![0.0; fan_out]);
            grad_w.push(vec![0.0; fan_in * fan_out]);
            grad_b.push(vec![0.0; fan_out]);
        }
        Self {
            dims: dims.to_vec(),
            weights,
            biases,
            grad_w,
            grad_b,
        }
    }

    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    pub fn output_dim(&self) -> usize {
        *self.dims.last().unwrap()
    }

    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    pub fn num_params(&self) -> usize {
        self.weights.iter().map(Vec::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Forward pass with cached intermediates for backprop.
    pub fn forward_cached(&self, x: &[f64]) -> Cache {
        assert_eq!(x.len(), self.dims[0]);
        let mut acts = vec![x.to_vec()];
        let mut pre = Vec::new();
        for l in 0..self.num_layers() {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let input = &acts[l];
            let w = &self.weights[l];
            let mut z = self.biases[l].clone();
            for (o, zo) in z.iter_mut().enumerate() {
                let row = &w[o * fan_in..(o + 1) * fan_in];
                *zo += row.iter().zip(input).map(|(wi, xi)| wi * xi).sum::<f64>();
            }
            pre.push(z.clone());
            let last = l + 1 == self.num_layers();
            if !last {
                for v in z.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            let _ = fan_out;
            acts.push(z);
        }
        Cache { acts, pre }
    }

    /// Forward pass without caching.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_cached(x).acts.pop().unwrap()
    }

    /// Accumulate gradients for one example given `dL/d(output)`.
    pub fn backward(&mut self, cache: &Cache, d_out: &[f64]) {
        assert_eq!(d_out.len(), self.output_dim());
        let mut delta = d_out.to_vec();
        for l in (0..self.num_layers()).rev() {
            let fan_in = self.dims[l];
            // Apply relu' for hidden layers (output layer is linear).
            if l + 1 != self.num_layers() {
                for (d, &z) in delta.iter_mut().zip(&cache.pre[l]) {
                    if z <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            let input = &cache.acts[l];
            for (o, &d) in delta.iter().enumerate() {
                self.grad_b[l][o] += d;
                let row = &mut self.grad_w[l][o * fan_in..(o + 1) * fan_in];
                for (g, &xi) in row.iter_mut().zip(input) {
                    *g += d * xi;
                }
            }
            if l > 0 {
                let w = &self.weights[l];
                let mut prev = vec![0.0; fan_in];
                for (o, &d) in delta.iter().enumerate() {
                    let row = &w[o * fan_in..(o + 1) * fan_in];
                    for (p, &wi) in prev.iter_mut().zip(row) {
                        *p += d * wi;
                    }
                }
                delta = prev;
            }
        }
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        for g in self.grad_w.iter_mut().chain(self.grad_b.iter_mut()) {
            g.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Visit `(param, grad)` pairs mutably — the optimizer hook.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut f64, f64)) {
        for l in 0..self.weights.len() {
            for (w, &g) in self.weights[l].iter_mut().zip(&self.grad_w[l]) {
                f(w, g);
            }
            for (b, &g) in self.biases[l].iter_mut().zip(&self.grad_b[l]) {
                f(b, g);
            }
        }
    }

    /// Copy another network's parameters (target-network sync). Panics on
    /// architecture mismatch.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.dims, other.dims);
        self.weights.clone_from(&other.weights);
        self.biases.clone_from(&other.biases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn shapes_and_param_counts() {
        let net = Mlp::new(&[4, 8, 3], &mut rng());
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.num_layers(), 2);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        let y = net.forward(&[0.1, -0.2, 0.3, 0.0]);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut net = Mlp::new(&[3, 5, 2], &mut rng());
        let x = [0.5, -0.3, 0.8];
        let target = [0.2, -0.1];
        // Loss = 0.5 * Σ (y - t)^2, dL/dy = y - t.
        let loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            y.iter()
                .zip(&target)
                .map(|(a, b)| 0.5 * (a - b).powi(2))
                .sum()
        };
        net.zero_grad();
        let cache = net.forward_cached(&x);
        let d_out: Vec<f64> = cache
            .output()
            .iter()
            .zip(&target)
            .map(|(y, t)| y - t)
            .collect();
        net.backward(&cache, &d_out);

        // Check a sample of weights in each layer by finite differences.
        let eps = 1e-6;
        for l in 0..net.num_layers() {
            for wi in [0usize, 1, net.weights[l].len() - 1] {
                let analytic = net.grad_w[l][wi];
                let orig = net.weights[l][wi];
                net.weights[l][wi] = orig + eps;
                let hi = loss(&net);
                net.weights[l][wi] = orig - eps;
                let lo = loss(&net);
                net.weights[l][wi] = orig;
                let numeric = (hi - lo) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "layer {l} w{wi}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn learns_a_toy_function() {
        // Fit y = [x0 XOR x1] on {0,1}^2, the classic non-linear check.
        let mut net = Mlp::new(&[2, 16, 1], &mut rng());
        let mut opt = Adam::new(0.01);
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..2_000 {
            net.zero_grad();
            for (x, t) in &data {
                let cache = net.forward_cached(x);
                let d = [cache.output()[0] - t];
                net.backward(&cache, &d);
            }
            opt.step(&mut net);
        }
        for (x, t) in &data {
            let y = net.forward(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn target_network_copy() {
        let mut a = Mlp::new(&[3, 4, 2], &mut rng());
        let b = Mlp::new(&[3, 4, 2], &mut StdRng::seed_from_u64(99));
        let x = [1.0, 2.0, 3.0];
        assert_ne!(a.forward(&x), b.forward(&x));
        a.copy_params_from(&b);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn zero_grad_resets() {
        let mut net = Mlp::new(&[2, 3, 1], &mut rng());
        let cache = net.forward_cached(&[1.0, -1.0]);
        net.backward(&cache, &[1.0]);
        // The output-layer bias gradient equals d_out, so it is nonzero
        // even when the relu units happen to be dark for this input.
        let any_nonzero = net
            .grad_w
            .iter()
            .chain(net.grad_b.iter())
            .flatten()
            .any(|&g| g != 0.0);
        assert!(any_nonzero);
        net.zero_grad();
        assert!(net.grad_w.iter().flatten().all(|&g| g == 0.0));
        assert!(net.grad_b.iter().flatten().all(|&g| g == 0.0));
    }
}
