//! Fixed-capacity experience replay with uniform sampling.

use rand::rngs::StdRng;
use rand::RngExt;

/// A ring-buffer replay memory.
#[derive(Clone, Debug)]
pub struct ReplayBuffer<T> {
    items: Vec<T>,
    capacity: usize,
    next: usize,
}

impl<T: Clone> ReplayBuffer<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Insert, overwriting the oldest entry when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.next] = item;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sample `n` items uniformly with replacement.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<&T> {
        (0..n)
            .filter_map(|_| {
                if self.items.is_empty() {
                    None
                } else {
                    Some(&self.items[rng.random_range(0..self.items.len())])
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn push_and_wrap() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(i);
        }
        assert_eq!(b.len(), 3);
        // 0,1 overwritten by 3,4.
        let mut items: Vec<i32> = b.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![2, 3, 4]);
    }

    #[test]
    fn sample_respects_contents() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(i);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = b.sample(100, &mut rng);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&&x| (0..10).contains(&x)));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b: ReplayBuffer<u8> = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(b.sample(5, &mut rng).is_empty());
    }
}
