//! A DTA-style anytime tuner (Chaudhuri & Narasayya \[21\], §7.3 of the
//! paper).
//!
//! DTA's architecture is time-sliced: a cost-based priority queue orders
//! queries by how expensive they are; each slice consumes the next batch of
//! queries, tunes them, and refreshes the recommendation based on *the
//! queries tuned so far*. The paper attributes DTA's non-monotonic behavior
//! to exactly this: the tool can sink its entire budget into one costly
//! query, or refresh the recommendation from a partial view of the
//! workload. This simulator reproduces that mechanism — per-slice greedy
//! tuning of the batch, global greedy refinement over winners so far, FCFS
//! budget — on top of the same what-if client as every other tuner. A
//! storage constraint (3× database size by default in the experiments)
//! is honored through [`Constraints`](ixtune_core::tuner::Constraints).
//!
//! Simplifications versus the real tool: index merging and "table subset"
//! selection are approximated by restricting each slice to candidates on
//! tables its batch references; anytime checkpoint tuning of the
//! recommendation quality is the per-slice refresh.

use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_core::budget::MeteredWhatIf;
use ixtune_core::greedy::greedy_enumerate;
use ixtune_core::matrix::Layout;
use ixtune_core::tuner::{Tuner, TuningContext, TuningRequest, TuningResult};

/// The DTA-style baseline.
#[derive(Clone, Copy, Debug)]
pub struct DtaTuner {
    /// Number of time slices the session is divided into.
    pub slices: usize,
    /// Cap on the accumulated winner pool considered by the global
    /// refresh — DTA's "table subset" style pruning keeps the refresh
    /// tractable on large workloads.
    pub max_pool: usize,
}

impl Default for DtaTuner {
    fn default() -> Self {
        Self {
            slices: 8,
            max_pool: 400,
        }
    }
}

impl DtaTuner {
    /// The experiments map the paper's tuning-time budget to a what-if call
    /// budget by dividing through the average call latency — the same
    /// internal mapping the paper suggests in §8.
    pub fn calls_for_time(minutes: f64, avg_call_seconds: f64) -> usize {
        ((minutes * 60.0) / avg_call_seconds.max(1e-6)).round() as usize
    }
}

impl Tuner for DtaTuner {
    fn name(&self) -> String {
        "DTA".into()
    }

    fn tune(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> TuningResult {
        let constraints = &req.constraints;
        let m = ctx.num_queries();
        let mut mw = MeteredWhatIf::new(ctx.opt, req.budget);

        // Cost-based priority queue: most expensive queries first.
        let mut order: Vec<QueryId> = (0..m).map(QueryId::from).collect();
        order.sort_by(|a, b| mw.empty_cost(*b).total_cmp(&mw.empty_cost(*a)));

        let batch = m.div_ceil(self.slices.max(1)).max(1);
        let mut seen: Vec<QueryId> = Vec::new();
        let mut pool: Vec<IndexId> = Vec::new();
        let mut recommendation = IndexSet::empty(ctx.universe());

        for chunk in order.chunks(batch) {
            // --- Tune this slice's queries individually ---
            for &q in chunk {
                seen.push(q);
                let cands = ctx.cands.for_query(q);
                let best = greedy_enumerate(ctx, constraints, cands, |c| mw.cost_fcfs(q, c));
                for id in best.iter() {
                    if pool.len() < self.max_pool && !pool.contains(&id) {
                        pool.push(id);
                    }
                }
            }
            // --- Refresh the recommendation over the queries seen so far ---
            recommendation = greedy_enumerate(ctx, constraints, &pool, |c| {
                seen.iter().map(|&q| mw.cost_fcfs(q, c)).sum()
            });
            if mw.meter().exhausted() {
                // Anytime behavior: the current recommendation stands, even
                // though it reflects only a prefix of the workload.
                break;
            }
        }

        let used = mw.meter().used();
        let telemetry = mw.telemetry();
        TuningResult::evaluate(
            self.name(),
            ctx,
            recommendation,
            used,
            Layout::new(mw.into_trace()),
        )
        .with_telemetry(telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_core::tuner::Constraints;
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::{synth, tpch};

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn respects_budget_and_constraints() {
        let (opt, cands) = setup(1);
        let ctx = TuningContext::new(&opt, &cands);
        for budget in [0usize, 10, 200] {
            let r = DtaTuner::default().tune(&ctx, &TuningRequest::cardinality(3, budget));
            assert!(r.calls_used <= budget);
            assert!(r.config.len() <= 3);
        }
    }

    #[test]
    fn storage_constraint_respected() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let limit = 3 * opt.schema().database_size_bytes();
        let req = TuningRequest::new(Constraints::with_storage(10, limit), 2_000);
        let r = DtaTuner::default().tune(&ctx, &req);
        assert!(opt.config_size_bytes(&r.config) <= limit);
    }

    #[test]
    fn improves_tpch_with_ample_budget() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let r = DtaTuner::default().tune(&ctx, &TuningRequest::cardinality(10, 20_000));
        assert!(r.improvement > 0.1, "got {}", r.improvement);
    }

    #[test]
    fn expensive_queries_are_tuned_first() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        // Tiny budget: only the first slice runs.
        let r = DtaTuner::default().tune(&ctx, &TuningRequest::cardinality(5, 15));
        let mw = MeteredWhatIf::new(&opt, 0);
        let max_cost = (0..ctx.num_queries())
            .map(|q| mw.empty_cost(QueryId::from(q)))
            .fold(0.0f64, f64::max);
        // The first budgeted call must be for (one of) the most expensive
        // queries.
        if let Some((q, _)) = r.layout.cells().first() {
            assert!(mw.empty_cost(*q) >= max_cost * 0.99);
        }
    }

    #[test]
    fn time_to_calls_mapping() {
        assert_eq!(DtaTuner::calls_for_time(10.0, 1.0), 600);
        assert_eq!(DtaTuner::calls_for_time(1.0, 0.5), 120);
    }
}
