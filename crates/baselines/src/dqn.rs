//! No DBA (Sharma et al. \[57\]), adapted per §7.2.2 of the paper:
//! deep Q-learning over one-hot configuration states with what-if rewards,
//! a 3×96-relu MLP, CPU-only training, run in budgeted rounds.
//!
//! Each round is one episode: starting from the empty configuration the
//! agent adds `K` indexes (ε-greedy over the Q-network's masked outputs),
//! then the chosen configuration is evaluated with one what-if call per
//! query; the observed improvement is the terminal reward. Transitions go
//! to a replay buffer and the network trains on sampled minibatches with a
//! periodically-synced target network.

use ixtune_common::rng::derive;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_core::budget::MeteredWhatIf;
use ixtune_core::matrix::Layout;
use ixtune_core::tuner::{Tuner, TuningContext, TuningRequest, TuningResult};
use ixtune_nn::{Adam, Mlp, Optimizer, ReplayBuffer};
use rand::RngExt;

/// One stored transition.
#[derive(Clone, Debug)]
struct Transition {
    state: Vec<f64>,
    action: usize,
    reward: f64,
    next_state: Vec<f64>,
    terminal: bool,
}

/// Hyperparameters for the DQN baseline.
#[derive(Clone, Copy, Debug)]
pub struct NoDba {
    pub hidden: usize,
    pub gamma: f64,
    pub lr: f64,
    pub epsilon_start: f64,
    pub epsilon_end: f64,
    /// Rounds over which ε anneals linearly.
    pub epsilon_decay_rounds: usize,
    pub batch_size: usize,
    pub replay_capacity: usize,
    /// Target-network sync interval (in training steps).
    pub target_sync: usize,
}

impl Default for NoDba {
    fn default() -> Self {
        Self {
            hidden: 96,
            gamma: 0.95,
            lr: 1e-3,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_rounds: 30,
            batch_size: 32,
            replay_capacity: 10_000,
            target_sync: 20,
        }
    }
}

fn one_hot(config: &IndexSet) -> Vec<f64> {
    let mut v = vec![0.0; config.universe()];
    for id in config.iter() {
        v[id.index()] = 1.0;
    }
    v
}

impl NoDba {
    /// Tune and also return the best-so-far improvement after each round
    /// (for the convergence figures).
    pub fn tune_traced(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
    ) -> (TuningResult, Vec<f64>) {
        let constraints = &req.constraints;
        let n = ctx.universe();
        let m = ctx.num_queries();
        let mut rng = derive(req.seed, "no-dba");
        let mut mw = MeteredWhatIf::new(ctx.opt, req.budget);
        let base = mw.empty_workload_cost();

        // The paper's architecture: three hidden layers of 96 relu units.
        let dims = [n, self.hidden, self.hidden, self.hidden, n];
        let mut qnet = Mlp::new(&dims, &mut rng);
        let mut target = qnet.clone();
        let mut opt = Adam::new(self.lr);
        let mut replay: ReplayBuffer<Transition> = ReplayBuffer::new(self.replay_capacity);
        let mut train_steps = 0usize;

        let mut best: Option<(IndexSet, f64)> = None;
        let mut trace: Vec<f64> = Vec::new();
        let mut round = 0usize;

        loop {
            if mw.meter().remaining() < m.max(1) {
                break;
            }
            let eps = {
                let t = (round as f64 / self.epsilon_decay_rounds.max(1) as f64).min(1.0);
                self.epsilon_start + t * (self.epsilon_end - self.epsilon_start)
            };

            // --- Episode: build a configuration with K ε-greedy actions ---
            let mut config = IndexSet::empty(n);
            let mut steps: Vec<(Vec<f64>, usize)> = Vec::new();
            while config.len() < constraints.k {
                let state = one_hot(&config);
                let filter = constraints.extension_filter(ctx, &config);
                let admissible: Vec<usize> = (0..n)
                    .filter(|&i| {
                        !config.contains(IndexId::from(i)) && filter.admits(ctx, IndexId::from(i))
                    })
                    .collect();
                if admissible.is_empty() {
                    break;
                }
                let action = if rng.random::<f64>() < eps {
                    admissible[rng.random_range(0..admissible.len())]
                } else {
                    let qvals = qnet.forward(&state);
                    *admissible
                        .iter()
                        .max_by(|&&a, &&b| qvals[a].total_cmp(&qvals[b]))
                        .unwrap()
                };
                steps.push((state, action));
                config.insert(IndexId::from(action));
            }

            // --- Evaluate the configuration (m budgeted what-if calls) ---
            let mut cost = 0.0;
            let mut aborted = false;
            for q in 0..m {
                match mw.what_if(QueryId::from(q), &config) {
                    Some(c) => cost += c,
                    None => {
                        aborted = true;
                        break;
                    }
                }
            }
            if aborted {
                break;
            }
            let improvement = if base > 0.0 {
                (1.0 - cost / base).max(0.0)
            } else {
                0.0
            };

            // --- Store transitions: terminal reward only ---
            let mut running = IndexSet::empty(n);
            for (i, (state, action)) in steps.iter().enumerate() {
                running.insert(IndexId::from(*action));
                let terminal = i + 1 == steps.len();
                replay.push(Transition {
                    state: state.clone(),
                    action: *action,
                    reward: if terminal { improvement } else { 0.0 },
                    next_state: one_hot(&running),
                    terminal,
                });
            }

            // --- Train on minibatches ---
            if replay.len() >= self.batch_size {
                qnet.zero_grad();
                let batch = replay.sample(self.batch_size, &mut rng);
                for t in &batch {
                    let target_q = if t.terminal {
                        t.reward
                    } else {
                        let next = target.forward(&t.next_state);
                        let max_next = next
                            .iter()
                            .zip(t.next_state.iter())
                            .filter(|(_, &occupied)| occupied == 0.0)
                            .map(|(q, _)| *q)
                            .fold(f64::NEG_INFINITY, f64::max);
                        t.reward + self.gamma * max_next.max(0.0)
                    };
                    let cache = qnet.forward_cached(&t.state);
                    let mut d = vec![0.0; n];
                    d[t.action] = (cache.output()[t.action] - target_q) / self.batch_size as f64;
                    qnet.backward(&cache, &d);
                }
                opt.step(&mut qnet);
                train_steps += 1;
                if train_steps.is_multiple_of(self.target_sync) {
                    target.copy_params_from(&qnet);
                }
            }

            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((config, cost));
            }
            let best_imp = best
                .as_ref()
                .map(|(_, c)| {
                    if base > 0.0 {
                        (1.0 - c / base).max(0.0)
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0);
            trace.push(best_imp);
            round += 1;
        }

        let config = best.map(|(c, _)| c).unwrap_or_else(|| IndexSet::empty(n));
        let used = mw.meter().used();
        let telemetry = mw.telemetry();
        let result =
            TuningResult::evaluate(self.name(), ctx, config, used, Layout::new(mw.into_trace()))
                .with_telemetry(telemetry);
        (result, trace)
    }
}

impl Tuner for NoDba {
    fn name(&self) -> String {
        "No DBA".into()
    }

    fn is_stochastic(&self) -> bool {
        true
    }

    fn tune(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> TuningResult {
        self.tune_traced(ctx, req).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::{synth, tpch};

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    fn small() -> NoDba {
        NoDba {
            hidden: 16,
            ..NoDba::default()
        }
    }

    #[test]
    fn respects_budget_and_k() {
        let (opt, cands) = setup(1);
        let ctx = TuningContext::new(&opt, &cands);
        for budget in [0usize, 5, 60] {
            let r = small().tune(&ctx, &TuningRequest::cardinality(2, budget).with_seed(3));
            assert!(r.calls_used <= budget);
            assert!(r.config.len() <= 2);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (opt, cands) = setup(2);
        let ctx = TuningContext::new(&opt, &cands);
        let req = TuningRequest::cardinality(2, 40).with_seed(11);
        let a = small().tune(&ctx, &req);
        let b = small().tune(&ctx, &req);
        assert_eq!(a.config, b.config);
    }

    #[test]
    fn trace_grows_with_rounds_and_is_monotone() {
        let (opt, cands) = setup(3);
        let ctx = TuningContext::new(&opt, &cands);
        let m = ctx.num_queries();
        let (_, trace) =
            small().tune_traced(&ctx, &TuningRequest::cardinality(2, m * 5).with_seed(4));
        assert!(trace.len() >= 4);
        assert!(trace.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn improves_on_tpch_with_large_budget() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let r = small().tune(&ctx, &TuningRequest::cardinality(5, 1_000).with_seed(6));
        // Even random exploration should find *some* improving config on
        // TPC-H across ~45 rounds.
        assert!(r.improvement >= 0.0);
        assert!(r.calls_used <= 1_000);
    }
}
