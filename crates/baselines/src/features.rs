//! Index featurization for the DBA-bandits baseline.
//!
//! The contextual combinatorial bandit scores arms (candidate indexes) by a
//! linear function of their features. The paper notes (§7.2.1) that DBA
//! bandits' featurization helps it find a reasonable initial configuration
//! quickly; we use a compact, schema-derived feature vector per index.

use ixtune_candidates::CandidateSet;
use ixtune_common::{IndexId, QueryId};
use ixtune_workload::{Schema, Workload};

/// Number of features per index.
pub const DIM: usize = 8;

/// Feature vector of one candidate index.
///
/// Components: bias, log-normalized table size, key-column count, include
/// count, leading-key selectivity proxy, number of queries it was generated
/// for (normalized), covering-ish width ratio, leading-key-is-join hint.
pub fn featurize(
    schema: &Schema,
    workload: &Workload,
    cands: &CandidateSet,
    id: IndexId,
) -> [f64; DIM] {
    let idx = &cands.indexes[id.index()];
    let table = schema.table(idx.table);
    let max_log_rows = schema
        .iter()
        .map(|(_, t)| (t.rows as f64).ln())
        .fold(1.0f64, f64::max);
    let log_rows = (table.rows as f64).ln() / max_log_rows;

    let lead_ndv = idx
        .keys
        .first()
        .map(|&c| table.col(c).ndv as f64)
        .unwrap_or(1.0);
    let selectivity_proxy = (lead_ndv.ln().max(0.0)) / (table.rows as f64).ln().max(1.0);

    let num_queries = (0..workload.len())
        .filter(|&q| cands.for_query(QueryId::from(q)).contains(&id))
        .count() as f64;
    let q_frac = num_queries / workload.len().max(1) as f64;

    let width: u32 = idx.all_columns().map(|c| table.col(c).ty.width()).sum();
    let width_ratio = width as f64 / table.row_width() as f64;

    let lead_is_joinish = idx
        .keys
        .first()
        .map(|&c| {
            workload.queries.iter().any(|q| {
                q.joins.iter().any(|j| {
                    (q.table_of(j.left.scan) == idx.table && j.left.column == c)
                        || (q.table_of(j.right.scan) == idx.table && j.right.column == c)
                })
            })
        })
        .unwrap_or(false);

    [
        1.0,
        log_rows,
        idx.keys.len() as f64 / 4.0,
        idx.includes.len() as f64 / 8.0,
        selectivity_proxy,
        q_frac,
        width_ratio.min(1.0),
        if lead_is_joinish { 1.0 } else { 0.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::generate_default;
    use ixtune_workload::gen::tpch;

    #[test]
    fn features_are_bounded_and_sized() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        for i in 0..cands.len() {
            let f = featurize(&inst.schema, &inst.workload, &cands, IndexId::from(i));
            assert_eq!(f.len(), DIM);
            assert_eq!(f[0], 1.0);
            for (j, v) in f.iter().enumerate() {
                assert!(v.is_finite(), "feature {j} not finite");
                assert!((-0.01..=2.0).contains(v), "feature {j} = {v}");
            }
        }
    }

    #[test]
    fn bigger_tables_score_bigger_size_feature() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let lineitem = inst.schema.table_by_name("lineitem").unwrap();
        let nation = inst.schema.table_by_name("nation").unwrap();
        let on = |t| {
            (0..cands.len())
                .map(IndexId::from)
                .find(|id| cands.indexes[id.index()].table == t)
        };
        if let (Some(li), Some(na)) = (on(lineitem), on(nation)) {
            let f_li = featurize(&inst.schema, &inst.workload, &cands, li);
            let f_na = featurize(&inst.schema, &inst.workload, &cands, na);
            assert!(f_li[1] > f_na[1]);
        }
    }

    #[test]
    fn join_hint_flags_join_indexes() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let any_join = (0..cands.len())
            .map(IndexId::from)
            .any(|id| featurize(&inst.schema, &inst.workload, &cands, id)[7] == 1.0);
        assert!(any_join, "TPC-H must have join-keyed candidates");
    }
}
