//! Baseline tuners the paper compares against (§7.2–§7.3):
//!
//! * [`bandit`] — *DBA bandits*: a C2UCB-style contextual combinatorial
//!   linear bandit with index featurization ([`features`]);
//! * [`dqn`] — *No DBA*: deep Q-learning over one-hot configuration states
//!   (built on `ixtune-nn`);
//! * [`dta`] — a DTA-style time-sliced anytime tuner.
//!
//! All three implement the same [`Tuner`](ixtune_core::Tuner) trait as the
//! greedy variants and MCTS, consume the same metered what-if client, and
//! are evaluated by the same oracle.

pub mod bandit;
pub mod dqn;
pub mod dta;
pub mod features;

pub use bandit::DbaBandits;
pub use dqn::NoDba;
pub use dta::DtaTuner;
