//! DBA bandits (Perera et al. \[47\]), adapted to offline budgeted tuning
//! exactly as §7.2.1 of the paper describes: a C2UCB-style contextual
//! combinatorial linear bandit over candidate indexes, run in rounds. Each
//! round greedily selects a super-arm of up to `K` indexes by UCB score,
//! then spends one what-if call per workload query to observe the chosen
//! configuration's cost and update the linear model.

use crate::features::{featurize, DIM};
use ixtune_common::rng::derive;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_core::budget::MeteredWhatIf;
use ixtune_core::matrix::Layout;
use ixtune_core::tuner::{Tuner, TuningContext, TuningRequest, TuningResult};
use rand::RngExt;

/// Ridge-regularized linear bandit state: `A = λI + Σ x xᵀ`, `b = Σ r x`.
struct LinModel {
    a: [[f64; DIM]; DIM],
    b: [f64; DIM],
}

impl LinModel {
    fn new(ridge: f64) -> Self {
        let mut a = [[0.0; DIM]; DIM];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = ridge;
        }
        Self { a, b: [0.0; DIM] }
    }

    /// Solve `A θ = b` by Gaussian elimination with partial pivoting
    /// (DIM is tiny, so this is cheap and dependency-free).
    fn theta(&self) -> [f64; DIM] {
        solve(self.a, self.b)
    }

    /// `xᵀ A⁻¹ x` via one solve.
    fn mahalanobis(&self, x: &[f64; DIM]) -> f64 {
        let y = solve(self.a, *x);
        x.iter().zip(&y).map(|(a, b)| a * b).sum::<f64>().max(0.0)
    }

    fn update(&mut self, x: &[f64; DIM], reward: f64) {
        for i in 0..DIM {
            for j in 0..DIM {
                self.a[i][j] += x[i] * x[j];
            }
            self.b[i] += reward * x[i];
        }
    }
}

fn solve(mut a: [[f64; DIM]; DIM], mut b: [f64; DIM]) -> [f64; DIM] {
    for col in 0..DIM {
        // Pivot.
        let pivot = (col..DIM)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap();
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue;
        }
        for row in col + 1..DIM {
            let f = a[row][col] / diag;
            let (head, tail) = a.split_at_mut(row);
            for (x, &base) in tail[0][col..].iter_mut().zip(&head[col][col..]) {
                *x -= f * base;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; DIM];
    for row in (0..DIM).rev() {
        let mut s = b[row];
        for k in row + 1..DIM {
            s -= a[row][k] * x[k];
        }
        x[row] = if a[row][row].abs() < 1e-12 {
            0.0
        } else {
            s / a[row][row]
        };
    }
    x
}

/// The DBA-bandits tuner.
#[derive(Clone, Copy, Debug)]
pub struct DbaBandits {
    /// UCB exploration weight α.
    pub alpha: f64,
    /// Ridge regularization λ.
    pub ridge: f64,
}

impl Default for DbaBandits {
    fn default() -> Self {
        Self {
            alpha: 0.6,
            ridge: 1.0,
        }
    }
}

impl DbaBandits {
    /// Round trace: the best-so-far improvement after each round (the
    /// paper's Figure 14/21 convergence curves).
    pub fn tune_traced(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
    ) -> (TuningResult, Vec<f64>) {
        let constraints = &req.constraints;
        let n = ctx.universe();
        let m = ctx.num_queries();
        let mut rng = derive(req.seed, "dba-bandits");
        let mut mw = MeteredWhatIf::new(ctx.opt, req.budget);
        let mut model = LinModel::new(self.ridge);

        let features: Vec<[f64; DIM]> = (0..n)
            .map(|i| {
                featurize(
                    ctx.opt.schema(),
                    ctx.opt.workload(),
                    ctx.cands,
                    IndexId::from(i),
                )
            })
            .collect();

        let mut best: Option<(IndexSet, f64)> = None;
        let mut trace: Vec<f64> = Vec::new();
        let base = mw.empty_workload_cost();

        loop {
            if mw.meter().remaining() < m.max(1) {
                break; // not enough budget for another full round
            }
            // Select a super-arm greedily by UCB score.
            let theta = model.theta();
            let mut config = IndexSet::empty(n);
            let mut scored: Vec<(f64, IndexId)> = (0..n)
                .map(|i| {
                    let x = &features[i];
                    let est: f64 = theta.iter().zip(x).map(|(t, xi)| t * xi).sum();
                    let bonus = self.alpha * model.mahalanobis(x).sqrt();
                    // Tiny deterministic jitter breaks ties across rounds.
                    (est + bonus + 1e-9 * rng.random::<f64>(), IndexId::from(i))
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            for (_, id) in &scored {
                if config.len() >= constraints.k {
                    break;
                }
                if constraints.extension_filter(ctx, &config).admits(ctx, *id) {
                    config.insert(*id);
                }
            }

            // Observe: one what-if call per query for this configuration.
            let mut cost = 0.0;
            let mut aborted = false;
            for q in 0..m {
                match mw.what_if(QueryId::from(q), &config) {
                    Some(c) => cost += c,
                    None => {
                        aborted = true;
                        break;
                    }
                }
            }
            if aborted {
                break;
            }
            let improvement = if base > 0.0 {
                (1.0 - cost / base).max(0.0)
            } else {
                0.0
            };

            // Per-arm reward: the configuration's improvement shared across
            // the selected arms (the adaptation of [47]'s per-arm rewards to
            // what-if observations).
            let k = config.len().max(1) as f64;
            for id in config.iter() {
                model.update(&features[id.index()], improvement / k);
            }

            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((config.clone(), cost));
            }
            let best_imp = best
                .as_ref()
                .map(|(_, c)| {
                    if base > 0.0 {
                        (1.0 - c / base).max(0.0)
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0);
            trace.push(best_imp);
        }

        let config = best.map(|(c, _)| c).unwrap_or_else(|| IndexSet::empty(n));
        let used = mw.meter().used();
        let telemetry = mw.telemetry();
        let result =
            TuningResult::evaluate(self.name(), ctx, config, used, Layout::new(mw.into_trace()))
                .with_telemetry(telemetry);
        (result, trace)
    }
}

impl Tuner for DbaBandits {
    fn name(&self) -> String {
        "DBA Bandits".into()
    }

    fn is_stochastic(&self) -> bool {
        true
    }

    fn tune(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> TuningResult {
        self.tune_traced(ctx, req).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::{synth, tpch};

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn solver_inverts_diagonal_system() {
        let mut a = [[0.0; DIM]; DIM];
        let mut b = [0.0; DIM];
        for i in 0..DIM {
            a[i][i] = (i + 1) as f64;
            b[i] = 2.0 * (i + 1) as f64;
        }
        let x = solve(a, b);
        for v in x {
            assert!((v - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn respects_budget_and_k() {
        let (opt, cands) = setup(1);
        let ctx = TuningContext::new(&opt, &cands);
        for budget in [0usize, 3, 40] {
            let r = DbaBandits::default()
                .tune(&ctx, &TuningRequest::cardinality(2, budget).with_seed(5));
            assert!(r.calls_used <= budget);
            assert!(r.config.len() <= 2);
        }
    }

    #[test]
    fn rounds_consume_m_calls_each() {
        let (opt, cands) = setup(2);
        let ctx = TuningContext::new(&opt, &cands);
        let m = ctx.num_queries();
        let budget = m * 3 + 1;
        let (r, trace) = DbaBandits::default()
            .tune_traced(&ctx, &TuningRequest::cardinality(2, budget).with_seed(5));
        // Some rounds may hit cached entries (free), so the round count is
        // at least the budget-implied floor.
        assert!(trace.len() >= 3, "rounds {} budget {budget}", trace.len());
        assert!(r.calls_used <= budget);
    }

    #[test]
    fn trace_is_monotone_best_so_far() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let (_, trace) = DbaBandits::default()
            .tune_traced(&ctx, &TuningRequest::cardinality(5, 500).with_seed(3));
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn finds_positive_improvement_on_tpch() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let r =
            DbaBandits::default().tune(&ctx, &TuningRequest::cardinality(10, 1_000).with_seed(7));
        assert!(r.improvement > 0.0, "got {}", r.improvement);
    }
}
