//! Property tests of the simulated optimizer on a real benchmark schema:
//! monotonicity, determinism, and the improvement band on TPC-H.

use ixtune_candidates::generate_default;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_optimizer::{CostModel, SimulatedOptimizer, WhatIfOptimizer};
use ixtune_workload::gen::tpch;
use proptest::prelude::*;
use std::sync::OnceLock;

fn optimizer() -> &'static SimulatedOptimizer {
    static OPT: OnceLock<SimulatedOptimizer> = OnceLock::new();
    OPT.get_or_init(|| {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default())
    })
}

fn config_from(seed: u64, size: usize) -> IndexSet {
    let opt = optimizer();
    let n = opt.num_candidates();
    let mut s = seed | 1;
    let mut cfg = IndexSet::empty(n);
    for _ in 0..size {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        cfg.insert(IndexId::from((s >> 33) as usize % n));
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Assumption 1 on the real TPC-H schema: supersets never cost more.
    #[test]
    fn tpch_costs_are_monotone(seed in any::<u64>(), size in 0usize..12, q in 0usize..22) {
        let opt = optimizer();
        let base = config_from(seed, size);
        let bigger = {
            let mut b = base.clone();
            b.union_with(&config_from(seed.wrapping_add(1), 3));
            b
        };
        let q = QueryId::from(q);
        prop_assert!(opt.what_if_cost(q, &bigger) <= opt.what_if_cost(q, &base) + 1e-6);
    }

    /// The what-if API is a pure function of (query, configuration).
    #[test]
    fn what_if_is_deterministic(seed in any::<u64>(), size in 0usize..8, q in 0usize..22) {
        let opt = optimizer();
        let cfg = config_from(seed, size);
        let q = QueryId::from(q);
        prop_assert_eq!(opt.what_if_cost(q, &cfg), opt.what_if_cost(q, &cfg));
    }

    /// Improvements always land in [0, 1): indexes help, never to 100%.
    #[test]
    fn improvement_fraction_is_sane(seed in any::<u64>(), size in 0usize..16) {
        let opt = optimizer();
        let n = opt.num_candidates();
        let cfg = config_from(seed, size);
        let base = opt.workload_cost(&IndexSet::empty(n));
        let cost = opt.workload_cost(&cfg);
        let imp = 1.0 - cost / base;
        prop_assert!((0.0..1.0).contains(&imp), "improvement {imp}");
    }

    /// Index sizes are positive and additive for disjoint configurations.
    #[test]
    fn config_sizes_are_additive(seed in any::<u64>()) {
        let opt = optimizer();
        let n = opt.num_candidates();
        let a = IndexSet::singleton(n, IndexId::from((seed as usize) % n));
        let b_id = IndexId::from((seed as usize + 1) % n);
        prop_assume!(!a.contains(b_id));
        let ab = a.with(b_id);
        let sum = opt.config_size_bytes(&a) + opt.config_size_bytes(&IndexSet::singleton(n, b_id));
        prop_assert_eq!(opt.config_size_bytes(&ab), sum);
    }
}

#[test]
fn full_candidate_set_gives_substantial_tpch_improvement() {
    let opt = optimizer();
    let n = opt.num_candidates();
    let base = opt.workload_cost(&IndexSet::empty(n));
    let full = opt.workload_cost(&IndexSet::full(n));
    let imp = 1.0 - full / base;
    assert!(
        imp > 0.5,
        "the TPC-H candidate universe should cut most of the cost, got {imp:.2}"
    );
}
