//! Compiled what-if kernel: per-query plan tables evaluated allocation-free.
//!
//! `CostModel::query_cost_with` re-derives a lot of configuration-
//! *independent* structure on every call: join-graph components, sort
//! columns (cloned into a fresh `Vec`), driver rankings (collected and
//! sorted per component), per-slot filter/column sets, and the arithmetic
//! inputs of every access-path formula. [`CompiledWorkload`] hoists all of
//! that to workload-prepare time: each query becomes a [`CompiledQuery`]
//! holding dense per-`(slot, candidate)` access tables and frozen
//! left-deep plan shapes whose only configuration-dependent inputs are
//! "which candidate ids are present". A what-if call is then an argmin
//! over small fixed arrays plus a handful of fused adds — no allocation,
//! no hashing, no re-planning — with scratch buffers reused across calls.
//!
//! **Bit identity.** The compiled evaluator must produce *exactly* the
//! bits of the interpreted path (it is swapped in silently under every
//! cache, snapshot and telemetry layer). This holds by construction:
//!
//! * every per-index access cost is produced by the same function the
//!   interpreted fold calls ([`CostModel::index_access_cost`],
//!   [`CostModel::inl_per_probe`], [`CostModel::heap_scan_cost`]) — at
//!   compile time instead of call time, on the same inputs;
//! * all folds preserve the interpreted reduction order and comparison:
//!   access argmins fold candidate costs in per-slot posting order with a
//!   strict `<` against a heap-scan start (`f64::INFINITY` standing in
//!   for the `None` start of order-forced folds), INL alternatives fold
//!   `f64::min` in posting order, drivers keep the *first* minimum under
//!   `total_cmp` exactly like `Iterator::min_by`;
//! * compound expressions keep the interpreted association:
//!   `(access + rows_out·hash_build) + card·hash_probe` with both
//!   products precomputed as written, join cardinalities precomputed
//!   through the identical `max`/division chain (they never depend on the
//!   configuration), and the sort-avoidance alternative reuses the base
//!   per-component sums for unforced components — which the interpreted
//!   path recomputes to the same bits;
//! * the `quirk_eps` jitter folds the same scan-slot hash prefix
//!   (`h_base`) at compile time and applies the identical
//!   `wrapping_add(total.to_bits())` tail at call time.
//!
//! The interpreted path stays in the build as the proptest oracle
//! (`crates/core/tests/compiled_kernel_props.rs` pins full tuning
//! sessions, telemetry included, and raw per-call bits).

use crate::cost::CostModel;
use crate::index::IndexDef;
use ixtune_common::{ColumnId, IndexId, IndexSet};
use ixtune_workload::{FilterKind, Query, ScanSlot, Schema, Workload};

/// One slot's candidate access costs: the heap-scan fallback plus every
/// candidate that offers an admissible path, in posting (visitation)
/// order. For order-forced tables `heap` is `f64::INFINITY` (no heap
/// alternative exists), so an all-absent fold yields `INFINITY` — the
/// compiled spelling of the interpreted `None`.
#[derive(Clone, Debug)]
struct AccessTable {
    heap: f64,
    entries: Vec<(IndexId, f64)>,
}

impl AccessTable {
    #[inline]
    fn eval(&self, config: &IndexSet) -> f64 {
        let mut best = self.heap;
        for &(id, c) in &self.entries {
            // Strict `<` first: it short-circuits the bitset probe and
            // matches the interpreted first-min-wins fold bit for bit.
            if c < best && config.contains(id) {
                best = c;
            }
        }
        best
    }
}

/// One joined-in slot of a frozen left-deep plan. `p1`/`p2` are the two
/// hash-join products (`rows_out·hash_build`, `card·hash_probe`); `inl`
/// holds `card·per_probe` per INL-capable candidate in posting order.
#[derive(Clone, Debug)]
struct PlanStep {
    slot: u16,
    p1: f64,
    p2: f64,
    inl: Vec<(IndexId, f64)>,
}

/// A frozen left-deep join plan: driver slot, join steps in placement
/// order, and the final output cardinality (configuration-independent,
/// so computed once at compile time).
#[derive(Clone, Debug)]
struct PlanShape {
    first: u16,
    steps: Vec<PlanStep>,
    card: f64,
}

impl PlanShape {
    /// Evaluate with the driver's access cost supplied by the caller
    /// (scratch slot cost for free drivers, the order-forced table for the
    /// sort-avoidance plan).
    #[inline]
    fn eval(&self, first_cost: f64, config: &IndexSet, slot_cost: &[f64]) -> f64 {
        let mut cost = first_cost;
        for step in &self.steps {
            let hash = slot_cost[step.slot as usize] + step.p1 + step.p2;
            let mut inl = f64::INFINITY;
            for &(id, contrib) in &step.inl {
                if config.contains(id) {
                    inl = inl.min(contrib);
                }
            }
            cost += hash.min(inl);
        }
        cost
    }
}

/// One driver choice for a component: the gate lists the candidate ids
/// that make the driver slot seekable (empty gate = the unconditional
/// scan-order head). Gated drivers are stored in selectivity-ranked
/// order; at call time the first three whose gate intersects the
/// configuration compete — exactly the interpreted
/// `driver_candidates` (filter → stable sort → take 3), because the
/// ranking keys are configuration-independent.
#[derive(Clone, Debug)]
struct DriverPlan {
    gate: Vec<IndexId>,
    plan: PlanShape,
}

/// A join-graph component with all its admissible driver plans.
#[derive(Clone, Debug)]
struct CompiledComponent {
    drivers: Vec<DriverPlan>,
}

impl CompiledComponent {
    #[inline]
    fn eval(&self, config: &IndexSet, slot_cost: &[f64]) -> (f64, f64) {
        let head = &self.drivers[0].plan;
        let mut best_cost = head.eval(slot_cost[head.first as usize], config, slot_cost);
        let mut best_card = head.card;
        let mut taken = 0usize;
        for d in &self.drivers[1..] {
            if taken == 3 {
                break;
            }
            if !d.gate.iter().any(|&id| config.contains(id)) {
                continue;
            }
            taken += 1;
            let c = d
                .plan
                .eval(slot_cost[d.plan.first as usize], config, slot_cost);
            // First minimum wins (Iterator::min_by semantics).
            if c.total_cmp(&best_cost) == std::cmp::Ordering::Less {
                best_cost = c;
                best_card = d.plan.card;
            }
        }
        (best_cost, best_card)
    }
}

/// Sort-avoidance alternative: force an order-providing access path on
/// the (single) sorted slot's component, reuse the base costs elsewhere.
#[derive(Clone, Debug)]
struct CompiledAlt {
    /// Index of the component containing the sorted slot.
    comp: usize,
    /// Order-forced access table for the sorted slot (`heap = INFINITY`).
    ordered: AccessTable,
    /// Forced plan: sorted slot drives, remaining slots join in.
    plan: PlanShape,
}

/// Sort requirement of a query; `alt` is `None` when the sort columns
/// span multiple slots (no single order-providing index can waive it).
#[derive(Clone, Debug)]
struct CompiledSort {
    alt: Option<CompiledAlt>,
}

/// One query, compiled.
#[derive(Clone, Debug)]
struct CompiledQuery {
    weight: f64,
    quirk_eps: f64,
    sort_factor: f64,
    /// Scan-slot hash prefix of the quirk jitter, folded at compile time.
    h_base: u64,
    /// Unordered best-access table per scan slot.
    slot_access: Vec<AccessTable>,
    comps: Vec<CompiledComponent>,
    sort: Option<CompiledSort>,
}

/// Reusable per-thread evaluation buffers (per-slot access costs and
/// per-component base costs). Grows to the largest query seen and is
/// allocation-free from then on.
#[derive(Default)]
pub struct Scratch {
    slot_cost: Vec<f64>,
    comp_cost: Vec<f64>,
}

impl Scratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// The compiled form of a whole workload against one candidate universe
/// and cost model. Built once at workload-prepare time by
/// `SimulatedOptimizer`; evaluation is `&self` and thread-safe (state
/// lives in the caller's [`Scratch`]).
pub struct CompiledWorkload {
    queries: Vec<CompiledQuery>,
}

impl CompiledWorkload {
    pub fn build(
        schema: &Schema,
        workload: &Workload,
        candidates: &[IndexDef],
        per_query_slot: &[Vec<Vec<IndexId>>],
        model: &CostModel,
    ) -> Self {
        let queries = workload
            .queries
            .iter()
            .enumerate()
            .map(|(qi, q)| compile_query(schema, q, candidates, &per_query_slot[qi], model))
            .collect();
        Self { queries }
    }

    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// What-if cost of query `q` under `config` — bit-identical to
    /// `CostModel::query_cost_with` over the same candidate postings.
    pub fn cost(&self, q: usize, config: &IndexSet, scratch: &mut Scratch) -> f64 {
        let cq = &self.queries[q];

        scratch.slot_cost.clear();
        for tbl in &cq.slot_access {
            scratch.slot_cost.push(tbl.eval(config));
        }

        let mut base_cost = 0.0;
        let mut total_card = 0.0f64;
        scratch.comp_cost.clear();
        for comp in &cq.comps {
            let (c, card) = comp.eval(config, &scratch.slot_cost);
            scratch.comp_cost.push(c);
            base_cost += c;
            total_card = total_card.max(card);
        }

        let mut total = match &cq.sort {
            None => base_cost,
            Some(sort) => {
                let n = total_card.max(2.0);
                let with_sort = base_cost + n * n.log2() * cq.sort_factor;
                let alt = sort.alt.as_ref().and_then(|alt| {
                    let first = alt.ordered.eval(config);
                    if first.is_infinite() {
                        // No order-providing index present: the forced
                        // plan does not exist (interpreted `None`).
                        return None;
                    }
                    let forced = alt.plan.eval(first, config, &scratch.slot_cost);
                    // Sum in component order; unforced components repeat
                    // the base computation, so reuse its bits.
                    let mut alt_cost = 0.0;
                    for ci in 0..cq.comps.len() {
                        alt_cost += if ci == alt.comp {
                            forced
                        } else {
                            scratch.comp_cost[ci]
                        };
                    }
                    Some(alt_cost)
                });
                match alt {
                    Some(a) => with_sort.min(a),
                    None => with_sort,
                }
            }
        };

        total *= cq.weight;

        if cq.quirk_eps > 0.0 {
            let h = cq.h_base.wrapping_add(total.to_bits());
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            total *= 1.0 + cq.quirk_eps * unit;
        }
        total
    }
}

fn compile_query(
    schema: &Schema,
    q: &Query,
    candidates: &[IndexDef],
    per_slot: &[Vec<IndexId>],
    model: &CostModel,
) -> CompiledQuery {
    let n = q.num_scans();
    let ctxs: Vec<_> = (0..n)
        .map(|s| model.slot_ctx(schema, q, ScanSlot(s as u16)))
        .collect();

    // Unordered access tables: heap fallback + every candidate with an
    // admissible path, priced by the shared helper in posting order.
    let slot_access: Vec<AccessTable> = (0..n)
        .map(|s| {
            let slot = ScanSlot(s as u16);
            let ctx = &ctxs[s];
            let entries = per_slot[s]
                .iter()
                .filter_map(|&id| {
                    model
                        .index_access_cost(schema, q, slot, ctx, &candidates[id.index()], &[])
                        .map(|c| (id, c))
                })
                .collect();
            AccessTable {
                heap: model.heap_scan_cost(schema, q, slot, ctx),
                entries,
            }
        })
        .collect();

    let comps_slots = model.components(q);
    let comps: Vec<CompiledComponent> = comps_slots
        .iter()
        .map(|comp| compile_component(schema, q, candidates, per_slot, &ctxs, model, comp))
        .collect();

    // Sort requirement: GROUP BY wins over ORDER BY, mirroring the
    // interpreted precedence.
    let sort_cols: Vec<_> = if !q.group_by.is_empty() {
        q.group_by.clone()
    } else {
        q.order_by.clone()
    };
    let sort = if sort_cols.is_empty() {
        None
    } else {
        let single_slot = {
            let slot = sort_cols[0].scan;
            sort_cols
                .iter()
                .all(|c| c.scan == slot)
                .then(|| (slot, sort_cols.iter().map(|c| c.column).collect::<Vec<_>>()))
        };
        let alt = single_slot.map(|(slot, cols)| {
            let comp_idx = comps_slots
                .iter()
                .position(|c| c.contains(&slot))
                .expect("sort slot belongs to some component");
            let ctx = &ctxs[slot.index()];
            let entries = per_slot[slot.index()]
                .iter()
                .filter_map(|&id| {
                    model
                        .index_access_cost(schema, q, slot, ctx, &candidates[id.index()], &cols)
                        .map(|c| (id, c))
                })
                .collect();
            CompiledAlt {
                comp: comp_idx,
                ordered: AccessTable {
                    heap: f64::INFINITY,
                    entries,
                },
                plan: compile_plan(
                    schema,
                    q,
                    candidates,
                    per_slot,
                    &ctxs,
                    model,
                    &comps_slots[comp_idx],
                    slot,
                ),
            }
        });
        Some(CompiledSort { alt })
    };

    // Quirk jitter scan-slot hash prefix (cf. query_cost_with).
    let mut h_base: u64 = 0x9e37_79b9_7f4a_7c15;
    for s in &q.scans {
        h_base = h_base.wrapping_mul(31).wrapping_add(s.0 as u64);
    }

    CompiledQuery {
        weight: q.weight,
        quirk_eps: model.quirk_eps,
        sort_factor: model.sort_factor,
        h_base,
        slot_access,
        comps,
        sort,
    }
}

fn compile_component(
    schema: &Schema,
    q: &Query,
    candidates: &[IndexDef],
    per_slot: &[Vec<IndexId>],
    ctxs: &[crate::cost::SlotCtx],
    model: &CostModel,
    comp: &[ScanSlot],
) -> CompiledComponent {
    // Seekability gate per slot: candidates whose leading key matches a
    // non-residual filter on the slot (the interpreted `can_seek` test,
    // per candidate instead of per configuration).
    let gate_of = |slot: ScanSlot| -> Vec<IndexId> {
        per_slot[slot.index()]
            .iter()
            .copied()
            .filter(|&id| {
                candidates[id.index()].keys.first().is_some_and(|&lead| {
                    q.filters_on(slot)
                        .any(|f| f.col.column == lead && f.kind != FilterKind::Residual)
                })
            })
            .collect()
    };

    let mut drivers = vec![DriverPlan {
        gate: Vec::new(),
        plan: compile_plan(schema, q, candidates, per_slot, ctxs, model, comp, comp[0]),
    }];

    // Ranked seekable drivers: stable sort by configuration-independent
    // selectivity keys; the runtime takes the first three present, which
    // equals filtering first and sorting after (stable sort, fixed keys).
    let mut seekable: Vec<(f64, ScanSlot, Vec<IndexId>)> = comp
        .iter()
        .copied()
        .filter(|&slot| slot != comp[0])
        .filter_map(|slot| {
            let gate = gate_of(slot);
            (!gate.is_empty()).then(|| {
                (
                    ctxs[slot.index()].rows * q.scan_selectivity(slot),
                    slot,
                    gate,
                )
            })
        })
        .collect();
    seekable.sort_by(|a, b| a.0.total_cmp(&b.0));
    drivers.extend(seekable.into_iter().map(|(_, slot, gate)| DriverPlan {
        gate,
        plan: compile_plan(schema, q, candidates, per_slot, ctxs, model, comp, slot),
    }));

    CompiledComponent { drivers }
}

#[allow(clippy::too_many_arguments)]
fn compile_plan(
    schema: &Schema,
    q: &Query,
    candidates: &[IndexDef],
    per_slot: &[Vec<IndexId>],
    ctxs: &[crate::cost::SlotCtx],
    model: &CostModel,
    comp: &[ScanSlot],
    first: ScanSlot,
) -> PlanShape {
    let mut placed: Vec<ScanSlot> = Vec::with_capacity(comp.len());
    let mut remaining: Vec<ScanSlot> = comp.to_vec();
    remaining.retain(|&s| s != first);
    let mut card = ctxs[first.index()].rows_out;
    placed.push(first);

    let mut steps = Vec::new();
    while !remaining.is_empty() {
        // Same placement rule as the interpreted loop: next join-connected
        // slot in scan order, falling back to the first remaining.
        let pos = remaining
            .iter()
            .position(|&s| {
                q.joins.iter().any(|j| {
                    (j.left.scan == s && placed.contains(&j.right.scan))
                        || (j.right.scan == s && placed.contains(&j.left.scan))
                })
            })
            .unwrap_or(0);
        let slot = remaining.remove(pos);
        let table = schema.table(q.table_of(slot));

        let edges: Vec<ColumnId> = q
            .joins
            .iter()
            .filter_map(|j| {
                if j.left.scan == slot && placed.contains(&j.right.scan) {
                    Some(j.left.column)
                } else if j.right.scan == slot && placed.contains(&j.left.scan) {
                    Some(j.right.column)
                } else {
                    None
                }
            })
            .collect();

        let rows_out = ctxs[slot.index()].rows_out;
        let mut inl = Vec::new();
        if !edges.is_empty() {
            for &id in &per_slot[slot.index()] {
                let idx = &candidates[id.index()];
                let Some(&lead) = idx.keys.first() else {
                    continue;
                };
                if !edges.contains(&lead) {
                    continue;
                }
                let per_probe = model.inl_per_probe(schema, q, slot, idx, lead);
                inl.push((id, card * per_probe));
            }
        }
        steps.push(PlanStep {
            slot: slot.0,
            p1: rows_out * model.hash_build,
            p2: card * model.hash_probe,
            inl,
        });

        // Containment cardinality chain — identical expressions to the
        // interpreted loop, all configuration-independent.
        let mut out = card * rows_out;
        if !edges.is_empty() {
            for &e in &edges {
                let ndv = table.col(e).ndv.max(1) as f64;
                out /= ndv.max(1.0);
            }
        }
        card = out.max(1.0);
        placed.push(slot);
    }
    PlanShape {
        first: first.0,
        steps,
        card,
    }
}
