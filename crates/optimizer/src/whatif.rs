//! The what-if optimizer interface and its simulated implementation.
//!
//! Index tuners interact with the query optimizer exclusively through
//! "what-if" calls: *what would query `q` cost if the indexes in
//! configuration `C` existed?* [`WhatIfOptimizer`] is that API;
//! [`SimulatedOptimizer`] implements it over the analytical
//! [`CostModel`], playing the role SQL Server's
//! hypothetical-index interface plays in the paper.

use crate::cost::CostModel;
use crate::index::IndexDef;
use crate::latency::LatencyModel;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_workload::{BenchmarkInstance, Query, Schema, Workload};
use std::sync::atomic::{AtomicU64, Ordering};

/// The what-if API surface a tuner sees.
pub trait WhatIfOptimizer: Sync {
    /// Number of queries in the tuned workload.
    fn num_queries(&self) -> usize;

    /// Number of candidate indexes (the configuration universe).
    fn num_candidates(&self) -> usize;

    /// Optimizer-estimated cost of query `q` under hypothetical
    /// configuration `config`. Each invocation counts as one optimizer call
    /// (budget accounting and caching live on the tuner side).
    fn what_if_cost(&self, q: QueryId, config: &IndexSet) -> f64;

    /// Total number of what-if invocations served (diagnostics).
    fn calls_served(&self) -> u64;
}

/// Simulated optimizer: the workload, the candidate-index universe, and a
/// cost model.
pub struct SimulatedOptimizer {
    schema: Schema,
    workload: Workload,
    candidates: Vec<IndexDef>,
    /// `per_query_slot[q][slot]` = candidate ids whose table matches the
    /// slot's table (precomputed so each what-if call is a cheap filter).
    per_query_slot: Vec<Vec<Vec<IndexId>>>,
    /// Precomputed per-candidate sizes — storage-constraint checks sit in
    /// per-candidate inner loops and must not recompute column widths.
    cand_sizes: Vec<u64>,
    model: CostModel,
    latency: LatencyModel,
    calls: AtomicU64,
}

impl SimulatedOptimizer {
    /// Build from an instance and a candidate universe (typically produced
    /// by `ixtune-candidates`).
    pub fn new(instance: BenchmarkInstance, candidates: Vec<IndexDef>, model: CostModel) -> Self {
        let BenchmarkInstance { schema, workload } = instance;
        let per_query_slot = workload
            .queries
            .iter()
            .map(|q| {
                q.scans
                    .iter()
                    .map(|&t| {
                        candidates
                            .iter()
                            .enumerate()
                            .filter(|(_, idx)| idx.table == t)
                            .map(|(i, _)| IndexId::from(i))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let cand_sizes = candidates.iter().map(|c| c.size_bytes(&schema)).collect();
        Self {
            schema,
            workload,
            candidates,
            per_query_slot,
            cand_sizes,
            model,
            latency: LatencyModel::default(),
            calls: AtomicU64::new(0),
        }
    }

    /// Modeled wall-clock of one what-if call for query `q` — what a real
    /// optimizer invocation for this query shape would cost in seconds
    /// (see [`LatencyModel`]). Observability reports this next to the
    /// measured in-process latency.
    pub fn call_latency_s(&self, q: QueryId) -> f64 {
        self.latency.call_latency_s(self.workload.query(q))
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    pub fn candidates(&self) -> &[IndexDef] {
        &self.candidates
    }

    pub fn candidate(&self, id: IndexId) -> &IndexDef {
        &self.candidates[id.index()]
    }

    pub fn query(&self, q: QueryId) -> &Query {
        self.workload.query(q)
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Estimated size in bytes of one candidate (precomputed).
    #[inline]
    pub fn candidate_size_bytes(&self, id: IndexId) -> u64 {
        self.cand_sizes[id.index()]
    }

    /// Total estimated size in bytes of the indexes in `config`.
    pub fn config_size_bytes(&self, config: &IndexSet) -> u64 {
        config.iter().map(|id| self.cand_sizes[id.index()]).sum()
    }

    /// Sum of what-if costs over the whole workload (one call per query).
    pub fn workload_cost(&self, config: &IndexSet) -> f64 {
        (0..self.workload.len())
            .map(|i| self.what_if_cost(QueryId::from(i), config))
            .sum()
    }
}

impl WhatIfOptimizer for SimulatedOptimizer {
    fn num_queries(&self) -> usize {
        self.workload.len()
    }

    fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    fn what_if_cost(&self, q: QueryId, config: &IndexSet) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let query = self.workload.query(q);
        let slots = &self.per_query_slot[q.index()];
        // Visitor form: walk the precomputed slot postings directly instead
        // of materializing a `Vec<&IndexDef>` per slot per call.
        self.model
            .query_cost_with(&self.schema, query, &|slot, sink| {
                for id in &slots[slot.index()] {
                    if config.contains(*id) {
                        sink(&self.candidates[id.index()]);
                    }
                }
            })
    }

    fn calls_served(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_common::{ColumnId, TableId};
    use ixtune_workload::gen::synth;
    use ixtune_workload::{ColType, QCol, QueryBuilder, TableBuilder};

    fn tiny_instance() -> (BenchmarkInstance, Vec<IndexDef>) {
        let mut schema = Schema::new();
        let t = schema
            .add_table(
                TableBuilder::new("t", 500_000)
                    .key("id", ColType::Int)
                    .col("a", ColType::Int, 100)
                    .col("b", ColType::Int, 10_000)
                    .build(),
            )
            .unwrap();
        let mut b = QueryBuilder::new("q0");
        let s = b.scan(t);
        b.eq(QCol::new(s, ColumnId::new(1)), 0.01);
        b.project(QCol::new(s, ColumnId::new(2)));
        let w = Workload::new("w", vec![b.build()]);
        let cands = vec![
            IndexDef::new(TableId::new(0), vec![ColumnId::new(1)], vec![]),
            IndexDef::new(
                TableId::new(0),
                vec![ColumnId::new(1)],
                vec![ColumnId::new(2)],
            ),
        ];
        (BenchmarkInstance::new(schema, w), cands)
    }

    #[test]
    fn counts_calls_and_costs_monotone() {
        let (inst, cands) = tiny_instance();
        let opt = SimulatedOptimizer::new(inst, cands, CostModel::default());
        let n = opt.num_candidates();
        let empty = IndexSet::empty(n);
        let one = IndexSet::singleton(n, IndexId::new(0));
        let both = IndexSet::full(n);
        let q = QueryId::new(0);
        let c_empty = opt.what_if_cost(q, &empty);
        let c_one = opt.what_if_cost(q, &one);
        let c_both = opt.what_if_cost(q, &both);
        assert!(c_one <= c_empty);
        assert!(c_both <= c_one);
        assert_eq!(opt.calls_served(), 3);
    }

    #[test]
    fn workload_cost_sums_queries() {
        let (inst, cands) = tiny_instance();
        let opt = SimulatedOptimizer::new(inst, cands, CostModel::default());
        let empty = IndexSet::empty(opt.num_candidates());
        let total = opt.workload_cost(&empty);
        let single = opt.what_if_cost(QueryId::new(0), &empty);
        assert!((total - single).abs() < 1e-9);
    }

    #[test]
    fn config_size_accumulates() {
        let (inst, cands) = tiny_instance();
        let opt = SimulatedOptimizer::new(inst, cands, CostModel::default());
        let n = opt.num_candidates();
        let one = IndexSet::singleton(n, IndexId::new(0));
        let both = IndexSet::full(n);
        assert!(opt.config_size_bytes(&both) > opt.config_size_bytes(&one));
        assert_eq!(opt.config_size_bytes(&IndexSet::empty(n)), 0);
    }

    #[test]
    fn synth_instances_cost_without_panic() {
        for seed in 0..5 {
            let inst = synth::instance(seed);
            // Candidate per (table, column) pair of the first table.
            let cands: Vec<IndexDef> = inst
                .schema
                .iter()
                .flat_map(|(tid, t)| {
                    (0..t.columns.len())
                        .map(move |c| IndexDef::new(tid, vec![ColumnId::from(c)], vec![]))
                })
                .take(30)
                .collect();
            let n = cands.len();
            let opt = SimulatedOptimizer::new(inst, cands, CostModel::default());
            let full = IndexSet::full(n);
            let empty = IndexSet::empty(n);
            assert!(opt.workload_cost(&full) <= opt.workload_cost(&empty) + 1e-9);
        }
    }
}
