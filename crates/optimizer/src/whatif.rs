//! The what-if optimizer interface and its simulated implementation.
//!
//! Index tuners interact with the query optimizer exclusively through
//! "what-if" calls: *what would query `q` cost if the indexes in
//! configuration `C` existed?* [`WhatIfOptimizer`] is that API;
//! [`SimulatedOptimizer`] implements it over the analytical
//! [`CostModel`], playing the role SQL Server's
//! hypothetical-index interface plays in the paper.

use crate::compiled::{CompiledWorkload, Scratch};
use crate::cost::CostModel;
use crate::index::IndexDef;
use crate::latency::LatencyModel;
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_workload::{BenchmarkInstance, Query, Schema, Workload};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Reusable compiled-kernel evaluation buffers. Thread-local so
    /// `what_if_cost` stays `&self` and race-free under intra-session
    /// parallelism; sized once per thread and allocation-free after.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// `IXTUNE_COMPILED=0|false|off` disables the compiled kernel (the
/// interpreted path then serves every call). Anything else — including
/// the variable being unset — enables it.
fn env_compiled_enabled() -> bool {
    match std::env::var("IXTUNE_COMPILED") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off"
        ),
        Err(_) => true,
    }
}

/// The what-if API surface a tuner sees.
pub trait WhatIfOptimizer: Sync {
    /// Number of queries in the tuned workload.
    fn num_queries(&self) -> usize;

    /// Number of candidate indexes (the configuration universe).
    fn num_candidates(&self) -> usize;

    /// Optimizer-estimated cost of query `q` under hypothetical
    /// configuration `config`. Each invocation counts as one optimizer call
    /// (budget accounting and caching live on the tuner side).
    fn what_if_cost(&self, q: QueryId, config: &IndexSet) -> f64;

    /// Total number of what-if invocations served (diagnostics).
    fn calls_served(&self) -> u64;
}

/// Simulated optimizer: the workload, the candidate-index universe, and a
/// cost model.
pub struct SimulatedOptimizer {
    schema: Schema,
    workload: Workload,
    candidates: Vec<IndexDef>,
    /// `per_query_slot[q][slot]` = candidate ids whose table matches the
    /// slot's table (precomputed so each what-if call is a cheap filter).
    per_query_slot: Vec<Vec<Vec<IndexId>>>,
    /// Precomputed per-candidate sizes — storage-constraint checks sit in
    /// per-candidate inner loops and must not recompute column widths.
    cand_sizes: Vec<u64>,
    model: CostModel,
    latency: LatencyModel,
    calls: AtomicU64,
    /// Compiled what-if kernel (bit-identical to the interpreted path).
    /// `None` when disabled via `IXTUNE_COMPILED=0` or `set_compiled`.
    compiled: Option<CompiledWorkload>,
}

impl SimulatedOptimizer {
    /// Build from an instance and a candidate universe (typically produced
    /// by `ixtune-candidates`).
    pub fn new(instance: BenchmarkInstance, candidates: Vec<IndexDef>, model: CostModel) -> Self {
        let BenchmarkInstance { schema, workload } = instance;
        let per_query_slot = workload
            .queries
            .iter()
            .map(|q| {
                q.scans
                    .iter()
                    .map(|&t| {
                        candidates
                            .iter()
                            .enumerate()
                            .filter(|(_, idx)| idx.table == t)
                            .map(|(i, _)| IndexId::from(i))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let cand_sizes = candidates.iter().map(|c| c.size_bytes(&schema)).collect();
        let mut opt = Self {
            schema,
            workload,
            candidates,
            per_query_slot,
            cand_sizes,
            model,
            latency: LatencyModel::default(),
            calls: AtomicU64::new(0),
            compiled: None,
        };
        opt.set_compiled(env_compiled_enabled());
        opt
    }

    /// Enable or disable the compiled kernel (tests/benches; production
    /// follows `IXTUNE_COMPILED` at construction). Enabling recompiles
    /// from the retained schema/workload/candidates.
    pub fn set_compiled(&mut self, on: bool) {
        self.compiled = on.then(|| {
            CompiledWorkload::build(
                &self.schema,
                &self.workload,
                &self.candidates,
                &self.per_query_slot,
                &self.model,
            )
        });
    }

    /// Whether what-if calls are served by the compiled kernel.
    pub fn compiled_enabled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Number of queries compiled into plan tables (0 when the kernel is
    /// disabled) — feeds the `ixtune_compiled_queries_total` counter.
    pub fn compiled_query_count(&self) -> usize {
        self.compiled
            .as_ref()
            .map_or(0, CompiledWorkload::num_queries)
    }

    /// Calls served by the compiled kernel (all of them or none: the
    /// kernel is selected at construction, not per call).
    pub fn compiled_calls_served(&self) -> u64 {
        if self.compiled.is_some() {
            self.calls.load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Interpreted-path cost — the test oracle the compiled kernel is
    /// pinned against. Does **not** count as a served call and ignores
    /// the compiled kernel even when enabled.
    pub fn interpreted_what_if_cost(&self, q: QueryId, config: &IndexSet) -> f64 {
        self.interpreted_cost(q, config)
    }

    fn interpreted_cost(&self, q: QueryId, config: &IndexSet) -> f64 {
        let query = self.workload.query(q);
        let slots = &self.per_query_slot[q.index()];
        // Visitor form: walk the precomputed slot postings directly instead
        // of materializing a `Vec<&IndexDef>` per slot per call.
        self.model
            .query_cost_with(&self.schema, query, &|slot, sink| {
                for id in &slots[slot.index()] {
                    if config.contains(*id) {
                        sink(&self.candidates[id.index()]);
                    }
                }
            })
    }

    /// Modeled wall-clock of one what-if call for query `q` — what a real
    /// optimizer invocation for this query shape would cost in seconds
    /// (see [`LatencyModel`]). Observability reports this next to the
    /// measured in-process latency.
    pub fn call_latency_s(&self, q: QueryId) -> f64 {
        self.latency.call_latency_s(self.workload.query(q))
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    pub fn candidates(&self) -> &[IndexDef] {
        &self.candidates
    }

    pub fn candidate(&self, id: IndexId) -> &IndexDef {
        &self.candidates[id.index()]
    }

    pub fn query(&self, q: QueryId) -> &Query {
        self.workload.query(q)
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Estimated size in bytes of one candidate (precomputed).
    #[inline]
    pub fn candidate_size_bytes(&self, id: IndexId) -> u64 {
        self.cand_sizes[id.index()]
    }

    /// Total estimated size in bytes of the indexes in `config`.
    pub fn config_size_bytes(&self, config: &IndexSet) -> u64 {
        config.iter().map(|id| self.cand_sizes[id.index()]).sum()
    }

    /// Sum of what-if costs over the whole workload (one call per query).
    pub fn workload_cost(&self, config: &IndexSet) -> f64 {
        (0..self.workload.len())
            .map(|i| self.what_if_cost(QueryId::from(i), config))
            .sum()
    }

    /// Content fingerprint of everything a what-if answer depends on:
    /// schema (tables, row counts, column types and NDVs), workload
    /// (scans, filters with selectivities, joins, grouping/ordering/
    /// projection, weights), and the candidate universe (tables, key and
    /// include column lists, in id order). Two optimizers with equal
    /// fingerprints price every `(query, config)` cell identically, so the
    /// daemon's warm cost store keys snapshots by this value: query ids
    /// and index ids mean the same thing on both sides, and cached costs
    /// transfer bit-exactly.
    ///
    /// FNV-1a over a canonical field walk (same constants as
    /// `Layout::fingerprint`), with separator bytes between records so
    /// field shifts can't alias.
    pub fn content_fingerprint(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, b: &[u8]) {
                for &x in b {
                    self.0 ^= u64::from(x);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            fn u64(&mut self, v: u64) {
                self.bytes(&v.to_le_bytes());
            }
            fn f64(&mut self, v: f64) {
                self.u64(v.to_bits());
            }
            fn str(&mut self, s: &str) {
                self.u64(s.len() as u64);
                self.bytes(s.as_bytes());
            }
            fn sep(&mut self) {
                self.bytes(&[0xff]);
            }
            fn field(&mut self) {
                self.bytes(&[0xfe]);
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        let qcol = |h: &mut Fnv, c: &ixtune_workload::QCol| {
            h.u64(u64::from(c.scan.0));
            h.u64(c.column.index() as u64);
        };
        for (_, table) in self.schema.iter() {
            h.str(&table.name);
            h.u64(table.rows);
            for col in &table.columns {
                h.field();
                h.str(&col.name);
                h.str(&format!("{:?}", col.ty));
                h.u64(col.ndv);
            }
            h.sep();
        }
        h.sep();
        for q in &self.workload.queries {
            h.str(&q.name);
            for t in &q.scans {
                h.u64(t.index() as u64);
            }
            h.field();
            for f in &q.filters {
                qcol(&mut h, &f.col);
                h.str(&format!("{:?}", f.kind));
                h.f64(f.selectivity);
            }
            h.field();
            for j in &q.joins {
                qcol(&mut h, &j.left);
                qcol(&mut h, &j.right);
            }
            h.field();
            for group in [&q.group_by, &q.order_by, &q.projection] {
                for c in group {
                    qcol(&mut h, c);
                }
                h.field();
            }
            h.f64(q.weight);
            h.sep();
        }
        h.sep();
        for cand in &self.candidates {
            h.u64(cand.table.index() as u64);
            for k in &cand.keys {
                h.u64(k.index() as u64);
            }
            h.field();
            for k in &cand.includes {
                h.u64(k.index() as u64);
            }
            h.sep();
        }
        h.0
    }
}

impl WhatIfOptimizer for SimulatedOptimizer {
    fn num_queries(&self) -> usize {
        self.workload.len()
    }

    fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    fn what_if_cost(&self, q: QueryId, config: &IndexSet) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(cw) = &self.compiled {
            return SCRATCH.with(|s| cw.cost(q.index(), config, &mut s.borrow_mut()));
        }
        self.interpreted_cost(q, config)
    }

    fn calls_served(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_common::{ColumnId, TableId};
    use ixtune_workload::gen::synth;
    use ixtune_workload::{ColType, QCol, QueryBuilder, TableBuilder};

    fn tiny_instance() -> (BenchmarkInstance, Vec<IndexDef>) {
        let mut schema = Schema::new();
        let t = schema
            .add_table(
                TableBuilder::new("t", 500_000)
                    .key("id", ColType::Int)
                    .col("a", ColType::Int, 100)
                    .col("b", ColType::Int, 10_000)
                    .build(),
            )
            .unwrap();
        let mut b = QueryBuilder::new("q0");
        let s = b.scan(t);
        b.eq(QCol::new(s, ColumnId::new(1)), 0.01);
        b.project(QCol::new(s, ColumnId::new(2)));
        let w = Workload::new("w", vec![b.build()]);
        let cands = vec![
            IndexDef::new(TableId::new(0), vec![ColumnId::new(1)], vec![]),
            IndexDef::new(
                TableId::new(0),
                vec![ColumnId::new(1)],
                vec![ColumnId::new(2)],
            ),
        ];
        (BenchmarkInstance::new(schema, w), cands)
    }

    #[test]
    fn counts_calls_and_costs_monotone() {
        let (inst, cands) = tiny_instance();
        let opt = SimulatedOptimizer::new(inst, cands, CostModel::default());
        let n = opt.num_candidates();
        let empty = IndexSet::empty(n);
        let one = IndexSet::singleton(n, IndexId::new(0));
        let both = IndexSet::full(n);
        let q = QueryId::new(0);
        let c_empty = opt.what_if_cost(q, &empty);
        let c_one = opt.what_if_cost(q, &one);
        let c_both = opt.what_if_cost(q, &both);
        assert!(c_one <= c_empty);
        assert!(c_both <= c_one);
        assert_eq!(opt.calls_served(), 3);
    }

    #[test]
    fn workload_cost_sums_queries() {
        let (inst, cands) = tiny_instance();
        let opt = SimulatedOptimizer::new(inst, cands, CostModel::default());
        let empty = IndexSet::empty(opt.num_candidates());
        let total = opt.workload_cost(&empty);
        let single = opt.what_if_cost(QueryId::new(0), &empty);
        assert!((total - single).abs() < 1e-9);
    }

    #[test]
    fn config_size_accumulates() {
        let (inst, cands) = tiny_instance();
        let opt = SimulatedOptimizer::new(inst, cands, CostModel::default());
        let n = opt.num_candidates();
        let one = IndexSet::singleton(n, IndexId::new(0));
        let both = IndexSet::full(n);
        assert!(opt.config_size_bytes(&both) > opt.config_size_bytes(&one));
        assert_eq!(opt.config_size_bytes(&IndexSet::empty(n)), 0);
    }

    #[test]
    fn content_fingerprint_distinguishes_instances() {
        let (inst, cands) = tiny_instance();
        let a = SimulatedOptimizer::new(inst, cands.clone(), CostModel::default());
        let (inst2, _) = tiny_instance();
        let b = SimulatedOptimizer::new(inst2, cands.clone(), CostModel::default());
        assert_eq!(
            a.content_fingerprint(),
            b.content_fingerprint(),
            "identical content → identical fingerprint"
        );
        // Dropping a candidate changes the universe, hence the key.
        let (inst3, mut fewer) = tiny_instance();
        fewer.pop();
        let c = SimulatedOptimizer::new(inst3, fewer, CostModel::default());
        assert_ne!(a.content_fingerprint(), c.content_fingerprint());
        // A different workload shape changes it too.
        let synth_a = {
            let inst = synth::instance(1);
            let cands = vec![IndexDef::new(
                TableId::new(0),
                vec![ColumnId::new(0)],
                vec![],
            )];
            SimulatedOptimizer::new(inst, cands, CostModel::default())
        };
        assert_ne!(a.content_fingerprint(), synth_a.content_fingerprint());
    }

    #[test]
    fn synth_instances_cost_without_panic() {
        for seed in 0..5 {
            let inst = synth::instance(seed);
            // Candidate per (table, column) pair of the first table.
            let cands: Vec<IndexDef> = inst
                .schema
                .iter()
                .flat_map(|(tid, t)| {
                    (0..t.columns.len())
                        .map(move |c| IndexDef::new(tid, vec![ColumnId::from(c)], vec![]))
                })
                .take(30)
                .collect();
            let n = cands.len();
            let opt = SimulatedOptimizer::new(inst, cands, CostModel::default());
            let full = IndexSet::full(n);
            let empty = IndexSet::empty(n);
            assert!(opt.workload_cost(&full) <= opt.workload_cost(&empty) + 1e-9);
        }
    }
}
