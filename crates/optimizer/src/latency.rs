//! Simulated wall-clock model for what-if calls.
//!
//! The paper's Figure 2 decomposes tuning time into what-if time versus
//! "other" tuning time and observes that what-if calls take 75–93% of the
//! total on TPC-DS (each call ≈ 1 s because it runs a full optimization
//! cycle). The enumeration algorithms themselves only *count* calls; this
//! module assigns each call a deterministic latency proportional to query
//! complexity so the Figure 2 experiment can be regenerated.

use ixtune_workload::Query;
use serde::{Deserialize, Serialize};

/// Latency model parameters (seconds).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-call overhead (parsing, binding).
    pub call_base_s: f64,
    /// Additional time per scan in the query (plan-space growth).
    pub per_scan_s: f64,
    /// Additional time per join predicate.
    pub per_join_s: f64,
    /// Non-what-if tuning overhead charged per enumeration step that
    /// *evaluates* a configuration (candidate generation, bookkeeping,
    /// derived-cost computation).
    pub per_eval_overhead_s: f64,
    /// One-time setup cost (workload analysis, candidate generation).
    pub setup_s: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            call_base_s: 0.12,
            per_scan_s: 0.07,
            per_join_s: 0.04,
            per_eval_overhead_s: 0.01,
            setup_s: 45.0,
        }
    }
}

impl LatencyModel {
    /// Simulated latency of one what-if call for `q`.
    pub fn call_latency_s(&self, q: &Query) -> f64 {
        self.call_base_s
            + self.per_scan_s * q.num_scans() as f64
            + self.per_join_s * q.num_joins() as f64
    }
}

/// Accumulator for a simulated tuning session's wall-clock time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TuningClock {
    pub what_if_s: f64,
    pub other_s: f64,
}

impl TuningClock {
    pub fn new(model: &LatencyModel) -> Self {
        Self {
            what_if_s: 0.0,
            other_s: model.setup_s,
        }
    }

    /// Record one what-if call against `q`.
    pub fn record_call(&mut self, model: &LatencyModel, q: &Query) {
        self.what_if_s += model.call_latency_s(q);
        self.other_s += model.per_eval_overhead_s;
    }

    /// Record a derived-cost-only evaluation (no optimizer call).
    pub fn record_derived(&mut self, model: &LatencyModel) {
        self.other_s += model.per_eval_overhead_s;
    }

    pub fn total_s(&self) -> f64 {
        self.what_if_s + self.other_s
    }

    /// Fraction of total time spent inside what-if calls.
    pub fn what_if_fraction(&self) -> f64 {
        if self.total_s() <= 0.0 {
            0.0
        } else {
            self.what_if_s / self.total_s()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_workload::gen::tpch;

    #[test]
    fn complex_queries_cost_more() {
        let inst = tpch::generate(10.0);
        let m = LatencyModel::default();
        let q1 = &inst.workload.queries[0]; // single table
        let q8 = &inst.workload.queries[7]; // 8-way join
        assert!(m.call_latency_s(q8) > m.call_latency_s(q1));
    }

    #[test]
    fn tpcds_scale_calls_are_around_a_second() {
        // The paper: "each what-if call on most TPC-DS queries takes around
        // 1 second". Our model should land in the same ballpark for
        // queries with ~9 scans.
        let inst = ixtune_workload::gen::tpcds::generate(10.0);
        let m = LatencyModel::default();
        let avg: f64 = inst
            .workload
            .queries
            .iter()
            .map(|q| m.call_latency_s(q))
            .sum::<f64>()
            / inst.workload.len() as f64;
        assert!(avg > 0.3 && avg < 2.0, "avg latency {avg}");
    }

    #[test]
    fn clock_accumulates_and_fraction_dominated_by_whatif() {
        let inst = tpch::generate(1.0);
        let m = LatencyModel::default();
        let mut clock = TuningClock::new(&m);
        for _ in 0..2_000 {
            for q in &inst.workload.queries {
                clock.record_call(&m, q);
            }
        }
        // 44k calls: what-if should dominate like Figure 2 (75–93%).
        let f = clock.what_if_fraction();
        assert!(f > 0.7 && f < 0.99, "fraction {f}");
    }

    #[test]
    fn empty_clock_fraction_is_zero() {
        let clock = TuningClock::default();
        assert_eq!(clock.what_if_fraction(), 0.0);
    }
}
