//! Index definitions and size estimation.
//!
//! A candidate index is a (covering) B+-tree index: an ordered list of key
//! columns plus an unordered set of included payload columns, exactly the
//! `[key columns; included columns]` notation of the paper's Figure 3.

use ixtune_common::{ColumnId, TableId};
use ixtune_workload::Schema;
use serde::{Deserialize, Serialize};

/// Bytes per B+-tree page, used by size and cost estimation.
pub const PAGE_BYTES: u64 = 8_192;

/// A candidate index definition.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexDef {
    pub table: TableId,
    /// Ordered key columns (the seek/sort columns).
    pub keys: Vec<ColumnId>,
    /// Included (payload) columns, order-insensitive.
    pub includes: Vec<ColumnId>,
}

impl IndexDef {
    pub fn new(table: TableId, keys: Vec<ColumnId>, mut includes: Vec<ColumnId>) -> Self {
        // Normalize: includes sorted, deduped, and disjoint from keys.
        includes.sort_unstable();
        includes.dedup();
        includes.retain(|c| !keys.contains(c));
        Self {
            table,
            keys,
            includes,
        }
    }

    /// All columns carried by the index (keys then includes).
    pub fn all_columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.keys.iter().chain(&self.includes).copied()
    }

    /// Whether `cols` is fully contained in key+include columns — i.e. the
    /// index *covers* an access that references exactly `cols`.
    pub fn covers<'a, I: IntoIterator<Item = &'a ColumnId>>(&self, cols: I) -> bool {
        cols.into_iter()
            .all(|c| self.keys.contains(c) || self.includes.contains(c))
    }

    /// Average bytes per index row (key + include widths plus row pointer
    /// and per-row overhead).
    pub fn row_width(&self, schema: &Schema) -> u32 {
        let table = schema.table(self.table);
        let cols: u32 = self.all_columns().map(|c| table.col(c).ty.width()).sum();
        cols + 12
    }

    /// Estimated size in bytes when materialized.
    pub fn size_bytes(&self, schema: &Schema) -> u64 {
        let rows = schema.table(self.table).rows;
        // ~2/3 leaf fill factor plus upper levels.
        let leaf_bytes = rows * self.row_width(schema) as u64;
        leaf_bytes * 3 / 2
    }

    /// Number of leaf pages.
    pub fn leaf_pages(&self, schema: &Schema) -> u64 {
        (self.size_bytes(schema)).div_ceil(PAGE_BYTES).max(1)
    }

    /// Human-readable `table([keys]; [includes])` form.
    pub fn describe(&self, schema: &Schema) -> String {
        let table = schema.table(self.table);
        let keys: Vec<&str> = self
            .keys
            .iter()
            .map(|&c| table.col(c).name.as_str())
            .collect();
        let incs: Vec<&str> = self
            .includes
            .iter()
            .map(|&c| table.col(c).name.as_str())
            .collect();
        if incs.is_empty() {
            format!("{}({})", table.name, keys.join(", "))
        } else {
            format!("{}({}; {})", table.name, keys.join(", "), incs.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_workload::{ColType, Schema, TableBuilder};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("r", 100_000)
                .key("a", ColType::Int)
                .col("b", ColType::Int, 50)
                .col("c", ColType::VarChar(40), 1000)
                .build(),
        )
        .unwrap();
        s
    }

    fn c(i: u32) -> ColumnId {
        ColumnId::new(i)
    }

    #[test]
    fn normalization_dedupes_and_strips_keys() {
        let idx = IndexDef::new(TableId::new(0), vec![c(0), c(1)], vec![c(1), c(2), c(2)]);
        assert_eq!(idx.includes, vec![c(2)]);
    }

    #[test]
    fn covering_check() {
        let idx = IndexDef::new(TableId::new(0), vec![c(0)], vec![c(2)]);
        assert!(idx.covers(&[c(0), c(2)]));
        assert!(!idx.covers(&[c(0), c(1)]));
        assert!(idx.covers(&[]));
    }

    #[test]
    fn sizes_scale_with_width() {
        let s = schema();
        let narrow = IndexDef::new(TableId::new(0), vec![c(0)], vec![]);
        let wide = IndexDef::new(TableId::new(0), vec![c(0)], vec![c(1), c(2)]);
        assert!(wide.size_bytes(&s) > narrow.size_bytes(&s));
        assert!(narrow.leaf_pages(&s) >= 1);
        // Narrow index is much smaller than the heap (row width 8+4+4+22).
        let heap = s.table(TableId::new(0)).size_bytes();
        assert!(narrow.size_bytes(&s) < heap);
    }

    #[test]
    fn describe_formats() {
        let s = schema();
        let idx = IndexDef::new(TableId::new(0), vec![c(1), c(0)], vec![c(2)]);
        assert_eq!(idx.describe(&s), "r(b, a; c)");
        let plain = IndexDef::new(TableId::new(0), vec![c(0)], vec![]);
        assert_eq!(plain.describe(&s), "r(a)");
    }
}
