//! Simulated query optimizer with a what-if API.
//!
//! This crate is the substrate standing in for Microsoft SQL Server's
//! hypothetical-index ("what-if") interface used by the paper:
//!
//! * [`index`] — candidate index definitions and size estimation;
//! * [`cost`] — the analytical cost model (access paths, joins, sorts),
//!   monotone by construction (Assumption 1);
//! * [`whatif`] — the [`WhatIfOptimizer`] trait and
//!   [`SimulatedOptimizer`] implementation;
//! * [`latency`] — the simulated wall-clock model behind Figure 2.
//!
//! Budget metering and what-if caching live in `ixtune-core`, on the tuner
//! side of the API, mirroring the architecture in Figure 1 of the paper.
//!
//! # Example
//!
//! ```
//! use ixtune_common::{ColumnId, IndexSet, IndexId, QueryId, TableId};
//! use ixtune_optimizer::{CostModel, IndexDef, SimulatedOptimizer, WhatIfOptimizer};
//! use ixtune_workload::sql::parse_workload;
//! use ixtune_workload::{BenchmarkInstance, ColType, Schema, TableBuilder, Workload};
//!
//! let mut schema = Schema::new();
//! let t = schema.add_table(
//!     TableBuilder::new("t", 500_000)
//!         .key("id", ColType::Int)
//!         .col("grp", ColType::Int, 100)
//!         .build(),
//! ).unwrap();
//! let w = parse_workload(&schema, "w", &[("q", "SELECT id FROM t WHERE grp = 7")]).unwrap();
//!
//! // One candidate: an index on the filter column carrying the projection.
//! let idx = IndexDef::new(t, vec![ColumnId::new(1)], vec![ColumnId::new(0)]);
//! let opt = SimulatedOptimizer::new(
//!     BenchmarkInstance::new(schema, w), vec![idx], CostModel::default());
//!
//! let q = QueryId::new(0);
//! let empty = IndexSet::empty(1);
//! let with_index = IndexSet::singleton(1, IndexId::new(0));
//! assert!(opt.what_if_cost(q, &with_index) < opt.what_if_cost(q, &empty));
//! ```

pub mod compiled;
pub mod cost;
pub mod index;
pub mod latency;
pub mod whatif;

pub use compiled::CompiledWorkload;
pub use cost::{CostModel, SlotIndexVisitor};
pub use index::{IndexDef, PAGE_BYTES};
pub use latency::{LatencyModel, TuningClock};
pub use whatif::{SimulatedOptimizer, WhatIfOptimizer};
