//! The analytical cost model behind the simulated what-if optimizer.
//!
//! Given a query and the set of (hypothetical) indexes available on each of
//! its scan slots, [`CostModel::query_cost`] estimates the plan cost the way
//! a textbook optimizer would:
//!
//! * per-slot **access paths** — heap scan, index seek (equality-prefix plus
//!   one range column), covering index-only scan, with RID-lookup charges
//!   for non-covering seeks;
//! * **join costing** over each connected component of the join graph in
//!   left-deep order — hash join versus index-nested-loop join when an
//!   index with a matching leading key exists on the inner side;
//! * **sort avoidance** — a sort for `GROUP BY`/`ORDER BY` can be waived by
//!   an order-providing index on the sorted slot; the waived and unwaived
//!   plans are compared globally so the final cost stays monotone.
//!
//! **Monotonicity** (Assumption 1 of the paper) holds *by construction*:
//! every decision is a minimum over an option set that only grows as
//! indexes are added. An optional `quirk_eps` mode injects deterministic
//! per-(query, configuration) noise to emulate real optimizers whose cost
//! models occasionally violate the assumption.

use crate::index::{IndexDef, PAGE_BYTES};
use ixtune_common::ColumnId;
use ixtune_workload::{FilterKind, Query, ScanSlot, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tunable constants of the cost model. The defaults are calibrated so that
/// selective indexes yield the 30–80% workload improvements typical of
/// analytic benchmarks (cf. Figures 8–13 of the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of reading one page sequentially.
    pub page_io: f64,
    /// Per-row CPU cost.
    pub row_cpu: f64,
    /// Cold B+-tree descend per seek.
    pub seek_descend: f64,
    /// Warm per-probe descend inside a nested-loop join.
    pub probe_descend: f64,
    /// Per-row RID lookup for non-covering index fetches.
    pub rid_lookup: f64,
    /// Hash-join build cost per inner row.
    pub hash_build: f64,
    /// Hash-join probe cost per outer row.
    pub hash_probe: f64,
    /// Sort cost per `row * log2(rows)`.
    pub sort_factor: f64,
    /// If nonzero, multiply each (query, configuration) cost by a
    /// deterministic factor in `[1, 1 + quirk_eps]`, which can violate
    /// monotonicity — used to test algorithm robustness.
    pub quirk_eps: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            page_io: 1.0,
            row_cpu: 0.001,
            seek_descend: 4.0,
            probe_descend: 0.05,
            rid_lookup: 0.4,
            hash_build: 0.001_5,
            hash_probe: 0.000_8,
            sort_factor: 0.000_5,
            quirk_eps: 0.0,
        }
    }
}

/// Visitor-style "which indexes exist on this slot" callback: the cost
/// model calls it with a scan slot and a sink, and the callback invokes the
/// sink once per available index. Unlike a `-> Vec<&IndexDef>` closure this
/// allocates nothing, which matters because every what-if call visits every
/// slot several times.
pub type SlotIndexVisitor<'s> = dyn Fn(ScanSlot, &mut dyn FnMut(&IndexDef)) + 's;

/// Result of choosing an access path for one scan slot.
#[derive(Clone, Debug)]
struct Access {
    cost: f64,
    /// Output cardinality after *all* filters on the slot.
    rows_out: f64,
}

/// Configuration-independent context of one `(query, slot)` pair: table
/// cardinality, post-filter output cardinality, and the column sets that
/// decide seekability/covering. Shared between the interpreted visitor
/// path ([`CostModel::query_cost_with`]) and the compiled kernel
/// (`compiled.rs`), so both price an index through the *same* arithmetic.
pub(crate) struct SlotCtx {
    pub(crate) rows: f64,
    pub(crate) rows_out: f64,
    eq_cols: BTreeSet<ColumnId>,
    range_cols: BTreeSet<ColumnId>,
    referenced: BTreeSet<ColumnId>,
}

impl CostModel {
    /// Heap pages of a table.
    fn heap_pages(&self, schema: &Schema, slot_table: ixtune_common::TableId) -> f64 {
        let t = schema.table(slot_table);
        (t.size_bytes() as f64 / PAGE_BYTES as f64).max(1.0)
    }

    /// Build the configuration-independent per-slot context.
    pub(crate) fn slot_ctx(&self, schema: &Schema, q: &Query, slot: ScanSlot) -> SlotCtx {
        let table = schema.table(q.table_of(slot));
        let rows = table.rows as f64;
        let full_sel = q.scan_selectivity(slot);
        let rows_out = (rows * full_sel).max(1.0);
        let referenced: BTreeSet<ColumnId> = q.referenced_columns(slot);
        let eq_cols: BTreeSet<ColumnId> = q
            .filters_on(slot)
            .filter(|f| f.kind == FilterKind::Equality)
            .map(|f| f.col.column)
            .collect();
        let range_cols: BTreeSet<ColumnId> = q
            .filters_on(slot)
            .filter(|f| matches!(f.kind, FilterKind::Range | FilterKind::Like))
            .map(|f| f.col.column)
            .collect();
        SlotCtx {
            rows,
            rows_out,
            eq_cols,
            range_cols,
            referenced,
        }
    }

    /// Heap-scan cost of `slot` (always available when no order is forced).
    pub(crate) fn heap_scan_cost(
        &self,
        schema: &Schema,
        q: &Query,
        slot: ScanSlot,
        ctx: &SlotCtx,
    ) -> f64 {
        self.heap_pages(schema, q.table_of(slot)) * self.page_io + ctx.rows * self.row_cpu
    }

    /// Access cost `idx` contributes on `slot`, or `None` when the index
    /// offers no admissible path there (it then takes no part in the
    /// argmin). This is the one place a single index is priced; the
    /// interpreted fold and the compiled access tables both call it.
    pub(crate) fn index_access_cost(
        &self,
        schema: &Schema,
        q: &Query,
        slot: ScanSlot,
        ctx: &SlotCtx,
        idx: &IndexDef,
        require_order: &[ColumnId],
    ) -> Option<f64> {
        if !require_order.is_empty() {
            // Order-providing: required columns must be the leading keys
            // in order.
            if idx.keys.len() < require_order.len()
                || idx.keys[..require_order.len()] != *require_order
            {
                return None;
            }
        }
        let sel_of = |col: ColumnId, kind_eq: bool| -> f64 {
            q.filters_on(slot)
                .filter(|f| {
                    f.col.column == col
                        && (f.kind == FilterKind::Equality) == kind_eq
                        && f.kind != FilterKind::Residual
                })
                .map(|f| f.selectivity)
                .product()
        };
        // Seek-prefix matching: consume equality keys, then at most one
        // range key.
        let mut seek_sel = 1.0f64;
        let mut matched_any = false;
        for &key in &idx.keys {
            if ctx.eq_cols.contains(&key) {
                seek_sel *= sel_of(key, true);
                matched_any = true;
            } else if ctx.range_cols.contains(&key) {
                seek_sel *= sel_of(key, false);
                matched_any = true;
                break;
            } else {
                break;
            }
        }
        let covering = idx.covers(ctx.referenced.iter());
        let idx_width = idx.row_width(schema) as f64;
        if matched_any {
            let fetch_rows = (ctx.rows * seek_sel).max(1.0);
            let leaf_pages_touched = (fetch_rows * idx_width / PAGE_BYTES as f64).max(1.0);
            let mut cost =
                self.seek_descend + leaf_pages_touched * self.page_io + fetch_rows * self.row_cpu;
            if !covering {
                cost += fetch_rows * self.rid_lookup;
            }
            Some(cost)
        } else if covering {
            // Index-only scan: narrower than the heap.
            let idx_pages = (ctx.rows * idx_width / PAGE_BYTES as f64).max(1.0);
            Some(idx_pages * self.page_io + ctx.rows * self.row_cpu)
        } else if !require_order.is_empty() {
            // Forced ordered scan of a non-covering index: every row
            // needs a lookup; usually dominated but keeps the option set
            // complete.
            let idx_pages = (ctx.rows * idx_width / PAGE_BYTES as f64).max(1.0);
            Some(idx_pages * self.page_io + ctx.rows * (self.row_cpu + self.rid_lookup))
        } else {
            None
        }
    }

    /// Per-probe cost of an index-nested-loop probe into `idx` on `slot`
    /// via leading join key `lead`. Shared with the compiled kernel.
    pub(crate) fn inl_per_probe(
        &self,
        schema: &Schema,
        q: &Query,
        slot: ScanSlot,
        idx: &IndexDef,
        lead: ColumnId,
    ) -> f64 {
        let table = schema.table(q.table_of(slot));
        let rows = table.rows as f64;
        let ndv = table.col(lead).ndv.max(1) as f64;
        let per_probe_rows = (rows / ndv).max(1e-3);
        let covering = idx.covers(q.referenced_columns(slot).iter());
        let mut per_probe = self.probe_descend + per_probe_rows * self.row_cpu;
        if !covering {
            per_probe += per_probe_rows * self.rid_lookup;
        }
        per_probe
    }

    /// Best access path for `slot` given the available indexes.
    ///
    /// If `require_order` is non-empty, only order-providing paths are
    /// allowed: indexes whose leading keys match the required columns (as an
    /// ordered prefix). Returns `None` when no such path exists.
    fn best_access(
        &self,
        schema: &Schema,
        q: &Query,
        slot: ScanSlot,
        avail: &SlotIndexVisitor<'_>,
        require_order: &[ColumnId],
    ) -> Option<Access> {
        let ctx = self.slot_ctx(schema, q, slot);
        let mut best: Option<f64> = None;
        if require_order.is_empty() {
            // Heap scan is always available.
            best = Some(self.heap_scan_cost(schema, q, slot, &ctx));
        }
        avail(slot, &mut |idx: &IndexDef| {
            debug_assert_eq!(idx.table, q.table_of(slot));
            if let Some(c) = self.index_access_cost(schema, q, slot, &ctx, idx, require_order) {
                if best.is_none_or(|b| c < b) {
                    best = Some(c);
                }
            }
        });
        best.map(|cost| Access {
            cost,
            rows_out: ctx.rows_out,
        })
    }

    /// Join-graph connected components, each as slot list in scan order.
    pub(crate) fn components(&self, q: &Query) -> Vec<Vec<ScanSlot>> {
        let n = q.num_scans();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for j in &q.joins {
            let (a, b) = (j.left.scan.index(), j.right.scan.index());
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut comps: Vec<Vec<ScanSlot>> = Vec::new();
        let mut root_to_comp: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for s in 0..n {
            let r = find(&mut parent, s);
            let ci = *root_to_comp.entry(r).or_insert_with(|| {
                comps.push(Vec::new());
                comps.len() - 1
            });
            comps[ci].push(ScanSlot(s as u16));
        }
        comps
    }

    /// Cost one connected component; `order_slot` optionally forces an
    /// order-providing access path on that slot (for sort avoidance).
    /// Returns `(cost, output_cardinality)`, or `None` when the forced
    /// ordered path does not exist.
    /// Cost one connected component with the given `driver` slot placed
    /// first, trying every remaining slot in join-connected order.
    fn component_cost(
        &self,
        schema: &Schema,
        q: &Query,
        comp: &[ScanSlot],
        avail: &SlotIndexVisitor<'_>,
        driver: ScanSlot,
        order_slot: Option<(ScanSlot, &[ColumnId])>,
    ) -> Option<(f64, f64)> {
        let forced = |slot: ScanSlot| -> &[ColumnId] {
            match order_slot {
                Some((s, cols)) if s == slot => cols,
                _ => &[],
            }
        };
        let mut placed: Vec<ScanSlot> = Vec::with_capacity(comp.len());
        let mut remaining: Vec<ScanSlot> = comp.to_vec();

        // Driver: the forced-order slot must drive the plan (an ordered
        // stream has to come first); otherwise the caller picks.
        let first = match order_slot {
            Some((s, _)) if comp.contains(&s) => s,
            _ => driver,
        };
        remaining.retain(|&s| s != first);
        let acc = self.best_access(schema, q, first, avail, forced(first))?;
        let mut cost = acc.cost;
        let mut card = acc.rows_out;
        placed.push(first);

        while !remaining.is_empty() {
            // Next slot connected to the placed set (scan order among ties);
            // if none is connected (shouldn't happen within a component),
            // take the first remaining.
            let pos = remaining
                .iter()
                .position(|&s| {
                    q.joins.iter().any(|j| {
                        (j.left.scan == s && placed.contains(&j.right.scan))
                            || (j.right.scan == s && placed.contains(&j.left.scan))
                    })
                })
                .unwrap_or(0);
            let slot = remaining.remove(pos);
            let table = schema.table(q.table_of(slot));

            // Edges linking `slot` to the placed prefix, as (inner column,
            // inner-side ndv).
            let edges: Vec<ColumnId> = q
                .joins
                .iter()
                .filter_map(|j| {
                    if j.left.scan == slot && placed.contains(&j.right.scan) {
                        Some(j.left.column)
                    } else if j.right.scan == slot && placed.contains(&j.left.scan) {
                        Some(j.right.column)
                    } else {
                        None
                    }
                })
                .collect();

            let acc = self.best_access(schema, q, slot, avail, &[])?;

            // Hash join: access the inner, build, probe.
            let hash_cost = acc.cost + acc.rows_out * self.hash_build + card * self.hash_probe;

            // Index nested-loop join: an index whose leading key is one of
            // the join columns lets each outer row probe directly.
            let mut inl_cost = f64::INFINITY;
            if !edges.is_empty() {
                avail(slot, &mut |idx: &IndexDef| {
                    let Some(&lead) = idx.keys.first() else {
                        return;
                    };
                    if !edges.contains(&lead) {
                        return;
                    }
                    let per_probe = self.inl_per_probe(schema, q, slot, idx, lead);
                    inl_cost = inl_cost.min(card * per_probe);
                });
            }
            cost += hash_cost.min(inl_cost);

            // Output cardinality: classic containment formula per edge.
            let mut out = card * acc.rows_out;
            if edges.is_empty() {
                // Cross product (disconnected inside a component cannot
                // happen, but guard anyway).
            } else {
                for &e in &edges {
                    let ndv = table.col(e).ndv.max(1) as f64;
                    out /= ndv.max(1.0);
                }
            }
            card = out.max(1.0);
            placed.push(slot);
        }
        Some((cost, card))
    }

    /// Driver candidates for a component: the scan-order head plus every
    /// slot whose available indexes can seek one of its filters (a real
    /// optimizer would consider starting the plan from a selective seek).
    /// Capped at the 3 most selective seekable slots — the option set only
    /// grows with more indexes, so the plan-space minimum stays monotone.
    fn driver_candidates(
        &self,
        schema: &Schema,
        q: &Query,
        comp: &[ScanSlot],
        avail: &SlotIndexVisitor<'_>,
    ) -> Vec<ScanSlot> {
        let mut out = vec![comp[0]];
        let mut seekable: Vec<(f64, ScanSlot)> = comp
            .iter()
            .copied()
            .filter(|&slot| {
                if slot == comp[0] {
                    return false;
                }
                let mut can_seek = false;
                avail(slot, &mut |idx: &IndexDef| {
                    if !can_seek
                        && idx.keys.first().is_some_and(|&lead| {
                            q.filters_on(slot)
                                .any(|f| f.col.column == lead && f.kind != FilterKind::Residual)
                        })
                    {
                        can_seek = true;
                    }
                });
                can_seek
            })
            .map(|slot| {
                let rows = schema.table(q.table_of(slot)).rows as f64;
                (rows * q.scan_selectivity(slot), slot)
            })
            .collect();
        seekable.sort_by(|a, b| a.0.total_cmp(&b.0));
        out.extend(seekable.into_iter().take(3).map(|(_, s)| s));
        out
    }

    /// Minimum component cost over the admissible driver choices.
    fn best_component_cost(
        &self,
        schema: &Schema,
        q: &Query,
        comp: &[ScanSlot],
        avail: &SlotIndexVisitor<'_>,
        order_slot: Option<(ScanSlot, &[ColumnId])>,
    ) -> Option<(f64, f64)> {
        // A forced order pins the driver; no enumeration needed.
        if matches!(order_slot, Some((s, _)) if comp.contains(&s)) {
            return self.component_cost(schema, q, comp, avail, comp[0], order_slot);
        }
        self.driver_candidates(schema, q, comp, avail)
            .into_iter()
            .filter_map(|d| self.component_cost(schema, q, comp, avail, d, order_slot))
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }

    /// Test-oracle wrapper over [`query_cost_with`](Self::query_cost_with)
    /// that accepts an allocating `-> Vec<&IndexDef>` closure.
    ///
    /// Not part of the hot path: every production caller goes through the
    /// visitor form (or the compiled kernel, which is proptest-pinned to
    /// it); this wrapper exists so tests can state configurations as plain
    /// `Vec`s. Kept callable from integration tests/benches, hence not
    /// `#[cfg(test)]` — but do not introduce new non-test callers.
    #[doc(hidden)]
    pub fn query_cost<'a>(
        &self,
        schema: &Schema,
        q: &Query,
        avail: &dyn Fn(ScanSlot) -> Vec<&'a IndexDef>,
    ) -> f64 {
        self.query_cost_with(schema, q, &|slot, sink| {
            for idx in avail(slot) {
                sink(idx);
            }
        })
    }

    /// What-if cost of `q` with a visitor-style `avail` — the
    /// allocation-free path used by `SimulatedOptimizer::what_if_cost`.
    pub fn query_cost_with(&self, schema: &Schema, q: &Query, avail: &SlotIndexVisitor<'_>) -> f64 {
        let comps = self.components(q);

        // Sort requirement: GROUP BY wins over ORDER BY (a grouped stream
        // subsumes the later sort in our simplified pipeline).
        let sort_cols: Vec<_> = if !q.group_by.is_empty() {
            q.group_by.clone()
        } else {
            q.order_by.clone()
        };
        let single_slot_sort = (!sort_cols.is_empty())
            .then(|| {
                let slot = sort_cols[0].scan;
                sort_cols
                    .iter()
                    .all(|c| c.scan == slot)
                    .then(|| (slot, sort_cols.iter().map(|c| c.column).collect::<Vec<_>>()))
            })
            .flatten();

        let mut base_cost = 0.0;
        let mut total_card = 0.0f64;
        for comp in &comps {
            let (c, card) = self
                .best_component_cost(schema, q, comp, avail, None)
                .expect("unforced plan always exists");
            base_cost += c;
            total_card = total_card.max(card);
        }

        let mut total = if sort_cols.is_empty() {
            base_cost
        } else {
            let n = total_card.max(2.0);
            let with_sort = base_cost + n * n.log2() * self.sort_factor;
            // Alternative: force an order-providing index on the sorted slot.
            let alt = single_slot_sort.as_ref().and_then(|(slot, cols)| {
                let mut alt_cost = 0.0;
                for comp in &comps {
                    let forced = comp.contains(slot);
                    let res = self.best_component_cost(
                        schema,
                        q,
                        comp,
                        avail,
                        forced.then_some((*slot, cols.as_slice())),
                    )?;
                    alt_cost += res.0;
                }
                Some(alt_cost)
            });
            match alt {
                Some(a) => with_sort.min(a),
                None => with_sort,
            }
        };

        total *= q.weight;

        if self.quirk_eps > 0.0 {
            // Deterministic per-plan jitter (can violate monotonicity).
            let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
            for s in &q.scans {
                h = h.wrapping_mul(31).wrapping_add(s.0 as u64);
            }
            h = h.wrapping_add(total.to_bits());
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            total *= 1.0 + self.quirk_eps * unit;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_common::TableId;
    use ixtune_workload::{ColType, QCol, QueryBuilder, TableBuilder};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            TableBuilder::new("big", 1_000_000)
                .key("id", ColType::Int)
                .col("grp", ColType::Int, 1_000)
                .col("val", ColType::Int, 100_000)
                .col("pay", ColType::VarChar(80), 900_000)
                .build(),
        )
        .unwrap();
        s.add_table(
            TableBuilder::new("dim", 10_000)
                .key("id", ColType::Int)
                .col("attr", ColType::Int, 50)
                .build(),
        )
        .unwrap();
        s
    }

    fn c(i: u32) -> ColumnId {
        ColumnId::new(i)
    }

    fn no_indexes(_: ScanSlot) -> Vec<&'static IndexDef> {
        Vec::new()
    }

    /// A single-table query with an equality filter and small projection.
    fn filter_query(schema: &Schema) -> Query {
        let big = schema.table_by_name("big").unwrap();
        let mut b = QueryBuilder::new("f");
        let s = b.scan(big);
        b.eq(QCol::new(s, c(1)), 0.001);
        b.project(QCol::new(s, c(2)));
        b.build()
    }

    #[test]
    fn empty_config_uses_heap_scan() {
        let sc = schema();
        let q = filter_query(&sc);
        let m = CostModel::default();
        let cost = m.query_cost(&sc, &q, &no_indexes);
        assert!(cost > 0.0);
    }

    #[test]
    fn seek_index_beats_heap_scan() {
        let sc = schema();
        let q = filter_query(&sc);
        let m = CostModel::default();
        let base = m.query_cost(&sc, &q, &no_indexes);
        let idx = IndexDef::new(TableId::new(0), vec![c(1)], vec![]);
        let with_idx = m.query_cost(&sc, &q, &|_| vec![&idx]);
        assert!(
            with_idx < base * 0.5,
            "seek {with_idx} should beat scan {base}"
        );
    }

    #[test]
    fn covering_index_beats_non_covering() {
        let sc = schema();
        let q = filter_query(&sc);
        let m = CostModel::default();
        let plain = IndexDef::new(TableId::new(0), vec![c(1)], vec![]);
        let covering = IndexDef::new(TableId::new(0), vec![c(1)], vec![c(2)]);
        let cost_plain = m.query_cost(&sc, &q, &|_| vec![&plain]);
        let cost_cov = m.query_cost(&sc, &q, &|_| vec![&covering]);
        assert!(cost_cov < cost_plain);
    }

    #[test]
    fn irrelevant_index_changes_nothing() {
        let sc = schema();
        let q = filter_query(&sc);
        let m = CostModel::default();
        let base = m.query_cost(&sc, &q, &no_indexes);
        // Index on a column the query never touches in a seekable way.
        let idx = IndexDef::new(TableId::new(0), vec![c(3)], vec![]);
        let cost = m.query_cost(&sc, &q, &|_| vec![&idx]);
        assert!(cost <= base + 1e-9);
        assert!((cost - base).abs() < base * 0.01);
    }

    #[test]
    fn monotone_more_indexes_never_hurt() {
        let sc = schema();
        let q = filter_query(&sc);
        let m = CostModel::default();
        let i1 = IndexDef::new(TableId::new(0), vec![c(1)], vec![]);
        let i2 = IndexDef::new(TableId::new(0), vec![c(1)], vec![c(2)]);
        let i3 = IndexDef::new(TableId::new(0), vec![c(2)], vec![c(1)]);
        let c0 = m.query_cost(&sc, &q, &no_indexes);
        let c1 = m.query_cost(&sc, &q, &|_| vec![&i1]);
        let c2 = m.query_cost(&sc, &q, &|_| vec![&i1, &i2]);
        let c3 = m.query_cost(&sc, &q, &|_| vec![&i1, &i2, &i3]);
        assert!(c1 <= c0 && c2 <= c1 && c3 <= c2);
    }

    fn join_query(schema: &Schema) -> Query {
        let big = schema.table_by_name("big").unwrap();
        let dim = schema.table_by_name("dim").unwrap();
        let mut b = QueryBuilder::new("j");
        let d = b.scan(dim);
        let f = b.scan(big);
        b.eq(QCol::new(d, c(1)), 0.02);
        b.join(QCol::new(d, c(0)), QCol::new(f, c(2)));
        b.project(QCol::new(f, c(1)));
        b.build()
    }

    #[test]
    fn join_index_enables_nested_loop() {
        let sc = schema();
        let q = join_query(&sc);
        let m = CostModel::default();
        let base = m.query_cost(&sc, &q, &no_indexes);
        // Index on the big table's join column, covering the projection.
        let jidx = IndexDef::new(TableId::new(0), vec![c(2)], vec![c(1)]);
        let cost = m.query_cost(&sc, &q, &|slot| {
            if slot == ScanSlot(1) {
                vec![&jidx]
            } else {
                vec![]
            }
        });
        assert!(cost < base, "INL {cost} should beat hash {base}");
    }

    #[test]
    fn order_providing_index_waives_sort() {
        let sc = schema();
        let big = sc.table_by_name("big").unwrap();
        let mut b = QueryBuilder::new("g");
        let s = b.scan(big);
        b.group_by(QCol::new(s, c(1)));
        b.project(QCol::new(s, c(1)));
        let q = b.build();
        let m = CostModel::default();
        let base = m.query_cost(&sc, &q, &no_indexes);
        let oidx = IndexDef::new(TableId::new(0), vec![c(1)], vec![]);
        let cost = m.query_cost(&sc, &q, &|_| vec![&oidx]);
        assert!(cost < base);
    }

    #[test]
    fn weight_scales_cost() {
        let sc = schema();
        let mut q = filter_query(&sc);
        let m = CostModel::default();
        let c1 = m.query_cost(&sc, &q, &no_indexes);
        q.weight = 3.0;
        let c3 = m.query_cost(&sc, &q, &no_indexes);
        assert!((c3 / c1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_components_cost_additively() {
        let sc = schema();
        let big = sc.table_by_name("big").unwrap();
        let dim = sc.table_by_name("dim").unwrap();
        let m = CostModel::default();

        let mut b = QueryBuilder::new("two");
        let s0 = b.scan(big);
        let _s1 = b.scan(dim);
        b.project(QCol::new(s0, c(1)));
        let q2 = b.build();

        let mut b1 = QueryBuilder::new("one");
        let t0 = b1.scan(big);
        b1.project(QCol::new(t0, c(1)));
        let q1 = b1.build();

        let mut bd = QueryBuilder::new("dim-only");
        bd.scan(dim);
        let qd = bd.build();

        let sum = m.query_cost(&sc, &q1, &no_indexes) + m.query_cost(&sc, &qd, &no_indexes);
        let both = m.query_cost(&sc, &q2, &no_indexes);
        assert!((both - sum).abs() < sum * 0.01, "both={both} sum={sum}");
    }

    #[test]
    fn quirk_mode_perturbs_but_stays_bounded() {
        let sc = schema();
        let q = filter_query(&sc);
        let mut m = CostModel::default();
        let clean = m.query_cost(&sc, &q, &no_indexes);
        m.quirk_eps = 0.05;
        let noisy = m.query_cost(&sc, &q, &no_indexes);
        assert!(noisy >= clean * 0.999 && noisy <= clean * 1.051);
    }
}
