//! Observability primitives for ixtune: a lock-cheap metrics registry and
//! a bounded tracing recorder. Both are std-only and deliberately free of
//! workspace dependencies so every crate — core enumerators, the
//! optimizer, the service — can emit into them without layering cycles.
//!
//! * [`metrics`] — counters, gauges, and fixed-bucket histograms behind an
//!   atomic hot path, registered by name + label pairs in a
//!   [`MetricsRegistry`] that renders Prometheus text exposition;
//! * [`trace`] — a [`TraceRecorder`]: a bounded ring buffer of completed
//!   spans and instant events with monotonic microsecond timestamps and
//!   per-session scopes, serializable to Chrome-trace-viewer JSON.
//!
//! Neither type knows anything about tuning; the domain-specific
//! instrument bundle lives in `ixtune_core::obs`, which holds `Arc`s to
//! instruments created here and is a no-op when disabled.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{SpanRecord, TraceRecorder};
