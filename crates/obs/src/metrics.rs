//! A small Prometheus-style metrics registry.
//!
//! Instruments are registered once (a mutex-guarded map keyed by metric
//! name + label pairs) and handed out as `Arc`s; after registration every
//! update is a relaxed atomic operation, so the hot path never touches the
//! registry lock. [`MetricsRegistry::render`] produces Prometheus text
//! exposition (`# HELP` / `# TYPE` groups, one sample line per series).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits so it
/// can carry ratios as well as integral levels.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram: cumulative-style exposition over a static list
/// of upper bounds. Observations are two relaxed atomic adds (bucket +
/// count) and a compare-exchange loop for the running sum.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; an implicit `+Inf` bucket
    /// follows the last.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (non-cumulative; `render` prefixes).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let slot = self.bounds.partition_point(|&b| b < v);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with `(+Inf, total)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// One registered series: its label pairs and the instrument behind it.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// All series sharing one metric name (and therefore one TYPE/HELP).
struct Family {
    help: String,
    kind: &'static str,
    series: Vec<(Vec<(String, String)>, Instrument)>,
}

impl Family {
    fn find(&self, labels: &[(String, String)]) -> Option<&Instrument> {
        self.series
            .iter()
            .find(|(l, _)| l == labels)
            .map(|(_, i)| i)
    }
}

/// Registry of metric families. Registration takes the lock; updates via
/// the returned `Arc`s never do. Registering the same name + labels twice
/// returns the existing instrument, so instrument bundles can be rebuilt
/// per session against a shared registry without double counting.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let labels = own(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = entry(&mut fams, name, help, "counter");
        if let Some(Instrument::Counter(c)) = fam.find(&labels) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        fam.series
            .push((labels, Instrument::Counter(Arc::clone(&c))));
        c
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let labels = own(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = entry(&mut fams, name, help, "gauge");
        if let Some(Instrument::Gauge(g)) = fam.find(&labels) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        fam.series.push((labels, Instrument::Gauge(Arc::clone(&g))));
        g
    }

    /// Get or create a histogram series with the given bucket bounds.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let labels = own(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = entry(&mut fams, name, help, "histogram");
        if let Some(Instrument::Histogram(h)) = fam.find(&labels) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(bounds));
        fam.series
            .push((labels, Instrument::Histogram(Arc::clone(&h))));
        h
    }

    /// Current value of a registered counter, if present (test/assertion
    /// convenience; production readers should scrape [`render`]).
    ///
    /// [`render`]: Self::render
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let labels = own(labels);
        let fams = self.families.lock().unwrap();
        match fams.get(name)?.find(&labels)? {
            Instrument::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Render Prometheus text exposition (version 0.0.4). Families come
    /// out in name order (the map is a `BTreeMap`) and series within a
    /// family in label order, so two scrapes of the same registry are
    /// line-for-line comparable regardless of registration order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fams = self.families.lock().unwrap();
        for (name, fam) in fams.iter() {
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
            let mut series: Vec<&(Vec<(String, String)>, Instrument)> = fam.series.iter().collect();
            series.sort_by(|(a, _), (b, _)| a.cmp(b));
            for (labels, inst) in series {
                match inst {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", label_set(labels, &[]), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", label_set(labels, &[]), num(g.get()));
                    }
                    Instrument::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            let le = if bound.is_infinite() {
                                "+Inf".to_string()
                            } else {
                                num(bound)
                            };
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                label_set(labels, &[("le", &le)])
                            );
                        }
                        let _ =
                            writeln!(out, "{name}_sum{} {}", label_set(labels, &[]), num(h.sum()));
                        let _ =
                            writeln!(out, "{name}_count{} {}", label_set(labels, &[]), h.count());
                    }
                }
            }
        }
        out
    }
}

fn own(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn entry<'m>(
    fams: &'m mut BTreeMap<String, Family>,
    name: &str,
    help: &str,
    kind: &'static str,
) -> &'m mut Family {
    let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
        help: help.to_string(),
        kind,
        series: Vec::new(),
    });
    debug_assert_eq!(fam.kind, kind, "metric {name} re-registered as {kind}");
    fam
}

/// Format `{k="v",...}` from the series labels plus extras (histogram `le`),
/// or the empty string when there are none.
fn label_set(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

/// Compact float formatting: integral values without a trailing `.0` (so
/// counters-as-gauges read naturally), everything else via `{}`.
fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x_total", "help", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter_value("x_total", &[]), Some(5));
        let g = reg.gauge("depth", "help", &[("kind", "queue")]);
        g.set(3.0);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn reregistration_returns_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("dup_total", "h", &[("s", "0")]);
        let b = reg.counter("dup_total", "h", &[("s", "0")]);
        a.inc();
        assert_eq!(b.get(), 1, "same series, same atomic");
        let other = reg.counter("dup_total", "h", &[("s", "1")]);
        assert_eq!(other.get(), 0, "distinct labels, distinct series");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        let cum = h.cumulative();
        assert_eq!(cum[0], (0.1, 1));
        assert_eq!(cum[1], (1.0, 3));
        assert_eq!(cum[2], (10.0, 4));
        assert_eq!(cum[3].1, 5);
        assert!(cum[3].0.is_infinite());
    }

    #[test]
    fn boundary_observation_lands_in_its_bucket() {
        // `le` is inclusive: an observation exactly on a bound counts there.
        let h = Histogram::new(&[1.0]);
        h.observe(1.0);
        assert_eq!(h.cumulative()[0], (1.0, 1));
    }

    #[test]
    fn render_is_valid_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "things", &[("phase", "other")])
            .add(7);
        reg.gauge("b", "level", &[]).set(2.5);
        reg.histogram("lat_seconds", "latency", &[], &[0.1, 1.0])
            .observe(0.2);
        let text = reg.render();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{phase=\"other\"} 7"));
        assert!(text.contains("b 2.5"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 0"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_seconds_count 1"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value == "+Inf" || value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn render_sorts_series_within_a_family() {
        // Register shards out of order; the exposition must not depend on
        // registration order (scrapes diff cleanly, dashboards are stable).
        let reg = MetricsRegistry::new();
        for shard in ["7", "2", "0", "5"] {
            reg.counter("shard_total", "h", &[("shard", shard)]).inc();
        }
        let text = reg.render();
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("shard_total{"))
            .collect();
        assert_eq!(
            lines,
            vec![
                "shard_total{shard=\"0\"} 1",
                "shard_total{shard=\"2\"} 1",
                "shard_total{shard=\"5\"} 1",
                "shard_total{shard=\"7\"} 1",
            ]
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("esc_total", "h", &[("v", "a\"b\\c")]).inc();
        assert!(reg.render().contains("esc_total{v=\"a\\\"b\\\\c\"} 1"));
    }
}
