//! A bounded span/event recorder with Chrome-trace-viewer export.
//!
//! The recorder keeps completed spans in a mutex-guarded ring buffer:
//! recording happens at phase boundaries (enumeration steps, MCTS
//! episodes, checkpoint writes), never inside per-candidate inner loops,
//! so a short critical section is cheap relative to the work being traced.
//! Timestamps are microseconds from a single monotonic origin captured at
//! construction, so spans from different threads and sessions order
//! consistently. When the ring is full the oldest records are dropped and
//! counted — a long-lived daemon keeps the most recent window.
//!
//! [`chrome_trace`](TraceRecorder::chrome_trace) renders the JSON array
//! format understood by `chrome://tracing` / Perfetto: complete events
//! (`"ph":"X"`) with `pid` = session scope and `tid` = recording thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span (`dur_us > 0`) or instant event (`dur_us == 0`).
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name, e.g. `greedy-step`.
    pub name: String,
    /// Category lane, e.g. `mcts`, `checkpoint`.
    pub cat: &'static str,
    /// Microseconds from the recorder's origin.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instant events and for spans
    /// shorter than the clock tick).
    pub dur_us: u64,
    /// True for instant events ([`TraceRecorder::event`]); false for
    /// completed spans — sub-microsecond spans have `dur_us == 0` too, so
    /// the kind is explicit rather than inferred from the duration.
    pub instant: bool,
    /// Session scope (the service's session id; 0 outside the service).
    pub scope: u64,
    /// Recording thread, as a small process-wide ordinal.
    pub tid: u64,
    /// Free-form key/value annotations (step number, chosen index, …).
    pub args: Vec<(String, String)>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A stable small id for the current thread (first use assigns one).
pub fn thread_ordinal() -> u64 {
    TID.with(|t| *t)
}

/// Bounded ring buffer of [`SpanRecord`]s with one monotonic clock.
pub struct TraceRecorder {
    origin: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            origin: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since the recorder's origin — the timestamp base every
    /// span start must come from.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Record a span that started at `start_us` (from [`now_us`]) and ends
    /// now.
    ///
    /// [`now_us`]: Self::now_us
    pub fn complete(
        &self,
        name: &str,
        cat: &'static str,
        scope: u64,
        start_us: u64,
        args: Vec<(String, String)>,
    ) {
        let end = self.now_us();
        self.push(SpanRecord {
            name: name.to_string(),
            cat,
            ts_us: start_us,
            dur_us: end.saturating_sub(start_us),
            instant: false,
            scope,
            tid: thread_ordinal(),
            args,
        });
    }

    /// Record an instant event at the current time.
    pub fn event(&self, name: &str, cat: &'static str, scope: u64, args: Vec<(String, String)>) {
        self.push(SpanRecord {
            name: name.to_string(),
            cat,
            ts_us: self.now_us(),
            dur_us: 0,
            instant: true,
            scope,
            tid: thread_ordinal(),
            args,
        });
    }

    fn push(&self, rec: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot the records for `scope` (or all scopes when `None`).
    pub fn records(&self, scope: Option<u64>) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap();
        ring.iter()
            .filter(|r| scope.is_none_or(|s| r.scope == s))
            .cloned()
            .collect()
    }

    /// Render the Chrome trace-viewer JSON array for `scope` (or all
    /// scopes). Complete events use `"ph":"X"`, instants `"ph":"i"`;
    /// `pid` carries the session scope so multi-session traces split into
    /// process lanes.
    pub fn chrome_trace(&self, scope: Option<u64>) -> String {
        let mut out = String::from("[");
        for (i, r) in self.records(scope).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{");
            push_kv(&mut out, "name", &r.name, true);
            out.push(',');
            push_kv(&mut out, "cat", r.cat, true);
            out.push(',');
            let ph = if r.instant { "i" } else { "X" };
            push_kv(&mut out, "ph", ph, true);
            out.push_str(&format!(",\"ts\":{},\"dur\":{}", r.ts_us, r.dur_us));
            out.push_str(&format!(",\"pid\":{},\"tid\":{}", r.scope, r.tid));
            out.push_str(",\"args\":{");
            for (j, (k, v)) in r.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_kv(&mut out, k, v, true);
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }
}

fn push_kv(out: &mut String, k: &str, v: &str, quote_value: bool) {
    out.push('"');
    escape_into(out, k);
    out.push_str("\":");
    if quote_value {
        out.push('"');
        escape_into(out, v);
        out.push('"');
    } else {
        out.push_str(v);
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_monotonic_times() {
        let rec = TraceRecorder::new(16);
        let t0 = rec.now_us();
        rec.complete("step", "greedy", 1, t0, vec![("k".into(), "0".into())]);
        let spans = rec.records(None);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].ts_us >= t0);
        assert_eq!(spans[0].scope, 1);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let rec = TraceRecorder::new(3);
        for i in 0..5 {
            rec.event(&format!("e{i}"), "t", 0, vec![]);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let names: Vec<String> = rec.records(None).into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn scope_filter_selects_one_session() {
        let rec = TraceRecorder::new(16);
        rec.event("a", "t", 1, vec![]);
        rec.event("b", "t", 2, vec![]);
        rec.event("c", "t", 1, vec![]);
        assert_eq!(rec.records(Some(1)).len(), 2);
        assert_eq!(rec.records(Some(2)).len(), 1);
        assert_eq!(rec.records(None).len(), 3);
    }

    #[test]
    fn chrome_trace_is_wellformed_json() {
        let rec = TraceRecorder::new(16);
        let t0 = rec.now_us();
        rec.complete(
            "ep\"isode",
            "mcts",
            7,
            t0,
            vec![("best".into(), "0.25".into())],
        );
        rec.event("mark", "svc", 7, vec![]);
        let json = rec.chrome_trace(Some(7));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"pid\":7"));
        assert!(json.contains("ep\\\"isode"));
        // Balanced braces/brackets outside strings — cheap well-formedness.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn thread_ordinals_are_stable_per_thread() {
        let here = thread_ordinal();
        assert_eq!(here, thread_ordinal());
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, other);
    }
}
