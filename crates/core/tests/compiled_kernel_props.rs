//! Bit-identity property tests for the compiled what-if kernel.
//!
//! DESIGN.md §9 promises that the compiled per-query plan tables are a
//! pure performance change: every cost the compiled kernel produces is
//! bit-for-bit the value the interpreted reference model computes,
//! including the deterministic `quirk_eps` jitter (which hashes the scan
//! slots and the accumulated total, so any float-op reordering would show
//! up immediately). These tests force the kernel on and off explicitly
//! (so they hold regardless of the `IXTUNE_COMPILED` environment), across
//! synthetic instances, all five paper benchmark instances, quirk on/off,
//! all five enumerators, and serial/parallel session threads.

use ixtune_candidates::{generate_default, CandidateSet};
use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_core::prelude::*;
use ixtune_optimizer::{CostModel, SimulatedOptimizer, WhatIfOptimizer};
use ixtune_workload::gen::BenchmarkKind;
use proptest::prelude::*;

fn model(quirk: bool) -> CostModel {
    let mut m = CostModel::default();
    if quirk {
        m.quirk_eps = 0.05;
    }
    m
}

fn context(seed: u64, quirk: bool) -> (SimulatedOptimizer, CandidateSet) {
    let inst = ixtune_workload::gen::synth::instance(seed);
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), model(quirk));
    (opt, cands)
}

fn tuners() -> Vec<(&'static str, Box<dyn Tuner>)> {
    vec![
        ("vanilla", Box::new(VanillaGreedy)),
        ("two-phase", Box::new(TwoPhaseGreedy)),
        ("autoadmin", Box::new(AutoAdminGreedy::default())),
        ("mcts", Box::new(MctsTuner::default())),
        (
            "mcts-root4",
            Box::new(MctsTuner::default().with_root_workers(4)),
        ),
    ]
}

/// Zero the counters that record *how* the session executed rather than
/// what it computed. The kernel choice is pure evaluation speed, so
/// everything else — including `derivations` — must match exactly.
fn strip_execution(mut t: SessionTelemetry) -> SessionTelemetry {
    t.session_threads = 0;
    t.parallel_scans = 0;
    t.wall_clock_ms = 0.0;
    t.warm_hits = 0;
    t.warm_seeded = 0;
    t
}

fn prop_identical(
    name: &str,
    compiled: &TuningResult,
    interp: &TuningResult,
) -> Result<(), TestCaseError> {
    let _ = name;
    prop_assert_eq!(&compiled.config, &interp.config);
    prop_assert_eq!(compiled.calls_used, interp.calls_used);
    prop_assert_eq!(compiled.improvement.to_bits(), interp.improvement.to_bits());
    prop_assert_eq!(compiled.layout.cells(), interp.layout.cells());
    prop_assert_eq!(
        strip_execution(compiled.telemetry),
        strip_execution(interp.telemetry)
    );
    Ok(())
}

/// A small deterministic family of configurations over an `n`-candidate
/// universe: empty, singletons, pairs, and triples spread by a fixed
/// stride.
fn config_sweep(n: usize, count: usize) -> Vec<IndexSet> {
    (0..count)
        .map(|i| {
            IndexSet::from_ids(
                n,
                (0..i % 4).map(move |j| IndexId::from((i * 31 + j * 17 + 1) % n)),
            )
        })
        .collect()
}

proptest! {
    // Each case runs 5 enumerators x compiled+interpreted sessions.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whole tuning sessions are bit-identical between the compiled
    /// kernel and the interpreted reference model, for every enumerator
    /// and for serial and parallel session threads.
    #[test]
    fn compiled_kernel_never_changes_the_result(
        inst_seed in 0u64..200,
        seed in 0u64..16,
        k in 2usize..5,
        budget in 10usize..40,
        thread_choice in 0usize..2,
        quirk in any::<bool>(),
    ) {
        let threads = [1usize, 4][thread_choice];
        let (mut compiled_opt, cands) = context(inst_seed, quirk);
        compiled_opt.set_compiled(true);
        let (mut interp_opt, _) = context(inst_seed, quirk);
        interp_opt.set_compiled(false);
        prop_assert!(compiled_opt.compiled_enabled());
        prop_assert!(!interp_opt.compiled_enabled());
        prop_assert_eq!(
            compiled_opt.compiled_query_count(),
            WhatIfOptimizer::num_queries(&compiled_opt)
        );
        prop_assert_eq!(interp_opt.compiled_query_count(), 0);
        let req = TuningRequest::cardinality(k, budget)
            .with_seed(seed)
            .with_session_threads(threads);
        for (name, tuner) in &tuners() {
            let c = tuner.tune(&TuningContext::new(&compiled_opt, &cands), &req);
            let i = tuner.tune(&TuningContext::new(&interp_opt, &cands), &req);
            prop_identical(name, &c, &i)?;
        }
        prop_assert!(
            compiled_opt.compiled_calls_served() > 0,
            "sessions actually exercised the kernel"
        );
    }

    /// Individual what-if costs match the interpreted oracle bit for bit
    /// on arbitrary (query, configuration) cells.
    #[test]
    fn compiled_costs_are_bit_identical(
        inst_seed in 0u64..300,
        quirk in any::<bool>(),
        picks in proptest::collection::vec((0usize..4096, 0usize..1024), 1..40),
    ) {
        let (mut opt, _) = context(inst_seed, quirk);
        opt.set_compiled(true);
        let n = WhatIfOptimizer::num_candidates(&opt);
        let m = WhatIfOptimizer::num_queries(&opt);
        for (ci, qi) in picks {
            let cfg = IndexSet::from_ids(
                n,
                (0..ci % 4).map(|j| IndexId::from((ci * 31 + j * 17 + 1) % n)),
            );
            let q = QueryId::from(qi % m);
            let got = opt.what_if_cost(q, &cfg);
            let want = opt.interpreted_what_if_cost(q, &cfg);
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}

/// Every paper benchmark instance, quirk on and off: a deterministic
/// sweep of configuration cells plus one greedy session per instance,
/// compiled versus interpreted.
#[test]
fn benchmark_instances_compile_bit_identically() {
    for kind in BenchmarkKind::ALL {
        for quirk in [false, true] {
            let inst = kind.generate();
            let cands = generate_default(&inst);
            let mut opt =
                SimulatedOptimizer::new(inst.clone(), cands.indexes.clone(), model(quirk));
            opt.set_compiled(true);
            let n = cands.len();
            let m = WhatIfOptimizer::num_queries(&opt);
            for cfg in config_sweep(n, 64) {
                for qi in 0..m.min(10) {
                    let q = QueryId::from(qi);
                    let got = opt.what_if_cost(q, &cfg);
                    let want = opt.interpreted_what_if_cost(q, &cfg);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kind:?} quirk={quirk} q={qi}: compiled {got} vs interpreted {want}"
                    );
                }
            }

            // One full greedy session per instance: the kernel choice must
            // not change the recommendation or any result-level counter.
            let mut interp = SimulatedOptimizer::new(inst, cands.indexes.clone(), model(quirk));
            interp.set_compiled(false);
            let req = TuningRequest::cardinality(4, 30).with_seed(7);
            let c = VanillaGreedy.tune(&TuningContext::new(&opt, &cands), &req);
            let i = VanillaGreedy.tune(&TuningContext::new(&interp, &cands), &req);
            assert_eq!(c.config, i.config, "{kind:?} quirk={quirk}");
            assert_eq!(c.calls_used, i.calls_used);
            assert_eq!(c.improvement.to_bits(), i.improvement.to_bits());
            assert_eq!(c.layout.cells(), i.layout.cells());
            assert_eq!(strip_execution(c.telemetry), strip_execution(i.telemetry));
        }
    }
}
