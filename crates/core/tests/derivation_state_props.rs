//! Property tests pinning the incremental derivation engine to the full
//! rescan it replaced. The enumerators were rewritten around
//! `DerivationState` + `WhatIfCache::derived_with_extra` on the promise of
//! *bit-for-bit* equality with fresh `derived_workload` recomputation —
//! these tests check `==` on `f64`s, not approximate closeness.
//!
//! Caches are generated monotone (cost of a superset never exceeds the
//! cost of a subset), matching Assumption 1 of the paper; the exact-hit
//! shortcut in `WhatIfCache::derived` relies on it.

use ixtune_common::{IndexId, IndexSet, QueryId};
use ixtune_core::{DerivationState, WhatIfCache};
use proptest::prelude::*;

const UNIVERSE: usize = 12;
const QUERIES: usize = 3;

/// Deterministic monotone cost model: `c(q, C) = empty_q · Π_{i∈C} f_{q,i}`
/// with every factor in `[0.5, 1)`. A function of the set, so repeated
/// inserts of the same configuration are consistent, and adding an index
/// never increases the cost.
fn true_cost(empty: f64, factors: &[f64], config: &IndexSet) -> f64 {
    config
        .iter()
        .fold(empty, |acc, id| acc * factors[id.index()])
}

fn build_set(ids: &[usize]) -> IndexSet {
    IndexSet::from_ids(UNIVERSE, ids.iter().map(|&i| IndexId::from(i)))
}

/// A random cache primed with what-if results for random configurations.
/// Returns the cache and the list of distinct non-empty configs inserted.
fn primed(
    empties: &[f64],
    factors: &[Vec<f64>],
    entries: &[(usize, Vec<usize>)],
) -> (WhatIfCache, Vec<(usize, IndexSet)>) {
    let mut cache = WhatIfCache::new(UNIVERSE, empties.to_vec());
    let mut inserted = Vec::new();
    for (q, ids) in entries {
        let config = build_set(ids);
        if config.is_empty() {
            continue;
        }
        let cost = true_cost(empties[*q], &factors[*q], &config);
        if cache.put(QueryId::from(*q), &config, cost) {
            inserted.push((*q, config));
        }
    }
    (cache, inserted)
}

/// Per-query empty costs, per-(query, index) cost factors, and a batch of
/// (query, config) what-if results to prime the cache with.
type CacheInputs = (Vec<f64>, Vec<Vec<f64>>, Vec<(usize, Vec<usize>)>);

fn cache_inputs() -> impl Strategy<Value = CacheInputs> {
    (
        prop::collection::vec(50.0..150.0f64, QUERIES),
        prop::collection::vec(prop::collection::vec(0.5..1.0f64, UNIVERSE), QUERIES),
        prop::collection::vec(
            (0..QUERIES, prop::collection::vec(0..UNIVERSE, 0..4)),
            0..40,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The postings-guided `derived_with_extra` equals the linear-scan
    /// oracle *and* a fresh full derivation of `C ∪ {x}`, exactly.
    #[test]
    fn with_extra_equals_scan_and_fresh_derivation(
        (empties, factors, entries) in cache_inputs(),
        config_ids in prop::collection::vec(0..UNIVERSE, 0..5),
        extra in 0..UNIVERSE,
    ) {
        let (cache, _) = primed(&empties, &factors, &entries);
        let mut config = build_set(&config_ids);
        config.remove(IndexId::from(extra));
        let x = IndexId::from(extra);
        for q in 0..QUERIES {
            let q = QueryId::from(q);
            let current = cache.derived(q, &config);
            let fast = cache.derived_with_extra(q, &config, x, current);
            let scan = cache.derived_with_extra_scan(q, &config, x, current);
            let fresh = cache.derived(q, &config.with(x));
            prop_assert_eq!(fast.to_bits(), scan.to_bits());
            prop_assert_eq!(fast.to_bits(), fresh.to_bits());
        }
    }

    /// Probe / stage / commit sequences over a random action list agree
    /// exactly with fresh `derived_workload` recomputation, for both
    /// commit flavors, and the derivation telemetry counter advances by
    /// exactly one per (query, probe).
    #[test]
    fn state_tracks_fresh_recomputation(
        (empties, factors, entries) in cache_inputs(),
        actions in prop::collection::vec((0..UNIVERSE, any::<bool>()), 1..8),
    ) {
        let (cache, _) = primed(&empties, &factors, &entries);
        let mut state = DerivationState::workload(&cache);
        prop_assert_eq!(state.total().to_bits(), cache.empty_workload_cost().to_bits());

        for (idx, staged_commit) in actions {
            let x = IndexId::from(idx);
            if state.config().contains(x) {
                continue;
            }

            let before = cache.derivations();
            let probed = state.probe_extend(&cache, x);
            prop_assert_eq!(cache.derivations(), before + QUERIES);

            let fresh = cache.derived_workload(&state.config().with(x));
            prop_assert_eq!(probed.to_bits(), fresh.to_bits());

            if staged_commit {
                // FCFS-style path: probe via the buffer, stage, commit free.
                let total = state.probe_with(x, &mut |q, cfg, extra, cur| {
                    cache.derived_with_extra(q, cfg, extra, cur)
                });
                prop_assert_eq!(total.to_bits(), probed.to_bits());
                state.stage_probe();
                state.commit_staged(x, total);
            } else {
                // Best-Greedy path: re-derive at commit time.
                state.commit_recompute(&cache, x);
            }

            prop_assert_eq!(
                state.total().to_bits(),
                cache.derived_workload(state.config()).to_bits()
            );
            for (i, &v) in state.per_query().iter().enumerate() {
                let fresh_q = cache.derived(QueryId::from(i), state.config());
                prop_assert_eq!(v.to_bits(), fresh_q.to_bits());
            }
        }
    }

    /// `put_new` (the unchecked insert used by `MeteredWhatIf::what_if`)
    /// builds a cache indistinguishable from one built with checked `put`s.
    #[test]
    fn put_new_cache_is_indistinguishable(
        (empties, factors, entries) in cache_inputs(),
        probe_ids in prop::collection::vec(0..UNIVERSE, 0..5),
    ) {
        let (checked, _) = primed(&empties, &factors, &entries);
        let mut unchecked = WhatIfCache::new(UNIVERSE, empties.clone());
        for (q, ids) in &entries {
            let config = build_set(ids);
            if config.is_empty() {
                continue;
            }
            let q = QueryId::from(*q);
            if unchecked.get(q, &config).is_none() {
                let cost = true_cost(empties[q.index()], &factors[q.index()], &config);
                unchecked.put_new(q, &config, cost);
            }
        }
        prop_assert_eq!(checked.stored_results(), unchecked.stored_results());
        let probe = build_set(&probe_ids);
        for q in 0..QUERIES {
            let q = QueryId::from(q);
            prop_assert_eq!(
                checked.derived(q, &probe).to_bits(),
                unchecked.derived(q, &probe).to_bits()
            );
        }
    }
}
