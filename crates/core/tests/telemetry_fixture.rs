//! Schema-migration tests: the v1 reader must keep reading the telemetry
//! sidecars already checked into `results/`, and the v1 → v2 conversion
//! must be lossless over them.

use ixtune_core::budget::SessionTelemetry;
use ixtune_core::telemetry::{v1, TelemetryV2, TELEMETRY_VERSION};

/// A frozen v1 sidecar excerpt (rows copied from
/// `results/fig8.telemetry.json`, plus one truncated row of the earliest
/// shape that predates the phase counters).
const FIXTURE: &str = include_str!("fixtures/telemetry_v1.json");

#[test]
fn v1_fixture_reads_and_converts() {
    let rows = v1::read_rows(FIXTURE).expect("fixture parses as v1");
    assert_eq!(rows.len(), 3);

    let greedy = &rows[0];
    assert_eq!(greedy.algorithm, "Vanilla Greedy");
    assert_eq!((greedy.k, greedy.budget, greedy.seeds), (5, 1000, 1));
    assert_eq!(greedy.telemetry.what_if_calls, 1000);
    assert_eq!(greedy.telemetry.derivations, 112_553);

    let mcts = rows[1].to_v2();
    assert_eq!(mcts.version, TELEMETRY_VERSION);
    assert_eq!(mcts.calls.what_if_calls, 5000);
    assert_eq!(mcts.calls.priors_calls, 2500);
    assert_eq!(mcts.calls.rollout_calls, 2500);
    assert_eq!(mcts.cache.derivations, 1_665_051);
    assert_eq!(mcts.wall_clock_ms, 71.213_638);

    // The earliest v1 shape: counters after `derivations` absent entirely.
    let old = &rows[2];
    assert_eq!(old.telemetry.cache_hits, 121);
    assert_eq!(old.telemetry.other_calls, 0, "missing fields read as 0");
    assert_eq!(old.telemetry.wall_clock_ms, 0.0);
}

#[test]
fn v1_to_v2_conversion_is_lossless() {
    for row in v1::read_rows(FIXTURE).expect("fixture parses as v1") {
        let v2: TelemetryV2 = row.to_v2();
        let back: SessionTelemetry = v2.into();
        assert_eq!(back, row.telemetry, "{}", row.algorithm);
        // Round-trip through JSON too: the serialized v2 form decodes to
        // the same sections.
        let json = serde_json::to_string(&v2).unwrap();
        let reparsed: TelemetryV2 = serde_json::from_str(&json).unwrap();
        assert_eq!(reparsed, v2);
    }
}

#[test]
fn v1_reader_covers_the_checked_in_results() {
    // The real sidecar shipped before the schema was versioned; it has to
    // stay readable verbatim.
    let shipped = include_str!("../../../results/fig8.telemetry.json");
    let rows = v1::read_rows(shipped).expect("results/fig8.telemetry.json is v1");
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.telemetry.what_if_calls > 0));
}
