//! Bit-identity property tests for the daemon-wide warm cost store.
//!
//! DESIGN.md §8 promises that seeding a session from a warm snapshot only
//! changes *which* costs are warm-served versus simulated — never the
//! tuning outcome. These tests run every enumerator cold (no warm state),
//! as a donor (empty warm state that records its ledger), and warm
//! (seeded from the donor's absorbed snapshot), across serial and
//! parallel session threads, and require bit-for-bit equality of the
//! recommended configuration, call layout, improvement bits, and every
//! execution-invariant telemetry counter. The warm run must additionally
//! collapse the simulated-optimizer invocation count.

use ixtune_candidates::{generate_default, CandidateSet};
use ixtune_core::prelude::*;
use ixtune_core::{WarmState, WarmStore};
use ixtune_optimizer::{CostModel, SimulatedOptimizer, WhatIfOptimizer};
use proptest::prelude::*;
use std::sync::Arc;

fn context(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
    let inst = ixtune_workload::gen::synth::instance(seed);
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    (opt, cands)
}

fn tuners() -> Vec<(&'static str, Box<dyn Tuner>)> {
    vec![
        ("vanilla", Box::new(VanillaGreedy)),
        ("two-phase", Box::new(TwoPhaseGreedy)),
        ("autoadmin", Box::new(AutoAdminGreedy::default())),
        ("mcts", Box::new(MctsTuner::default())),
        (
            "mcts-root4",
            Box::new(MctsTuner::default().with_root_workers(4)),
        ),
    ]
}

/// Zero the counters that record *how* the session executed rather than
/// what it computed. Warm provenance counters are execution detail by
/// definition: they say where answers came from, not what they were.
fn strip_execution(mut t: SessionTelemetry) -> SessionTelemetry {
    t.session_threads = 0;
    t.parallel_scans = 0;
    t.wall_clock_ms = 0.0;
    t.warm_hits = 0;
    t.warm_seeded = 0;
    t
}

fn prop_identical(
    name: &str,
    cold: &TuningResult,
    warm: &TuningResult,
) -> Result<(), TestCaseError> {
    let _ = name;
    prop_assert_eq!(&cold.config, &warm.config);
    prop_assert_eq!(cold.calls_used, warm.calls_used);
    prop_assert_eq!(cold.improvement.to_bits(), warm.improvement.to_bits());
    prop_assert_eq!(cold.layout.cells(), warm.layout.cells());
    prop_assert_eq!(
        strip_execution(cold.telemetry),
        strip_execution(warm.telemetry)
    );
    Ok(())
}

proptest! {
    // Each case runs 5 enumerators x 2 thread counts x 3 sessions.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cold, donor (empty warm state), and seeded warm runs are
    /// bit-identical for every enumerator; the seeded run answers every
    /// budgeted what-if from the snapshot and stops invoking the
    /// simulated optimizer.
    #[test]
    fn warm_seeding_never_changes_the_result(
        inst_seed in 0u64..200,
        seed in 0u64..16,
        k in 2usize..5,
        budget in 10usize..40,
        thread_choice in 0usize..2,
    ) {
        let threads = [1usize, 4][thread_choice];
        let (opt, cands) = context(inst_seed);
        let req = TuningRequest::cardinality(k, budget)
            .with_seed(seed)
            .with_session_threads(threads);
        for (name, tuner) in &tuners() {
            let fp = opt.content_fingerprint();
            let nq = WhatIfOptimizer::num_queries(&opt);
            let store = WarmStore::new(64 << 20);

            // Cold: no warm state wired at all.
            let before = opt.calls_served();
            let cold = tuner.tune(&TuningContext::new(&opt, &cands), &req);
            let cold_sim = opt.calls_served() - before;

            // Donor: empty snapshot, records its ledger into the store.
            let donor_state = Arc::new(WarmState::new(
                store.checkout("w", fp, nq, cands.len()),
            ));
            let donor = tuner.tune(
                &TuningContext::new(&opt, &cands).with_warm(Arc::clone(&donor_state)),
                &req,
            );
            prop_identical(name, &cold, &donor)?;
            prop_assert_eq!(donor.telemetry.warm_hits, 0);
            let absorbed = store.absorb("w", fp, nq, cands.len(), donor_state.drain());
            prop_assert!(absorbed > 0, "{}: donor ledger absorbed", name);

            // Warm: seeded from the donor's published snapshot.
            let warm_state = Arc::new(WarmState::new(
                store.checkout("w", fp, nq, cands.len()),
            ));
            let before = opt.calls_served();
            let warm = tuner.tune(
                &TuningContext::new(&opt, &cands).with_warm(warm_state),
                &req,
            );
            let warm_sim = opt.calls_served() - before;

            prop_identical(name, &cold, &warm)?;
            prop_assert!(warm.telemetry.warm_seeded > 0, "{}: snapshot seeded", name);
            prop_assert_eq!(warm.telemetry.warm_hits, warm.telemetry.what_if_calls);
            prop_assert!(
                warm_sim * 2 <= cold_sim,
                "{}: simulated invocations collapse >=50% (cold {} warm {})",
                name, cold_sim, warm_sim
            );
        }
    }
}
