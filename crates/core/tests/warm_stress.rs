//! Seeded concurrency stress for the warm cost store: absorbs racing
//! checkouts, flushes, and byte-bound eviction. The accounting contract —
//! `stats().bytes` and `stats().entries` equal the sum over resident
//! snapshots, and the byte bound holds after every absorb — must survive
//! arbitrary interleavings; an underflow (the "negative stats" failure
//! mode with unsigned counters) would surface as a debug panic or an
//! astronomically large gauge.

use ixtune_common::{IndexSet, QueryId};
use ixtune_core::WarmStore;
use std::sync::Arc;

const UNIVERSE: usize = 16;
const NUM_QUERIES: usize = 8;

/// SplitMix64: the test's only randomness, fully determined by the seed.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn ledger_for(seed: u64, len: usize) -> Vec<(QueryId, IndexSet, f64)> {
    (0..len)
        .map(|i| {
            let r = mix(seed.wrapping_mul(0x1000_0001).wrapping_add(i as u64));
            let q = QueryId::new((r % NUM_QUERIES as u64) as u32);
            // Any nonzero 16-bit pattern is a valid configuration here.
            let blocks = ((r >> 16) | 1) & ((1u64 << UNIVERSE) - 1);
            let config = IndexSet::from_blocks(UNIVERSE, vec![blocks]).unwrap();
            let cost = ((r >> 24) % 10_000) as f64 / 7.0;
            (q, config, cost)
        })
        .collect()
}

fn check_accounting(store: &WarmStore, tag: &str) {
    let stats = store.stats();
    let tables = store.export_tables();
    let sum_bytes: usize = tables.iter().map(|(_, s)| s.bytes()).sum();
    let sum_entries: usize = tables.iter().map(|(_, s)| s.entries()).sum();
    assert_eq!(
        stats.bytes, sum_bytes,
        "{tag}: byte gauge drifted from resident snapshots"
    );
    assert_eq!(
        stats.entries, sum_entries,
        "{tag}: entry gauge drifted from resident snapshots"
    );
    assert!(
        stats.bytes < (1 << 40),
        "{tag}: byte gauge underflowed: {}",
        stats.bytes
    );
}

/// Many threads absorb into a store small enough that eviction fires
/// constantly, racing checkouts and flushes. After every absorb the byte
/// bound holds, and when the dust settles the gauges equal a from-scratch
/// recount of the resident snapshots.
#[test]
fn eviction_under_concurrent_absorb_keeps_stats_consistent() {
    for seed in [1u64, 7, 42] {
        // Small enough that a handful of workloads overflows it.
        let store = Arc::new(WarmStore::new(8 << 10));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..60u64 {
                        let r = mix(seed ^ (t as u64) << 32 ^ i);
                        let key = format!("w{}", r % 6);
                        let fingerprint = r % 6; // stable per key
                        let ledger = ledger_for(r, 4 + (r % 24) as usize);
                        store.absorb(&key, fingerprint, NUM_QUERIES, UNIVERSE, ledger);
                        let stats = store.stats();
                        assert!(
                            stats.bytes <= stats.max_bytes,
                            "seed {seed} thread {t}: bound violated after absorb: \
                             {} > {}",
                            stats.bytes,
                            stats.max_bytes
                        );
                        // Readers race the absorbs: checked-out snapshots
                        // stay valid regardless of eviction.
                        let snap = store.checkout(&key, fingerprint, NUM_QUERIES, UNIVERSE);
                        assert!(snap.num_queries() == NUM_QUERIES);
                        // An occasional flush empties the store mid-storm.
                        if r.is_multiple_of(97) {
                            store.flush();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("stress thread never panics");
        }
        check_accounting(&store, &format!("seed {seed} settled"));
        let stats = store.stats();
        assert!(
            stats.evictions > 0,
            "seed {seed}: the bound never engaged — stress too weak \
             (bytes {}, max {})",
            stats.bytes,
            stats.max_bytes
        );

        // Re-absorbing an identical ledger adds nothing and moves no
        // accounting: first-write-wins is idempotent.
        let ledger = ledger_for(seed, 16);
        store.absorb("idem", 1, NUM_QUERIES, UNIVERSE, ledger.clone());
        let before = store.stats();
        let added = store.absorb("idem", 1, NUM_QUERIES, UNIVERSE, ledger);
        let after = store.stats();
        assert_eq!(added, 0, "seed {seed}: duplicate ledger adds nothing");
        assert_eq!(before.bytes, after.bytes, "seed {seed}: bytes stable");
        assert_eq!(before.entries, after.entries, "seed {seed}: entries stable");
        check_accounting(&store, &format!("seed {seed} idempotent"));
    }
}
