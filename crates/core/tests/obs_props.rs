//! Observability-invariance property tests.
//!
//! The contract (DESIGN.md §7): observability never perturbs results.
//! Running any enumerator with an enabled [`Obs`] handle — metrics
//! registry plus trace recorder attached — must be *bit-identical* to the
//! disabled run: same configuration, same call layout, same improvement
//! bits, same telemetry counters. And the registry is not an independent
//! bookkeeper: because the mirrored counters are published as deltas off
//! [`SessionTelemetry`], the registry totals after a session equal the
//! final telemetry counters exactly, including under root-parallel MCTS
//! where worker-thread derivations are merged in.

use ixtune_candidates::{generate_default, CandidateSet};
use ixtune_core::prelude::*;
use ixtune_obs::{MetricsRegistry, TraceRecorder};
use ixtune_optimizer::{CostModel, SimulatedOptimizer};
use ixtune_workload::gen::synth;
use proptest::prelude::*;
use std::sync::Arc;

const PHASES: [&str; 4] = ["priors", "selection", "rollout", "other"];

fn context(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
    let inst = synth::instance(seed);
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    (opt, cands)
}

fn tuners() -> Vec<(&'static str, Box<dyn Tuner>)> {
    vec![
        ("vanilla", Box::new(VanillaGreedy)),
        ("twophase", Box::new(TwoPhaseGreedy)),
        ("autoadmin", Box::new(AutoAdminGreedy::default())),
        ("mcts", Box::new(MctsTuner::default())),
        (
            "mcts-root-parallel",
            Box::new(MctsTuner::default().with_root_workers(3)),
        ),
    ]
}

/// Only wall-clock may differ between the observed and unobserved run.
fn strip_wall_clock(mut t: SessionTelemetry) -> SessionTelemetry {
    t.wall_clock_ms = 0.0;
    t
}

fn counter(registry: &MetricsRegistry, name: &str, labels: &[(&str, &str)]) -> u64 {
    registry.counter_value(name, labels).unwrap_or(0)
}

proptest! {
    // Each case runs every enumerator twice (MCTS included); keep modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-identity: results with observability on equal results with it
    /// off, for every enumerator including root-parallel MCTS.
    #[test]
    fn observed_runs_are_bit_identical_to_unobserved(
        inst_seed in 0u64..500,
        seed in 0u64..16,
        k in 2usize..6,
        budget in 0usize..60,
        threads in 1usize..4,
    ) {
        let (opt, cands) = context(inst_seed);
        let request = TuningRequest::cardinality(k, budget)
            .with_seed(seed)
            .with_session_threads(threads);
        for (name, tuner) in tuners() {
            let plain_ctx = TuningContext::new(&opt, &cands);
            let plain = tuner.tune(&plain_ctx, &request);

            let registry = Arc::new(MetricsRegistry::new());
            let tracer = Arc::new(TraceRecorder::new(4096));
            let obs = Obs::enabled(Arc::clone(&registry), Some(tracer), 17);
            let obs_ctx = TuningContext::new(&opt, &cands).with_obs(obs);
            let observed = tuner.tune(&obs_ctx, &request);

            prop_assert!(plain.config == observed.config, "{name}: config");
            prop_assert!(plain.calls_used == observed.calls_used, "{name}: calls");
            prop_assert!(
                plain.improvement.to_bits() == observed.improvement.to_bits(),
                "{name}: improvement bits"
            );
            prop_assert!(plain.layout.cells() == observed.layout.cells(), "{name}: layout");
            prop_assert!(
                strip_wall_clock(plain.telemetry) == strip_wall_clock(observed.telemetry),
                "{name}: telemetry"
            );
        }
    }

    /// Registry ≡ telemetry: after an observed session, every mirrored
    /// registry counter equals the corresponding final telemetry counter.
    #[test]
    fn registry_totals_match_session_telemetry(
        inst_seed in 0u64..500,
        seed in 0u64..16,
        k in 2usize..6,
        budget in 0usize..60,
        threads in 1usize..4,
    ) {
        let (opt, cands) = context(inst_seed);
        let request = TuningRequest::cardinality(k, budget)
            .with_seed(seed)
            .with_session_threads(threads);
        for (name, tuner) in tuners() {
            let registry = Arc::new(MetricsRegistry::new());
            let obs = Obs::enabled(Arc::clone(&registry), None, 1);
            let ctx = TuningContext::new(&opt, &cands).with_obs(obs);
            let t = tuner.tune(&ctx, &request).telemetry;

            let per_phase: Vec<u64> = PHASES
                .iter()
                .map(|p| counter(&registry, "ixtune_whatif_calls_total", &[("phase", p)]))
                .collect();
            prop_assert!(
                per_phase.iter().sum::<u64>() == t.what_if_calls as u64,
                "{name}: total calls {per_phase:?} vs {}", t.what_if_calls
            );
            let expected = [
                t.priors_calls,
                t.selection_calls,
                t.rollout_calls,
                t.other_calls,
            ];
            for (i, phase) in PHASES.iter().enumerate() {
                prop_assert!(
                    per_phase[i] == expected[i] as u64,
                    "{name}: phase {phase}: {} vs {}", per_phase[i], expected[i]
                );
            }
            for (series, want) in [
                ("ixtune_cache_hits_total", t.cache_hits),
                ("ixtune_derivations_total", t.derivations),
                ("ixtune_parallel_scans_total", t.parallel_scans),
                ("ixtune_tree_merges_total", t.tree_merges),
                ("ixtune_reservation_shortfalls_total", t.reservation_shortfalls),
            ] {
                let got = counter(&registry, series, &[]);
                prop_assert!(got == want as u64, "{name}: {series}: {got} vs {want}");
            }
        }
    }
}
