//! End-to-end determinism property tests for intra-session parallelism.
//!
//! DESIGN.md §5c promises that `TuningRequest::session_threads` never
//! changes a tuning outcome — only wall-clock time. These tests run every
//! enumerator serially and with 2/4/8 logical threads (plus an optional
//! `IXTUNE_SESSION_THREADS` count injected by CI) on random synthetic
//! instances and require *bit-for-bit* equality: the recommended
//! configuration, the call layout, the improvement's `f64` bits, and every
//! telemetry counter that is defined to be execution-invariant. The
//! root-parallel MCTS test additionally checks that batched budget
//! reservation never lets the workers oversubscribe `B`.

use ixtune_candidates::{generate_default, CandidateSet};
use ixtune_core::prelude::*;
use ixtune_optimizer::{CostModel, SimulatedOptimizer};
use ixtune_workload::gen::synth;
use proptest::prelude::*;

fn context(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
    let inst = synth::instance(seed);
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    (opt, cands)
}

/// Thread counts to compare against the serial run. CI injects an extra
/// count through `IXTUNE_SESSION_THREADS` so the matrix can pin a value.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![2, 4, 8];
    if let Some(n) = std::env::var("IXTUNE_SESSION_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// Zero the counters that record *how* the session executed rather than
/// what it computed; everything else must match exactly.
fn strip_execution(mut t: SessionTelemetry) -> SessionTelemetry {
    t.session_threads = 0;
    t.parallel_scans = 0;
    t.wall_clock_ms = 0.0;
    t
}

fn prop_identical(serial: &TuningResult, par: &TuningResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(&serial.config, &par.config);
    prop_assert_eq!(serial.calls_used, par.calls_used);
    prop_assert_eq!(serial.improvement.to_bits(), par.improvement.to_bits());
    prop_assert_eq!(serial.layout.cells(), par.layout.cells());
    prop_assert_eq!(
        strip_execution(serial.telemetry),
        strip_execution(par.telemetry)
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Vanilla greedy, two-phase, and AutoAdmin produce bit-identical
    /// results under every session thread count.
    #[test]
    fn greedy_family_is_thread_invariant(
        inst_seed in 0u64..500,
        k in 2usize..6,
        budget in 0usize..60,
    ) {
        let (opt, cands) = context(inst_seed);
        let ctx = TuningContext::new(&opt, &cands);
        let tuners: Vec<Box<dyn Tuner>> = vec![
            Box::new(VanillaGreedy),
            Box::new(TwoPhaseGreedy),
            Box::new(AutoAdminGreedy::default()),
        ];
        let base = TuningRequest::cardinality(k, budget);
        for tuner in &tuners {
            let serial = tuner.tune(&ctx, &base.with_session_threads(1));
            for threads in thread_counts() {
                let par = tuner.tune(&ctx, &base.with_session_threads(threads));
                prop_identical(&serial, &par)?;
            }
        }
    }

    /// Single-tree MCTS (threads only affect extraction) is thread-invariant.
    #[test]
    fn mcts_is_thread_invariant(
        inst_seed in 0u64..500,
        seed in 0u64..16,
        k in 2usize..6,
        budget in 0usize..80,
    ) {
        let (opt, cands) = context(inst_seed);
        let ctx = TuningContext::new(&opt, &cands);
        let tuner = MctsTuner::default();
        let base = TuningRequest::cardinality(k, budget).with_seed(seed);
        let serial = tuner.tune(&ctx, &base.with_session_threads(1));
        for threads in thread_counts() {
            let par = tuner.tune(&ctx, &base.with_session_threads(threads));
            prop_identical(&serial, &par)?;
        }
    }

    /// Root-parallel MCTS: the same worker count run on 1 vs N OS threads
    /// is bit-identical, and the reservation protocol never exceeds `B`.
    #[test]
    fn root_parallel_mcts_is_thread_invariant_and_within_budget(
        inst_seed in 0u64..500,
        seed in 0u64..16,
        workers in 2usize..5,
        budget in 0usize..80,
    ) {
        let (opt, cands) = context(inst_seed);
        let ctx = TuningContext::new(&opt, &cands);
        let tuner = MctsTuner::default().with_root_workers(workers);
        let base = TuningRequest::cardinality(4, budget).with_seed(seed);
        let serial = tuner.tune(&ctx, &base.with_session_threads(1));
        prop_assert!(serial.calls_used <= budget);
        prop_assert_eq!(serial.telemetry.reservation_shortfalls, 0);
        for threads in thread_counts() {
            let par = tuner.tune(&ctx, &base.with_session_threads(threads));
            prop_assert!(par.calls_used <= budget);
            prop_identical(&serial, &par)?;
        }
    }
}
