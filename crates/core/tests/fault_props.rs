//! Property tests for the deterministic fault-injection plane.
//!
//! The contract (DESIGN.md §11): a [`FaultPlan`] is a pure function of
//! one `u64` seed — equal seeds replay bit-identical injection schedules
//! — and enumeration under injected what-if failures degrades to a
//! derivation-only salvage that still honors every constraint, while an
//! inert plan (or one that only perturbs observability) is invisible to
//! the tuning result at the bit level.

use ixtune_candidates::{generate_default, CandidateSet};
use ixtune_common::fault::{site, FaultPlan};
use ixtune_core::prelude::*;
use ixtune_core::SessionFaults;
use ixtune_optimizer::{CostModel, SimulatedOptimizer};
use proptest::prelude::*;

fn context(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
    let inst = ixtune_workload::gen::synth::instance(seed);
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    (opt, cands)
}

fn tuners() -> Vec<(&'static str, Box<dyn Tuner>)> {
    vec![
        ("vanilla", Box::new(VanillaGreedy)),
        ("two-phase", Box::new(TwoPhaseGreedy)),
        ("autoadmin", Box::new(AutoAdminGreedy::default())),
        ("mcts", Box::new(MctsTuner::default())),
        (
            "mcts-root4",
            Box::new(MctsTuner::default().with_root_workers(4)),
        ),
    ]
}

fn strip_execution(mut t: SessionTelemetry) -> SessionTelemetry {
    t.session_threads = 0;
    t.parallel_scans = 0;
    t.wall_clock_ms = 0.0;
    t.warm_hits = 0;
    t.warm_seeded = 0;
    t
}

fn prop_identical(a: &TuningResult, b: &TuningResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.config, &b.config);
    prop_assert_eq!(a.calls_used, b.calls_used);
    prop_assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
    prop_assert_eq!(a.layout.cells(), b.layout.cells());
    prop_assert_eq!(a.stop_reason, b.stop_reason);
    prop_assert_eq!(strip_execution(a.telemetry), strip_execution(b.telemetry));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plan decisions are a pure function of `(seed, site, index)`: a plan
    /// re-parsed from its own canonical `spec()` rendering replays the
    /// identical decision stream on the shared cursor AND on caller-local
    /// cursors, and the per-site injected accounting agrees exactly.
    #[test]
    fn plan_decisions_replay_bit_identically(
        seed in any::<u64>(),
        p in 0.01f64..0.99,
        every in 1u64..9,
        after in 0u64..30,
        n in 20usize..200,
    ) {
        let spec = format!(
            "seed={seed};whatif.error=p{p:.4};persist.append=every{every};wire.drop=after{after}"
        );
        let a = FaultPlan::parse(&spec).unwrap();
        // Round-trip through the canonical rendering: the spec string a
        // failing CI run uploads reproduces the schedule exactly.
        let b = FaultPlan::parse(&a.spec()).unwrap();
        for fault_site in [site::WHATIF_ERROR, site::PERSIST_APPEND, site::WIRE_DROP] {
            for _ in 0..n {
                prop_assert_eq!(a.fire(fault_site), b.fire(fault_site));
            }
            prop_assert_eq!(a.injected(fault_site), b.injected(fault_site));
        }
        // Caller-local cursors replay the same stream from index zero,
        // independent of how far the shared cursor has advanced.
        let mut ca = a.cursor(site::WHATIF_ERROR);
        let mut cb = b.cursor(site::WHATIF_ERROR);
        for _ in 0..n {
            prop_assert_eq!(ca.fire(), cb.fire());
        }
        // Sites the spec does not mention never fire.
        prop_assert!(!a.fire(site::WORKER_PANIC));
        prop_assert_eq!(a.injected(site::WORKER_PANIC), 0);
    }

    /// Enumeration under an injected what-if failure never hangs, never
    /// violates a constraint, and never invents budget: every tuner
    /// returns a valid configuration within `k` and `budget`. When the
    /// fault fired mid-search the session reports `Degraded`; when the
    /// session finished before its trigger, the result is bit-identical
    /// to a fault-free run.
    #[test]
    fn enumeration_salvages_a_valid_config_under_whatif_faults(
        inst_seed in 0u64..100,
        seed in 0u64..16,
        k in 2usize..5,
        budget in 10usize..40,
        fail_after in 0u64..25,
    ) {
        let (opt, cands) = context(inst_seed);
        let req = TuningRequest::cardinality(k, budget).with_seed(seed);
        let plan = FaultPlan::parse(
            &format!("seed={seed};whatif.error=after{fail_after}"),
        ).unwrap();
        for (name, tuner) in &tuners() {
            let faults = SessionFaults::new(plan.clone());
            let ctx = TuningContext::new(&opt, &cands).with_faults(faults.clone());
            let r = tuner.tune(&ctx, &req);
            prop_assert!(r.config.len() <= k, "{}: |config| {} > k {}", name, r.config.len(), k);
            prop_assert!(r.calls_used <= budget, "{}: {} calls > budget {}", name, r.calls_used, budget);
            prop_assert!(
                (0.0..=1.0).contains(&r.improvement),
                "{}: improvement {} outside [0,1]", name, r.improvement
            );
            if faults.is_degraded() {
                prop_assert!(
                    r.stop_reason == Some(StopReason::Degraded),
                    "{}: degraded session must say so, got {:?}", name, r.stop_reason
                );
            } else {
                let clean = tuner.tune(&TuningContext::new(&opt, &cands), &req);
                prop_identical(&r, &clean)?;
            }
        }
    }

    /// The inert branch: `FaultPlan::none` and a latency-spike-only plan
    /// (which perturbs observability histograms, never costs) are both
    /// bit-invisible to the tuning result.
    #[test]
    fn inert_and_latency_only_plans_never_perturb_results(
        inst_seed in 0u64..100,
        seed in 0u64..16,
        k in 2usize..5,
        budget in 10usize..40,
    ) {
        let (opt, cands) = context(inst_seed);
        let req = TuningRequest::cardinality(k, budget).with_seed(seed);
        let latency = FaultPlan::parse(&format!("seed={seed};whatif.latency=p0.5")).unwrap();
        for (_name, tuner) in &tuners() {
            let plain = tuner.tune(&TuningContext::new(&opt, &cands), &req);
            let inert = tuner.tune(
                &TuningContext::new(&opt, &cands)
                    .with_faults(SessionFaults::new(FaultPlan::none())),
                &req,
            );
            prop_identical(&plain, &inert)?;
            let spiked = tuner.tune(
                &TuningContext::new(&opt, &cands)
                    .with_faults(SessionFaults::new(latency.clone())),
                &req,
            );
            prop_identical(&plain, &spiked)?;
        }
    }
}
