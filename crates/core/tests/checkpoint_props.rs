//! Property tests for cooperative interruption and checkpoint/resume.
//!
//! DESIGN.md §6 promises two invariants on top of the existing
//! determinism guarantees:
//!
//! 1. **Resume determinism** — an MCTS session suspended at an arbitrary
//!    point, serialized to the versioned JSON snapshot, deserialized, and
//!    resumed produces a `TuningResult` bit-identical to the uninterrupted
//!    run: configuration, call count, improvement bits, the exact call
//!    layout, and every execution-invariant telemetry counter. This holds
//!    across *any* number of suspension points.
//! 2. **Prompt cancellation** — a cancelled tuner returns best-so-far
//!    within one enumeration step / episode, with a `Cancelled` stop
//!    reason and without overshooting the budget it had already spent.

use ixtune_candidates::{generate_default, CandidateSet};
use ixtune_core::checkpoint::MctsCheckpoint;
use ixtune_core::prelude::*;
use ixtune_optimizer::{CostModel, SimulatedOptimizer};
use ixtune_workload::gen::synth;
use proptest::prelude::*;

fn context(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
    let inst = synth::instance(seed);
    let cands = generate_default(&inst);
    let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
    (opt, cands)
}

fn strip_execution(mut t: SessionTelemetry) -> SessionTelemetry {
    t.session_threads = 0;
    t.parallel_scans = 0;
    t.wall_clock_ms = 0.0;
    t
}

fn prop_identical(a: &TuningResult, b: &TuningResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.config, &b.config);
    prop_assert_eq!(a.calls_used, b.calls_used);
    prop_assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
    prop_assert_eq!(a.layout.cells(), b.layout.cells());
    prop_assert_eq!(a.layout.fingerprint(), b.layout.fingerprint());
    prop_assert_eq!(a.stop_reason, b.stop_reason);
    prop_assert_eq!(strip_execution(a.telemetry), strip_execution(b.telemetry));
    Ok(())
}

/// Drive a resumable MCTS session to completion, suspending and resuming
/// through a JSON round trip every `pause` budget calls. Returns the final
/// result and how many suspensions actually happened.
fn run_with_suspensions(
    tuner: &MctsTuner,
    ctx: &TuningContext<'_>,
    req: &TuningRequest,
    pause: usize,
) -> (TuningResult, usize) {
    let mut suspensions = 0;
    let mut outcome =
        tuner.run_resumable(ctx, req, &StopSignal::armed().suspend_after_calls(pause));
    loop {
        match outcome {
            MctsOutcome::Finished(result, _) => return (result, suspensions),
            MctsOutcome::Suspended(ckpt) => {
                suspensions += 1;
                // Full serialization round trip: what resumes is exactly
                // what a daemon would read back off disk.
                let restored = MctsCheckpoint::from_json(&ckpt.to_json()).expect("roundtrip");
                // Push the next suspension point past the calls already
                // spent so the session always makes progress.
                let next = restored.meter.used() + pause.max(1);
                let stop = StopSignal::armed().suspend_after_calls(next);
                outcome = tuner
                    .resume(ctx, &restored, &stop)
                    .expect("checkpoint accepted by the tuner that wrote it");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Suspend/serialize/resume at an arbitrary cadence ≡ uninterrupted.
    #[test]
    fn mcts_resume_is_bit_identical(
        inst_seed in 0u64..500,
        seed in 0u64..16,
        k in 2usize..6,
        budget in 20usize..120,
        pause in 1usize..60,
    ) {
        let (opt, cands) = context(inst_seed);
        let ctx = TuningContext::new(&opt, &cands);
        let tuner = MctsTuner::default();
        let req = TuningRequest::cardinality(k, budget).with_seed(seed);

        let uninterrupted = tuner.tune(&ctx, &req);
        let (resumed, suspensions) = run_with_suspensions(&tuner, &ctx, &req, pause);
        prop_identical(&uninterrupted, &resumed)?;
        // With a pause below the budget the session really was cut at
        // least once — the property is not vacuous.
        if budget >= 2 * pause {
            prop_assert!(suspensions >= 1, "pause={pause} budget={budget} never suspended");
        }
    }

    /// Cancelling an MCTS session mid-flight returns best-so-far promptly:
    /// the call count stops at the episode that observed the trigger, the
    /// stop reason says `Cancelled`, and the result is still a valid
    /// (constraint-respecting) configuration.
    #[test]
    fn mcts_cancel_returns_best_so_far(
        inst_seed in 0u64..500,
        seed in 0u64..16,
        cancel_at in 1usize..40,
    ) {
        let (opt, cands) = context(inst_seed);
        let ctx = TuningContext::new(&opt, &cands);
        let tuner = MctsTuner::default();
        let budget = 100_000;
        let req = TuningRequest::cardinality(4, budget).with_seed(seed);
        let stop = StopSignal::armed().cancel_after_calls(cancel_at);
        let r = tuner.tune_with_stop(&ctx, &req, &stop);
        prop_assert_eq!(r.stop_reason, Some(StopReason::Cancelled));
        prop_assert!(r.config.len() <= 4);
        prop_assert!(r.calls_used >= cancel_at.min(1));
        // The priors phase is atomic (it is the checkpoint baseline), so
        // cancellation lands at the first episode-boundary poll after it;
        // past that, the overshoot is bounded by one episode, which
        // evaluates at most k+1 configurations over the workload.
        let priors = ixtune_core::mcts::priors::priors_budget(budget, &ctx);
        let episode = (4 + 1) * ctx.num_queries();
        prop_assert!(
            r.calls_used <= cancel_at.max(priors) + episode,
            "cancelled at {} but spent {} (priors ≤ {}, episode ≤ {})",
            cancel_at,
            r.calls_used,
            priors,
            episode
        );
    }

    /// The greedy family honors cancellation at step granularity and
    /// reports it; an unarmed signal is observationally absent.
    #[test]
    fn greedy_family_cancellation(
        inst_seed in 0u64..500,
        k in 2usize..6,
        cancel_at in 0usize..30,
    ) {
        let (opt, cands) = context(inst_seed);
        let ctx = TuningContext::new(&opt, &cands);
        let tuners: Vec<Box<dyn Tuner>> = vec![
            Box::new(VanillaGreedy),
            Box::new(TwoPhaseGreedy),
            Box::new(AutoAdminGreedy::default()),
        ];
        let req = TuningRequest::cardinality(k, 100_000);
        for tuner in &tuners {
            let stop = StopSignal::armed().cancel_after_calls(cancel_at);
            let r = tuner.tune_with_stop(&ctx, &req, &stop);
            prop_assert_eq!(r.stop_reason, Some(StopReason::Cancelled));
            prop_assert!(r.config.len() <= k);
            // A greedy step scans ≤ |pool| candidates over ≤ |W| queries;
            // cancellation lands before the *next* step starts.
            let step_bound = ctx.universe() * ctx.num_queries().max(1);
            prop_assert!(
                r.calls_used <= cancel_at + step_bound,
                "{}: cancelled at {} but spent {}",
                tuner.name(),
                cancel_at,
                r.calls_used
            );

            // Unarmed signal ≡ plain tune, bit for bit.
            let plain = tuner.tune(&ctx, &req);
            let unarmed = tuner.tune_with_stop(&ctx, &req, &StopSignal::never());
            prop_identical(&plain, &unarmed)?;
        }
    }
}

/// Deterministic (non-proptest) checks that exercise the flag-based
/// cancel/suspend path the service uses, rather than the call-count
/// triggers.
#[test]
fn pre_cancelled_signal_stops_before_any_search() {
    let (opt, cands) = context(7);
    let ctx = TuningContext::new(&opt, &cands);
    let stop = StopSignal::armed();
    stop.cancel();
    let req = TuningRequest::cardinality(3, 1_000).with_seed(1);
    for tuner in [
        Box::new(VanillaGreedy) as Box<dyn Tuner>,
        Box::new(TwoPhaseGreedy),
        Box::new(AutoAdminGreedy::default()),
    ] {
        let r = tuner.tune_with_stop(&ctx, &req, &stop);
        assert_eq!(
            r.stop_reason,
            Some(StopReason::Cancelled),
            "{}",
            tuner.name()
        );
        assert!(r.config.is_empty(), "{} searched anyway", tuner.name());
    }
    // MCTS pays for its priors phase (it is not interruptible — it is the
    // checkpoint's baseline) but must stop at the first episode poll.
    let r = MctsTuner::default().tune_with_stop(&ctx, &req, &stop);
    assert_eq!(r.stop_reason, Some(StopReason::Cancelled));
    assert!(r.calls_used <= ixtune_core::mcts::priors::priors_budget(1_000, &ctx));
}

#[test]
fn suspend_flag_on_non_resumable_tuner_degrades_to_cancel() {
    let (opt, cands) = context(9);
    let ctx = TuningContext::new(&opt, &cands);
    let stop = StopSignal::armed();
    stop.request_suspend();
    let req = TuningRequest::cardinality(3, 1_000);
    let r = VanillaGreedy.tune_with_stop(&ctx, &req, &stop);
    assert_eq!(r.stop_reason, Some(StopReason::Cancelled));

    // Root-parallel MCTS cannot checkpoint either: tune_with_stop treats
    // the suspend as a cancel instead of wedging.
    let r =
        MctsTuner::default()
            .with_root_workers(3)
            .tune_with_stop(&ctx, &req.with_seed(2), &stop);
    assert_eq!(r.stop_reason, Some(StopReason::Cancelled));
}

#[test]
fn cancel_beats_suspend_when_both_requested() {
    let (opt, cands) = context(11);
    let ctx = TuningContext::new(&opt, &cands);
    let stop = StopSignal::armed();
    stop.request_suspend();
    stop.cancel();
    let req = TuningRequest::cardinality(3, 500).with_seed(3);
    match MctsTuner::default().run_resumable(&ctx, &req, &stop) {
        MctsOutcome::Finished(r, _) => {
            assert_eq!(r.stop_reason, Some(StopReason::Cancelled));
        }
        MctsOutcome::Suspended(_) => panic!("cancel must win over suspend"),
    }
}
