//! Daemon-wide warm cost store: cross-session what-if reuse.
//!
//! The service shares *prepared workloads* across sessions, but until this
//! module every session paid for its own what-if calls from a cold
//! [`WhatIfCache`](crate::derived::WhatIfCache). The warm store closes that
//! gap: a workload-keyed map of `(query, config) → cost` entries that
//! sessions read at admission and write back into when they settle.
//!
//! Three pieces:
//!
//! * [`WarmSnapshot`] — an **immutable** per-workload bundle of known
//!   costs. Published whole behind an `Arc`, so session read paths (and the
//!   frozen-cache parallel scan workers that share the session's
//!   [`CostSource`](crate::source::CostSource)) never take a lock.
//! * [`WarmState`] — one session's view: the snapshot it was admitted
//!   with plus a write ledger of the simulated calls it paid for. The
//!   ledger is drained by the daemon when the session settles (completion,
//!   suspension, or failure — every checkpoint boundary ends a segment).
//! * [`WarmStore`] — the daemon-wide registry: epoch-published snapshots
//!   per `(workload key, content fingerprint)`, bounded in bytes with
//!   least-recently-touched eviction.
//!
//! # Determinism
//!
//! Warm entries sit *below* the budget meter: a warm-served answer is
//! still a budgeted call, still recorded in the session cache, layout
//! trace, and `what_if_calls` — only the simulated-optimizer invocation is
//! skipped. Costs are pure functions of `(query, config)`, so the value a
//! snapshot returns is bit-identical to the value the optimizer would have
//! computed, and a warm-seeded session's [`TuningResult`] differs from a
//! cold run only in the `warm_hits`/`warm_seeded` provenance counters
//! (proved by `crates/core/tests/warm_store_props.rs`).
//!
//! [`TuningResult`]: crate::tuner::TuningResult

use ixtune_common::{ConfigInterner, IdCostMap, IndexSet, QueryId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Immutable per-workload bundle of known `(query, config) → cost`
/// entries. Cheap to share (`Arc`), never mutated after publication.
///
/// Configurations are stored once in a snapshot-owned [`ConfigInterner`];
/// the per-query rows are open-addressed integer-keyed tables
/// ([`IdCostMap`]) rather than `HashMap<IndexSet, f64>`. A lookup pays one
/// FNV pass over the probed bitset to find its interned id, then one cheap
/// integer probe per row — and a configuration shared by many queries is
/// hashed against the snapshot once, not once per row.
#[derive(Debug, Default)]
pub struct WarmSnapshot {
    /// Distinct configurations any row keys on, interned to dense ids.
    configs: ConfigInterner,
    /// `rows[q]` maps interned configuration ids to the what-if cost for
    /// query `q`.
    rows: Vec<IdCostMap>,
    /// Candidate-universe size the entries were computed against.
    universe: usize,
    entries: usize,
}

impl WarmSnapshot {
    /// An empty snapshot for a workload with `num_queries` queries over a
    /// `universe`-candidate universe.
    pub fn empty(num_queries: usize, universe: usize) -> Self {
        Self {
            configs: ConfigInterner::new(),
            rows: (0..num_queries).map(|_| IdCostMap::new()).collect(),
            universe,
            entries: 0,
        }
    }

    /// Stored cost of `(q, config)`, if a prior session computed it.
    #[inline]
    pub fn get(&self, q: QueryId, config: &IndexSet) -> Option<f64> {
        let id = self.configs.get(config)?;
        self.rows.get(q.index())?.get(id)
    }

    pub fn num_queries(&self) -> usize {
        self.rows.len()
    }

    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Total stored entries across all queries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Distinct configurations interned by this snapshot.
    pub fn interned_configs(&self) -> usize {
        self.configs.len()
    }

    /// Estimated resident size: interned bitsets (stored once per distinct
    /// configuration) + per-entry table slots + per-row overhead. An
    /// estimate for eviction accounting, not an allocator measurement.
    pub fn bytes(&self) -> usize {
        self.configs.len() * config_bytes(self.universe)
            + self.entries * ENTRY_BYTES
            + self.rows.len() * ROW_OVERHEAD
    }

    /// Every stored `(query, config, cost)` cell, rows in query order,
    /// cells in table order. The persistence layer serializes snapshots
    /// through this; costs come back exactly as stored (no rounding), so
    /// a recovered snapshot answers bit-identically.
    pub fn iter_entries(&self) -> impl Iterator<Item = (QueryId, &IndexSet, f64)> + '_ {
        self.rows.iter().enumerate().flat_map(move |(q, row)| {
            row.iter()
                .map(move |(id, cost)| (QueryId::from(q), self.configs.resolve(id), cost))
        })
    }
}

/// Estimated bytes per interned configuration: the bitset's blocks plus
/// the interner's id-table slot (with load-factor headroom).
fn config_bytes(universe: usize) -> usize {
    universe.div_ceil(64) * 8 + 16
}

/// Estimated bytes per stored `(id, cost)` cell: one open-addressed slot
/// (`u32` key padded beside an `f64`) with load-factor headroom.
const ENTRY_BYTES: usize = 24;

const ROW_OVERHEAD: usize = 48;

/// One session's warm view: the snapshot it was admitted with plus the
/// ledger of simulated (non-warm) calls it paid for, to be absorbed back
/// into the [`WarmStore`] when the session settles.
#[derive(Debug)]
pub struct WarmState {
    snapshot: Arc<WarmSnapshot>,
    /// Simulated calls this session performed; pushed at the source level
    /// (so root-parallel workers sharing the source contribute too).
    /// Push order is nondeterministic under parallelism, but the map-merge
    /// in [`WarmStore::absorb`] makes the resulting snapshot content
    /// deterministic (costs are pure functions of the cell).
    ledger: Mutex<Vec<(QueryId, IndexSet, f64)>>,
}

impl WarmState {
    pub fn new(snapshot: Arc<WarmSnapshot>) -> Self {
        Self {
            snapshot,
            ledger: Mutex::new(Vec::new()),
        }
    }

    /// The snapshot this session reads from.
    pub fn snapshot(&self) -> &Arc<WarmSnapshot> {
        &self.snapshot
    }

    /// Look up a warm cost. Lock-free: the snapshot is immutable.
    #[inline]
    pub fn lookup(&self, q: QueryId, config: &IndexSet) -> Option<f64> {
        self.snapshot.get(q, config)
    }

    /// Entries this session was seeded with.
    pub fn seeded(&self) -> usize {
        self.snapshot.entries()
    }

    /// Record one simulated call for later write-back.
    pub fn record(&self, q: QueryId, config: IndexSet, cost: f64) {
        self.ledger
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((q, config, cost));
    }

    /// Take the ledger (the session settled; the daemon absorbs it).
    /// Tolerates a poisoned lock so a panicked session still contributes
    /// the calls it completed.
    pub fn drain(&self) -> Vec<(QueryId, IndexSet, f64)> {
        std::mem::take(
            &mut *self
                .ledger
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Current ledger length (tests/diagnostics).
    pub fn ledger_len(&self) -> usize {
        self.ledger
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

/// Aggregate store counters, surfaced by the daemon's `store stats` verb
/// and the `ixtune_warm_store_*` gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStoreStats {
    /// Distinct `(workload, fingerprint)` snapshots held.
    pub workloads: usize,
    /// Total `(query, config) → cost` entries across snapshots.
    pub entries: usize,
    /// Distinct interned configurations across snapshots.
    pub interned_configs: usize,
    /// Estimated resident bytes.
    pub bytes: usize,
    /// Publication epoch: bumped once per absorbed snapshot.
    pub epoch: u64,
    /// Snapshots evicted by the byte bound since daemon start.
    pub evictions: u64,
    /// Configured byte bound.
    pub max_bytes: usize,
}

struct StoreEntry {
    snapshot: Arc<WarmSnapshot>,
    /// Epoch of the last checkout or absorb — the LRU ordering key.
    last_touch: u64,
}

#[derive(Default)]
struct StoreInner {
    map: HashMap<(String, u64), StoreEntry>,
    epoch: u64,
    bytes: usize,
    evictions: u64,
}

/// The daemon-wide warm cost store. Keyed by `(WorkloadSpec::key(),
/// SimulatedOptimizer::content_fingerprint())` so two sessions share
/// entries only when schema, workload, *and* candidate universe are
/// identical — index ids and query ids then mean the same thing on both
/// sides.
///
/// Mutation (checkout touch, absorb, flush) takes one short mutex;
/// sessions only hold `Arc<WarmSnapshot>` clones, so the read hot path
/// never sees the lock.
pub struct WarmStore {
    max_bytes: usize,
    inner: Mutex<StoreInner>,
}

impl WarmStore {
    /// A store bounded at `max_bytes` (estimated resident size).
    pub fn new(max_bytes: usize) -> Self {
        Self {
            max_bytes,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The snapshot for `(key, fingerprint)`, or an empty one when no
    /// session has settled on this workload yet. Touches the LRU clock.
    pub fn checkout(
        &self,
        key: &str,
        fingerprint: u64,
        num_queries: usize,
        universe: usize,
    ) -> Arc<WarmSnapshot> {
        let mut inner = self.lock();
        inner.epoch += 1;
        let epoch = inner.epoch;
        match inner.map.get_mut(&(key.to_string(), fingerprint)) {
            Some(entry) => {
                entry.last_touch = epoch;
                Arc::clone(&entry.snapshot)
            }
            None => Arc::new(WarmSnapshot::empty(num_queries, universe)),
        }
    }

    /// Absorb one settled session's ledger: copy-on-write merge into the
    /// workload's snapshot, publish the merged snapshot as a new epoch,
    /// then evict least-recently-touched snapshots while the byte bound is
    /// exceeded. Returns the number of entries newly added.
    ///
    /// Duplicate cells (several sessions — or root-parallel workers —
    /// paying for the same `(q, config)`) carry the same cost, costs being
    /// pure functions, so first-write-wins keeps content deterministic
    /// regardless of ledger order.
    pub fn absorb(
        &self,
        key: &str,
        fingerprint: u64,
        num_queries: usize,
        universe: usize,
        ledger: Vec<(QueryId, IndexSet, f64)>,
    ) -> usize {
        if ledger.is_empty() {
            return 0;
        }
        let mut inner = self.lock();
        inner.epoch += 1;
        let epoch = inner.epoch;
        let map_key = (key.to_string(), fingerprint);
        let base = inner.map.get(&map_key).map(|e| Arc::clone(&e.snapshot));
        let old_bytes = base.as_ref().map_or(0, |s| s.bytes());
        // Copy-on-write: readers keep their old Arc; the merged snapshot
        // replaces it for future checkouts.
        let mut merged = match base {
            Some(s) => WarmSnapshot {
                configs: s.configs.clone(),
                rows: s.rows.clone(),
                universe: s.universe,
                entries: s.entries,
            },
            None => WarmSnapshot::empty(num_queries, universe),
        };
        let mut added = 0usize;
        for (q, config, cost) in ledger {
            if q.index() >= merged.rows.len() {
                continue;
            }
            let id = merged.configs.intern(&config);
            // `IdCostMap::insert` keeps the first write, so duplicate
            // cells leave the stored cost untouched.
            if merged.rows[q.index()].insert(id, cost).is_none() {
                added += 1;
            }
        }
        merged.entries += added;
        let new_bytes = merged.bytes();
        inner.bytes = inner.bytes - old_bytes + new_bytes;
        inner.map.insert(
            map_key,
            StoreEntry {
                snapshot: Arc::new(merged),
                last_touch: epoch,
            },
        );
        // LRU eviction: drop least-recently-touched snapshots until the
        // bound holds. The bound is strict — a single oversized workload
        // is dropped too (it can be re-learned), keeping the daemon's
        // memory ceiling honest.
        while inner.bytes > self.max_bytes && !inner.map.is_empty() {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            if let Some(entry) = inner.map.remove(&victim) {
                inner.bytes -= entry.snapshot.bytes();
                inner.evictions += 1;
            }
        }
        added
    }

    /// Current aggregate counters.
    pub fn stats(&self) -> WarmStoreStats {
        let inner = self.lock();
        WarmStoreStats {
            workloads: inner.map.len(),
            entries: inner.map.values().map(|e| e.snapshot.entries()).sum(),
            interned_configs: inner
                .map
                .values()
                .map(|e| e.snapshot.interned_configs())
                .sum(),
            bytes: inner.bytes,
            epoch: inner.epoch,
            evictions: inner.evictions,
            max_bytes: self.max_bytes,
        }
    }

    /// Drop every snapshot. Returns the number of entries discarded.
    /// Sessions already admitted keep their `Arc` clones and finish
    /// unaffected; new admissions start cold.
    pub fn flush(&self) -> usize {
        let mut inner = self.lock();
        let dropped = inner.map.values().map(|e| e.snapshot.entries()).sum();
        inner.map.clear();
        inner.bytes = 0;
        dropped
    }

    /// Configured byte bound.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Every live `(key, fingerprint) → snapshot` pair, sorted by key for
    /// deterministic serialization order. Snapshots are immutable `Arc`
    /// clones, so the caller can walk them without holding the store lock.
    /// Importing the tables back is [`WarmStore::absorb`] — its first-write
    /// -wins merge makes re-import idempotent.
    pub fn export_tables(&self) -> Vec<((String, u64), Arc<WarmSnapshot>)> {
        let inner = self.lock();
        let mut tables: Vec<_> = inner
            .map
            .iter()
            .map(|(k, e)| (k.clone(), Arc::clone(&e.snapshot)))
            .collect();
        tables.sort_by(|(a, _), (b, _)| a.cmp(b));
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_common::IndexId;

    fn cfg(n: usize, ids: &[u32]) -> IndexSet {
        IndexSet::from_ids(n, ids.iter().map(|&i| IndexId::new(i)))
    }

    #[test]
    fn checkout_of_unknown_workload_is_empty() {
        let store = WarmStore::new(1 << 20);
        let snap = store.checkout("tpch", 7, 3, 16);
        assert_eq!(snap.entries(), 0);
        assert_eq!(snap.num_queries(), 3);
        assert_eq!(store.stats().workloads, 0, "checkout does not create");
    }

    #[test]
    fn absorb_then_checkout_round_trips_entries() {
        let store = WarmStore::new(1 << 20);
        let c = cfg(16, &[1, 3]);
        let added = store.absorb(
            "tpch",
            7,
            3,
            16,
            vec![
                (QueryId::new(0), c.clone(), 42.5),
                (QueryId::new(2), c.clone(), 7.25),
            ],
        );
        assert_eq!(added, 2);
        let snap = store.checkout("tpch", 7, 3, 16);
        assert_eq!(snap.get(QueryId::new(0), &c), Some(42.5));
        assert_eq!(snap.get(QueryId::new(2), &c), Some(7.25));
        assert_eq!(snap.get(QueryId::new(1), &c), None);
        // Different fingerprint → different snapshot.
        let other = store.checkout("tpch", 8, 3, 16);
        assert_eq!(other.entries(), 0);
    }

    #[test]
    fn duplicate_cells_count_once() {
        let store = WarmStore::new(1 << 20);
        let c = cfg(16, &[2]);
        let ledger = vec![
            (QueryId::new(0), c.clone(), 5.0),
            (QueryId::new(0), c.clone(), 5.0),
        ];
        assert_eq!(store.absorb("w", 1, 1, 16, ledger), 1);
        assert_eq!(
            store.absorb("w", 1, 1, 16, vec![(QueryId::new(0), c, 5.0)]),
            0
        );
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn published_snapshots_are_immutable_to_old_readers() {
        let store = WarmStore::new(1 << 20);
        let a = cfg(16, &[1]);
        let b = cfg(16, &[2]);
        store.absorb("w", 1, 1, 16, vec![(QueryId::new(0), a.clone(), 1.0)]);
        let old = store.checkout("w", 1, 1, 16);
        store.absorb("w", 1, 1, 16, vec![(QueryId::new(0), b.clone(), 2.0)]);
        // The old Arc never sees the later epoch's entries.
        assert_eq!(old.get(QueryId::new(0), &b), None);
        let new = store.checkout("w", 1, 1, 16);
        assert_eq!(new.get(QueryId::new(0), &a), Some(1.0));
        assert_eq!(new.get(QueryId::new(0), &b), Some(2.0));
    }

    #[test]
    fn lru_eviction_fires_on_the_byte_bound() {
        // Budget for roughly one snapshot: absorbing a second workload
        // evicts the least-recently-touched first.
        let one_entry = config_bytes(16) + ENTRY_BYTES + ROW_OVERHEAD;
        let store = WarmStore::new(one_entry + one_entry / 2);
        let c = cfg(16, &[1]);
        store.absorb("a", 1, 1, 16, vec![(QueryId::new(0), c.clone(), 1.0)]);
        assert_eq!(store.stats().workloads, 1);
        store.absorb("b", 2, 1, 16, vec![(QueryId::new(0), c.clone(), 2.0)]);
        let stats = store.stats();
        assert_eq!(stats.workloads, 1, "bound forces eviction");
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= store.max_bytes());
        // The surviving snapshot is the most recently absorbed.
        assert_eq!(store.checkout("b", 2, 1, 16).entries(), 1);
        assert_eq!(store.checkout("a", 1, 1, 16).entries(), 0);
    }

    #[test]
    fn checkout_touch_protects_hot_workloads() {
        let one = config_bytes(16) + ENTRY_BYTES + ROW_OVERHEAD;
        let store = WarmStore::new(2 * one + one / 2);
        let c = cfg(16, &[1]);
        store.absorb("a", 1, 1, 16, vec![(QueryId::new(0), c.clone(), 1.0)]);
        store.absorb("b", 2, 1, 16, vec![(QueryId::new(0), c.clone(), 2.0)]);
        // Touch `a` so `b` is now the least recently used…
        store.checkout("a", 1, 1, 16);
        store.absorb("c", 3, 1, 16, vec![(QueryId::new(0), c.clone(), 3.0)]);
        // …and gets evicted when `c` pushes the store over the bound.
        assert_eq!(store.checkout("a", 1, 1, 16).entries(), 1);
        assert_eq!(store.checkout("b", 2, 1, 16).entries(), 0);
    }

    #[test]
    fn flush_drops_everything() {
        let store = WarmStore::new(1 << 20);
        let c = cfg(16, &[1]);
        store.absorb("a", 1, 2, 16, vec![(QueryId::new(0), c.clone(), 1.0)]);
        store.absorb("b", 2, 2, 16, vec![(QueryId::new(1), c, 2.0)]);
        assert_eq!(store.flush(), 2);
        let stats = store.stats();
        assert_eq!(stats.workloads, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(store.checkout("a", 1, 2, 16).entries(), 0);
    }

    #[test]
    fn iter_entries_walks_every_cell_exactly() {
        let store = WarmStore::new(1 << 20);
        let a = cfg(16, &[1, 3]);
        let b = cfg(16, &[2]);
        store.absorb(
            "w",
            1,
            3,
            16,
            vec![
                (QueryId::new(0), a.clone(), 1.25),
                (
                    QueryId::new(2),
                    a.clone(),
                    f64::from_bits(0x7ff8_0000_0000_0001),
                ),
                (QueryId::new(2), b.clone(), -0.0),
            ],
        );
        let snap = store.checkout("w", 1, 3, 16);
        let mut cells: Vec<(usize, IndexSet, u64)> = snap
            .iter_entries()
            .map(|(q, c, cost)| (q.index(), c.clone(), cost.to_bits()))
            .collect();
        cells.sort_by_key(|x| (x.0, x.2));
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0], (0, a.clone(), 1.25f64.to_bits()));
        // Bit patterns survive exactly — including NaN payloads and -0.0.
        assert!(cells
            .iter()
            .any(|(q, c, bits)| *q == 2 && *c == a && *bits == 0x7ff8_0000_0000_0001));
        assert!(cells
            .iter()
            .any(|(q, c, bits)| *q == 2 && *c == b && *bits == (-0.0f64).to_bits()));
    }

    #[test]
    fn export_tables_roundtrips_through_absorb() {
        let store = WarmStore::new(1 << 20);
        let c = cfg(16, &[1]);
        store.absorb("b", 2, 1, 16, vec![(QueryId::new(0), c.clone(), 2.0)]);
        store.absorb("a", 1, 2, 16, vec![(QueryId::new(1), c.clone(), 1.0)]);
        let tables = store.export_tables();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].0 .0, "a", "sorted by key");

        // Re-import into a fresh store: identical content.
        let other = WarmStore::new(1 << 20);
        for ((key, fp), snap) in &tables {
            let ledger: Vec<_> = snap
                .iter_entries()
                .map(|(q, c, cost)| (q, c.clone(), cost))
                .collect();
            other.absorb(key, *fp, snap.num_queries(), snap.universe(), ledger);
        }
        assert_eq!(other.stats().entries, store.stats().entries);
        assert_eq!(
            other.checkout("a", 1, 2, 16).get(QueryId::new(1), &c),
            Some(1.0)
        );
        // Importing again is idempotent (first-write-wins dedup).
        for ((key, fp), snap) in &tables {
            let ledger: Vec<_> = snap
                .iter_entries()
                .map(|(q, c, cost)| (q, c.clone(), cost))
                .collect();
            assert_eq!(
                other.absorb(key, *fp, snap.num_queries(), snap.universe(), ledger),
                0
            );
        }
    }

    #[test]
    fn warm_state_ledger_drains_once() {
        let state = WarmState::new(Arc::new(WarmSnapshot::empty(2, 16)));
        let c = cfg(16, &[4]);
        assert_eq!(state.lookup(QueryId::new(0), &c), None);
        state.record(QueryId::new(0), c.clone(), 9.0);
        state.record(QueryId::new(1), c, 8.0);
        assert_eq!(state.ledger_len(), 2);
        assert_eq!(state.drain().len(), 2);
        assert_eq!(state.drain().len(), 0, "drain empties the ledger");
    }
}
