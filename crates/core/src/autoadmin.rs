//! AutoAdmin greedy (§4.2.2, Figure 5(d) of the paper): the two-phase
//! framework where budgeted what-if calls are spent **only on atomic
//! configurations** — singletons plus single-join pairs — and every other
//! configuration is priced by cost derivation.

use crate::budget::MeteredWhatIf;
use crate::derivation_state::DerivationState;
use crate::greedy::{greedy_enumerate_metered, MeteredEval};
use crate::matrix::Layout;
use crate::stop::StopSignal;
use crate::tuner::{Tuner, TuningContext, TuningRequest, TuningResult};
use crate::twophase::TwoPhaseGreedy;
use ixtune_candidates::atomic::single_join_pairs;
use ixtune_common::sync::effective_threads;
use ixtune_common::{IndexSet, QueryId};
use std::collections::HashSet;

/// AutoAdmin-style greedy with atomic-configuration budget allocation.
#[derive(Clone, Copy, Debug)]
pub struct AutoAdminGreedy {
    /// Cap on precomputed single-join atomic pairs.
    pub max_join_pairs: usize,
}

impl Default for AutoAdminGreedy {
    fn default() -> Self {
        Self {
            max_join_pairs: 2_000,
        }
    }
}

impl Tuner for AutoAdminGreedy {
    fn name(&self) -> String {
        "AutoAdmin Greedy".into()
    }

    fn tune(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> TuningResult {
        self.tune_with_stop(ctx, req, &StopSignal::never())
    }

    fn tune_with_stop(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        stop: &StopSignal,
    ) -> TuningResult {
        let constraints = &req.constraints;
        let threads = effective_threads(req.session_threads);
        let src = ctx.source();
        let mut mw = MeteredWhatIf::new(&src, req.budget);
        let obs = ctx.obs().clone();
        let atomic_pairs: HashSet<IndexSet> =
            single_join_pairs(ctx.opt.workload(), ctx.cands, self.max_join_pairs)
                .into_iter()
                .collect();

        // Atomic cost mode: what-if for singletons and single-join pairs,
        // derived for everything else (the scratch set handed to the
        // evaluator is the extension `C ∪ {x}`; the non-atomic branch
        // derives incrementally off the committed per-query cost).
        let mode = MeteredEval::Atomic(&atomic_pairs);

        // Phase 1 (per query) restricted to atomic what-if calls.
        let p1_t0 = obs.span_start();
        let (union, mut interrupt) =
            TwoPhaseGreedy::phase1(ctx, constraints, &mut mw, mode, threads, stop);
        if let Some(t0) = p1_t0 {
            obs.span_end(
                t0,
                "phase1",
                "autoadmin",
                vec![("union".into(), union.len().to_string())],
            );
        }

        let config = if interrupt.is_some() {
            // Interrupted mid-phase-1: derive-only salvage over the
            // partial union, no further budget spend.
            let t0 = obs.span_start();
            let config = TwoPhaseGreedy::salvage(ctx, constraints, &union, &mw);
            if let Some(t0) = t0 {
                obs.span_end(t0, "salvage", "autoadmin", vec![]);
            }
            config
        } else {
            // Phase 2 over the union, still atomic-restricted.
            let t0 = obs.span_start();
            let universe = ctx.universe();
            let empty = IndexSet::empty(universe);
            let queries: Vec<QueryId> = (0..ctx.num_queries()).map(QueryId::from).collect();
            let init: Vec<f64> = queries.iter().map(|&q| mw.cost_fcfs(q, &empty)).collect();
            let mut state = DerivationState::for_queries(universe, queries, init);
            let (config, i2) = greedy_enumerate_metered(
                ctx,
                constraints,
                &union,
                &mut state,
                &mut mw,
                mode,
                threads,
                stop,
            );
            if let Some(t0) = t0 {
                obs.span_end(t0, "phase2", "autoadmin", vec![]);
            }
            interrupt = i2;
            config
        };
        mw.publish_obs();
        let used = mw.meter().used();
        let reason = mw.stop_reason(interrupt);
        let mut telemetry = mw.telemetry();
        telemetry.session_threads = threads;
        TuningResult::evaluate(self.name(), ctx, config, used, Layout::new(mw.into_trace()))
            .with_telemetry(telemetry)
            .with_stop_reason(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::{synth, tpch};

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn only_atomic_configs_receive_calls() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let r = AutoAdminGreedy::default().tune(&ctx, &TuningRequest::cardinality(10, 500));
        let sizes = r.layout.calls_by_config_size();
        // All budgeted calls are for configurations of size ≤ 2 (singletons
        // and join pairs).
        assert!(
            sizes.keys().all(|&s| s <= 2),
            "atomic layout has sizes {sizes:?}"
        );
    }

    #[test]
    fn respects_budget_and_cardinality() {
        let (opt, cands) = setup(21);
        let ctx = TuningContext::new(&opt, &cands);
        for (budget, k) in [(0usize, 2usize), (9, 2), (200, 4)] {
            let r = AutoAdminGreedy::default().tune(&ctx, &TuningRequest::cardinality(k, budget));
            assert!(r.calls_used <= budget);
            assert!(r.config.len() <= k);
        }
    }

    #[test]
    fn finds_improvement_with_ample_budget() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let r = AutoAdminGreedy::default().tune(&ctx, &TuningRequest::cardinality(10, 10_000));
        assert!(r.improvement > 0.0, "TPC-H should be improvable");
    }
}
