//! The [`CostSource`] seam: where tuners get what-if costs from.
//!
//! Before this trait existed, every enumerator talked to
//! [`WhatIfOptimizer`] directly through the metered client, and anything
//! that wanted to watch the call stream (latency measurement, metrics)
//! had to wrap each call site separately. `CostSource` collapses that into
//! one seam owned by this crate: the metered client consumes
//! `&dyn CostSource`, [`BudgetMeter::charged_cost`] is the *single* point
//! where a budgeted optimizer invocation happens (and therefore the single
//! observation point), and the [`observe`](CostSource::observe) hook is
//! where latency lands.
//!
//! Two implementations ship here:
//!
//! * [`SimulatedOptimizer`] implements `CostSource` directly — plain,
//!   unobserved access, used by unit tests and baselines;
//! * [`ObservedSource`] wraps the optimizer together with an [`Obs`]
//!   handle; when the handle is enabled, every budgeted call is timed
//!   (both real wall-clock and the simulated latency model of
//!   `ixtune_optimizer::latency`) into the registry's histograms. When
//!   disabled it degrades to exactly the plain path: `observing()` is
//!   `false`, so the metered client never reads the clock.
//!
//! [`BudgetMeter::charged_cost`]: crate::budget::BudgetMeter::charged_cost

use crate::obs::Obs;
use crate::warm::WarmState;
use ixtune_common::fault::{site, FaultPlan};
use ixtune_common::{IndexSet, QueryId};
use ixtune_optimizer::{SimulatedOptimizer, WhatIfOptimizer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Synthetic latency added to an observed what-if call when the
/// `whatif.latency` fault site fires. Affects latency histograms only —
/// never costs, budgets, or results.
pub const LATENCY_SPIKE_S: f64 = 0.25;

/// Per-session fault state: the (shared) fault plan plus the degraded
/// flag the what-if error ladder raises. Clones share the flag, so every
/// metered client of one session observes the same degradation.
#[derive(Clone, Default)]
pub struct SessionFaults {
    plan: FaultPlan,
    degraded: Arc<AtomicBool>,
}

impl SessionFaults {
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            degraded: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The fault plan (inert by default).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Raise the degraded flag: a what-if error fired and the session fell
    /// back to derivation-only search.
    pub fn mark_degraded(&self) {
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// Whether any client of this session has degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

/// A source of per-query configuration costs.
///
/// `cost` answers *what would query `q` cost under configuration `C`?* —
/// the what-if question. Budget accounting, caching, and derivation live
/// on the consumer side ([`MeteredWhatIf`](crate::budget::MeteredWhatIf));
/// a source only prices configurations and optionally observes the calls
/// made against it.
pub trait CostSource: Sync {
    /// Number of queries in the workload being priced.
    fn num_queries(&self) -> usize;

    /// Number of candidate indexes (the configuration universe).
    fn num_candidates(&self) -> usize;

    /// Cost of query `q` under configuration `config`. One invocation is
    /// one optimizer call; the caller is responsible for budgeting.
    fn cost(&self, q: QueryId, config: &IndexSet) -> f64;

    /// Cost several configurations for one query in a batch. The default
    /// just loops [`cost`](Self::cost); sources backed by a remote
    /// optimizer can amortize round trips here.
    fn cost_batch(&self, q: QueryId, configs: &[IndexSet]) -> Vec<f64> {
        configs.iter().map(|c| self.cost(q, c)).collect()
    }

    /// [`cost`](Self::cost) with provenance: the second component is
    /// `true` when the answer was served from a warm store snapshot (a
    /// prior session already paid for the optimizer invocation) rather
    /// than computed now. Warm answers are still budgeted and cached by
    /// the caller exactly like simulated ones — the tag only drives the
    /// `warm_hits` telemetry and lets the meter skip latency observation
    /// (there was no invocation to time). Default: always simulated.
    fn cost_tagged(&self, q: QueryId, config: &IndexSet) -> (f64, bool) {
        (self.cost(q, config), false)
    }

    /// Number of warm entries this source was seeded with at admission
    /// (0 for sources without a warm overlay).
    fn warm_seeded(&self) -> usize {
        0
    }

    /// Whether this source wants [`observe`](Self::observe) callbacks.
    /// When `false` (the default) the metered client skips the clock reads
    /// entirely, keeping the disabled path zero-cost.
    fn observing(&self) -> bool {
        false
    }

    /// Observation hook: one budgeted call just completed with the given
    /// result and elapsed wall-clock seconds. Default: no-op.
    fn observe(&self, _q: QueryId, _config: &IndexSet, _cost: f64, _elapsed_s: f64) {}

    /// The observability handle associated with this source. The metered
    /// client mirrors its telemetry counters into it at step/episode
    /// boundaries; a disabled handle (the default) makes every mirror a
    /// no-op.
    fn obs(&self) -> Obs {
        Obs::disabled()
    }

    /// The session's fault state. The metered client pulls a `whatif.error`
    /// cursor from its plan at construction; the default is inert (no
    /// plan, never fires). Like [`obs`](Self::obs), implementors that carry
    /// real state must return clones of *one* shared instance so every
    /// client sees the same degraded flag.
    fn faults(&self) -> SessionFaults {
        SessionFaults::default()
    }
}

/// Plain, unobserved access: the simulated optimizer is its own source.
impl CostSource for SimulatedOptimizer {
    fn num_queries(&self) -> usize {
        WhatIfOptimizer::num_queries(self)
    }

    fn num_candidates(&self) -> usize {
        WhatIfOptimizer::num_candidates(self)
    }

    fn cost(&self, q: QueryId, config: &IndexSet) -> f64 {
        self.what_if_cost(q, config)
    }
}

/// A cost source that forwards to the simulated optimizer and reports into
/// an [`Obs`] handle. Built by
/// [`TuningContext::source`](crate::tuner::TuningContext::source); when the
/// context carries no observability this is bit-for-bit the plain path.
pub struct ObservedSource<'a> {
    opt: &'a SimulatedOptimizer,
    obs: Obs,
    /// Warm overlay: snapshot consulted before the optimizer, ledger fed
    /// with the simulated answers. `None` outside the service.
    warm: Option<Arc<WarmState>>,
    /// Session fault state (inert by default).
    faults: SessionFaults,
}

impl<'a> ObservedSource<'a> {
    pub fn new(opt: &'a SimulatedOptimizer, obs: Obs) -> Self {
        Self {
            opt,
            obs,
            warm: None,
            faults: SessionFaults::default(),
        }
    }

    /// Attach the session's fault state (see [`SessionFaults`]).
    pub fn with_faults(mut self, faults: SessionFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a warm store overlay (see [`crate::warm`]). Costs already in
    /// the snapshot are served without invoking the optimizer; costs the
    /// optimizer does compute are recorded in the ledger for write-back.
    pub fn with_warm(mut self, warm: Arc<WarmState>) -> Self {
        self.warm = Some(warm);
        self
    }

    /// The underlying optimizer.
    pub fn optimizer(&self) -> &'a SimulatedOptimizer {
        self.opt
    }
}

impl CostSource for ObservedSource<'_> {
    fn num_queries(&self) -> usize {
        WhatIfOptimizer::num_queries(self.opt)
    }

    fn num_candidates(&self) -> usize {
        WhatIfOptimizer::num_candidates(self.opt)
    }

    fn cost(&self, q: QueryId, config: &IndexSet) -> f64 {
        self.cost_tagged(q, config).0
    }

    fn cost_tagged(&self, q: QueryId, config: &IndexSet) -> (f64, bool) {
        if let Some(warm) = &self.warm {
            if let Some(cost) = warm.lookup(q, config) {
                return (cost, true);
            }
            let cost = self.opt.what_if_cost(q, config);
            warm.record(q, config.clone(), cost);
            return (cost, false);
        }
        (self.opt.what_if_cost(q, config), false)
    }

    fn warm_seeded(&self) -> usize {
        self.warm.as_ref().map_or(0, |w| w.seeded())
    }

    fn observing(&self) -> bool {
        self.obs.is_enabled()
    }

    fn observe(&self, q: QueryId, _config: &IndexSet, _cost: f64, elapsed_s: f64) {
        // An injected latency spike lands in the histograms only; costs,
        // budget accounting, and results never see it.
        let elapsed_s = if self.faults.plan().fire(site::WHATIF_LATENCY) {
            elapsed_s + LATENCY_SPIKE_S
        } else {
            elapsed_s
        };
        self.obs.observe_whatif_latency(
            elapsed_s,
            self.opt.call_latency_s(q),
            self.opt.compiled_enabled(),
        );
    }

    fn obs(&self) -> Obs {
        self.obs.clone()
    }

    fn faults(&self) -> SessionFaults {
        self.faults.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Obs;
    use ixtune_candidates::generate_default;
    use ixtune_obs::MetricsRegistry;
    use ixtune_optimizer::CostModel;
    use ixtune_workload::gen::synth;
    use std::sync::Arc;

    fn optimizer(seed: u64) -> SimulatedOptimizer {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        SimulatedOptimizer::new(inst, cands.indexes, CostModel::default())
    }

    #[test]
    fn optimizer_is_a_plain_source() {
        let opt = optimizer(1);
        let src: &dyn CostSource = &opt;
        assert!(!src.observing());
        let q = QueryId::new(0);
        let empty = IndexSet::empty(src.num_candidates());
        assert_eq!(src.cost(q, &empty), opt.what_if_cost(q, &empty));
    }

    #[test]
    fn cost_batch_matches_individual_costs() {
        let opt = optimizer(2);
        let n = WhatIfOptimizer::num_candidates(&opt);
        let configs: Vec<IndexSet> = (0..n.min(4))
            .map(|i| IndexSet::singleton(n, ixtune_common::IndexId::from(i)))
            .collect();
        let q = QueryId::new(0);
        let batch = CostSource::cost_batch(&opt, q, &configs);
        for (c, cfg) in batch.iter().zip(&configs) {
            assert_eq!(*c, CostSource::cost(&opt, q, cfg));
        }
    }

    #[test]
    fn observed_source_times_calls_into_the_histogram() {
        let opt = optimizer(3);
        let registry = Arc::new(MetricsRegistry::new());
        let obs = Obs::enabled(Arc::clone(&registry), None, 0);
        let src = ObservedSource::new(&opt, obs);
        assert!(src.observing());
        let q = QueryId::new(0);
        let cfg = IndexSet::empty(CostSource::num_candidates(&src));
        let cost = src.cost(q, &cfg);
        src.observe(q, &cfg, cost, 0.001);
        let text = registry.render();
        let kernel = if opt.compiled_enabled() {
            "compiled"
        } else {
            "interpreted"
        };
        assert!(
            text.contains(&format!(
                "ixtune_whatif_latency_seconds_count{{kernel=\"{kernel}\"}} 1"
            )),
            "{text}"
        );
        assert!(text.contains(&format!(
            "ixtune_whatif_sim_latency_seconds_count{{kernel=\"{kernel}\"}} 1"
        )));
    }

    #[test]
    fn disabled_observed_source_is_plain() {
        let opt = optimizer(4);
        let src = ObservedSource::new(&opt, Obs::disabled());
        assert!(!src.observing());
    }
}
