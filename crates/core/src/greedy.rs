//! The classic greedy configuration-enumeration algorithm (Algorithm 1 of
//! the paper) and its budget-aware vanilla variant (§4.2.1).

use crate::budget::MeteredWhatIf;
use crate::derivation_state::DerivationState;
use crate::matrix::Layout;
use crate::parallel::{frozen_argmin, winner_values, FrozenEval, MIN_PARALLEL_WORK};
use crate::stop::{Interrupt, StopSignal};
use crate::tuner::{Constraints, Tuner, TuningContext, TuningRequest, TuningResult};
use ixtune_common::sync::effective_threads;
use ixtune_common::{IndexId, IndexSet, QueryId};
use std::collections::HashSet;

/// Algorithm 1: greedily grow the configuration from `pool`, committing the
/// extension with the lowest `cost_of` per step, stopping when no extension
/// improves or the constraints are saturated.
///
/// `cost_of` is the workload-level cost function — the caller decides
/// whether it spends budget (FCFS), restricts calls to atomic
/// configurations, or uses derived costs only (as in MCTS's Best-Greedy
/// extraction). Candidates are probed through a scratch set (insert,
/// evaluate, remove) rather than a fresh `config.with(id)` clone per
/// candidate per step.
pub fn greedy_enumerate(
    ctx: &TuningContext<'_>,
    constraints: &Constraints,
    pool: &[IndexId],
    mut cost_of: impl FnMut(&IndexSet) -> f64,
) -> IndexSet {
    let universe = ctx.universe();
    let mut config = IndexSet::empty(universe);
    let mut cost_min = cost_of(&config);
    let mut remaining: Vec<IndexId> = pool.to_vec();

    while !remaining.is_empty() && config.len() < constraints.k {
        let filter = constraints.extension_filter(ctx, &config);
        let mut best: Option<(usize, f64)> = None;
        for (pos, &id) in remaining.iter().enumerate() {
            if !filter.admits(ctx, id) {
                continue;
            }
            let fresh = config.insert(id);
            let cost = cost_of(&config);
            if fresh {
                config.remove(id);
            }
            if best.is_none_or(|(_, b)| cost < b) {
                best = Some((pos, cost));
            }
        }
        match best {
            Some((pos, cost)) if cost < cost_min => {
                let id = remaining.swap_remove(pos);
                config.insert(id);
                cost_min = cost;
            }
            _ => break,
        }
    }
    config
}

/// Algorithm 1 over a [`DerivationState`]: the same candidate order,
/// tie-breaking, and stopping rule as [`greedy_enumerate`], but each
/// candidate is priced per query by `eval(q, C ∪ {id}, id, cost(q, C))`
/// through [`DerivationState::probe_with`] — no full-workload rescan and no
/// allocation in the inner loop. The best candidate's per-query buffer is
/// staged and committed with [`DerivationState::commit_staged`].
///
/// The caller seeds `state` with the per-query costs of the empty
/// configuration (through the metered client, so telemetry matches the
/// rescan implementation) and supplies the same `eval` it would have used
/// per `(query, configuration)` pair before.
pub fn greedy_enumerate_incremental(
    ctx: &TuningContext<'_>,
    constraints: &Constraints,
    pool: &[IndexId],
    state: &mut DerivationState,
    mut eval: impl FnMut(QueryId, &IndexSet, IndexId, f64) -> f64,
) -> IndexSet {
    let mut remaining: Vec<IndexId> = pool.to_vec();

    while !remaining.is_empty() && state.config().len() < constraints.k {
        let filter = constraints.extension_filter(ctx, state.config());
        let mut best: Option<(usize, f64)> = None;
        for (pos, &id) in remaining.iter().enumerate() {
            if !filter.admits(ctx, id) {
                continue;
            }
            let cost = state.probe_with(id, &mut eval);
            if best.is_none_or(|(_, b)| cost < b) {
                best = Some((pos, cost));
                state.stage_probe();
            }
        }
        match best {
            Some((pos, cost)) if cost < state.total() => {
                let id = remaining.swap_remove(pos);
                state.commit_staged(id, cost);
            }
            _ => break,
        }
    }
    state.config().clone()
}

/// How a metered greedy step prices one `(q, C ∪ {x})` cell — the two
/// budget-aware evaluator families shared by the greedy drivers. Each
/// variant has a matching [`FrozenEval`] replica for the post-exhaustion
/// parallel scan.
#[derive(Clone, Copy)]
pub(crate) enum MeteredEval<'a> {
    /// FCFS: what-if calls while budget lasts, incremental derivation
    /// afterwards (`MeteredWhatIf::cost_fcfs_extend`).
    Fcfs,
    /// AutoAdmin's rule: atomic configurations (singletons and the listed
    /// pairs) go through FCFS, everything else is priced by derivation.
    Atomic(&'a HashSet<IndexSet>),
}

impl<'a> MeteredEval<'a> {
    #[inline]
    fn eval(
        &self,
        mw: &mut MeteredWhatIf<'_>,
        q: QueryId,
        c: &IndexSet,
        x: IndexId,
        cur: f64,
    ) -> f64 {
        match self {
            MeteredEval::Fcfs => mw.cost_fcfs_extend(q, c, x, cur),
            MeteredEval::Atomic(pairs) => {
                if c.len() <= 1 || pairs.contains(c) {
                    mw.cost_fcfs_extend(q, c, x, cur)
                } else {
                    mw.cache().derived_with_extra(q, c, x, cur)
                }
            }
        }
    }

    fn frozen(&self) -> FrozenEval<'a> {
        match self {
            MeteredEval::Fcfs => FrozenEval::Fcfs,
            MeteredEval::Atomic(pairs) => FrozenEval::Atomic(pairs),
        }
    }
}

/// [`greedy_enumerate_incremental`] with budget metering and batched
/// post-exhaustion scanning: candidates are probed by the exact serial
/// loop while budget remains, and the moment the meter is exhausted *at a
/// candidate boundary* — whether at step start or midway through a step —
/// the cache is frozen and the rest of the step's scan runs through
/// [`frozen_argmin`], which is bit-identical to the serial scan by
/// construction (values *and* hit/derivation telemetry). The candidate
/// whose probe exhausts the budget keeps its serial FCFS semantics: the
/// hand-off happens between candidates, never inside one. The freeze is
/// permanently valid because cache inserts only happen through budgeted
/// what-if calls, which an exhausted meter refuses.
///
/// The serial prefix and the kernel suffix are merged with strict `<`:
/// serial positions precede kernel positions in pool order, so the merge
/// keeps the first strict minimum — the serial argmin. The kernel runs
/// even at `threads == 1` (it scans one chunk inline, no threads spawned):
/// its query-major entry pass prices a whole candidate block per cached
/// entry, which beats one postings walk per `(candidate, query)` cell
/// before any parallelism. Tiny scans stay serial (`MIN_PARALLEL_WORK`).
///
/// `stop` is polled once per enumeration step, *before* the candidate
/// scan: an interrupted call therefore returns the configuration as of
/// the last committed step (best-so-far), never a half-scanned one. The
/// returned [`Interrupt`] (if any) tells the caller why the loop ended
/// early; polling never perturbs the enumeration itself, so an unarmed
/// signal leaves results bit-identical.
#[allow(clippy::too_many_arguments)] // one call site per tuner; a params struct would only rename the problem
pub(crate) fn greedy_enumerate_metered(
    ctx: &TuningContext<'_>,
    constraints: &Constraints,
    pool: &[IndexId],
    state: &mut DerivationState,
    mw: &mut MeteredWhatIf<'_>,
    mode: MeteredEval<'_>,
    threads: usize,
    stop: &StopSignal,
) -> (IndexSet, Option<Interrupt>) {
    let mut remaining: Vec<IndexId> = pool.to_vec();
    let mut admissible: Vec<(usize, IndexId)> = Vec::new();
    let mut winner_buf: Vec<f64> = Vec::new();
    // Baseline for the streamed improvement estimate. At entry the
    // configuration is (normally) empty, so this is the empty-workload
    // cost; the estimate is free — no oracle call, just the running total.
    let base_total = state.total();
    let mut interrupt = None;
    let obs = mw.obs().clone();

    while !remaining.is_empty() && state.config().len() < constraints.k {
        if let Some(i) = stop.poll(mw.meter().used()) {
            interrupt = Some(i);
            break;
        }
        let step_t0 = obs.span_start();
        let filter = constraints.extension_filter(ctx, state.config());
        let queries_n = state.queries().len();

        // Serial prefix: exact FCFS probing until the meter is exhausted
        // (possibly before the first candidate). `serial_best`'s per-query
        // values sit in the derivation state's staged buffer.
        let mut serial_best: Option<(usize, f64)> = None;
        let mut kernel_best: Option<(usize, IndexId, f64)> = None;
        let mut used_kernel = false;
        for (pos, &id) in remaining.iter().enumerate() {
            if mw.meter().exhausted() && (remaining.len() - pos) * queries_n >= MIN_PARALLEL_WORK {
                // Kernel suffix: freeze and batch-price remaining[pos..].
                mw.freeze_cache();
                admissible.clear();
                admissible.extend(
                    remaining
                        .iter()
                        .enumerate()
                        .skip(pos)
                        .filter(|&(_, &id)| filter.admits(ctx, id))
                        .map(|(p, &id)| (p, id)),
                );
                let (best, hits) = frozen_argmin(
                    mw.cache(),
                    state.queries(),
                    state.per_query(),
                    state.config(),
                    &admissible,
                    mode.frozen(),
                    threads,
                    &obs,
                );
                mw.note_parallel_scan(hits);
                kernel_best = best;
                used_kernel = true;
                break;
            }
            if !filter.admits(ctx, id) {
                continue;
            }
            let cost = state.probe_with(id, &mut |q, c, x, cur| mode.eval(mw, q, c, x, cur));
            if serial_best.is_none_or(|(_, b)| cost < b) {
                serial_best = Some((pos, cost));
                state.stage_probe();
            }
        }

        // Merge with strict `<`: every serial position precedes every
        // kernel position, so a tie keeps the serial winner — the same
        // first-strict-min the all-serial scan would pick.
        let kernel_wins = match (serial_best, kernel_best) {
            (Some((_, sc)), Some((_, _, kc))) => kc < sc,
            (None, Some(_)) => true,
            _ => false,
        };
        if kernel_wins {
            match kernel_best {
                Some((pos, id, cost)) if cost < state.total() => {
                    let total = winner_values(
                        mw.cache(),
                        state.queries(),
                        state.per_query(),
                        state.config(),
                        id,
                        mode.frozen(),
                        &mut winner_buf,
                    );
                    debug_assert_eq!(total.to_bits(), cost.to_bits());
                    remaining.swap_remove(pos);
                    state.commit_values(id, &winner_buf, cost);
                    end_step_span(&obs, step_t0, state, id, used_kernel);
                    mw.publish_obs();
                    publish_step(stop, mw, state, base_total);
                }
                _ => break,
            }
        } else {
            match serial_best {
                Some((pos, cost)) if cost < state.total() => {
                    let id = remaining.swap_remove(pos);
                    state.commit_staged(id, cost);
                    end_step_span(&obs, step_t0, state, id, used_kernel);
                    mw.publish_obs();
                    publish_step(stop, mw, state, base_total);
                }
                _ => break,
            }
        }
    }
    (state.config().clone(), interrupt)
}

/// Close a committed greedy step's span (when tracing is on): step ordinal,
/// the index chosen, and whether the scan ran through the parallel kernel.
fn end_step_span(
    obs: &crate::obs::Obs,
    step_t0: Option<u64>,
    state: &DerivationState,
    chosen: IndexId,
    parallel: bool,
) {
    if let Some(t0) = step_t0 {
        obs.span_end(
            t0,
            "greedy-step",
            "greedy",
            vec![
                ("step".into(), state.config().len().to_string()),
                ("chosen".into(), chosen.index().to_string()),
                ("parallel".into(), parallel.to_string()),
            ],
        );
    }
}

/// Stream per-step progress to an armed [`StopSignal`]: current telemetry
/// plus a derived-cost improvement estimate relative to the enumeration's
/// starting total (no oracle call).
fn publish_step(
    stop: &StopSignal,
    mw: &MeteredWhatIf<'_>,
    state: &DerivationState,
    base_total: f64,
) {
    if stop.is_armed() {
        let est = if base_total > 0.0 {
            1.0 - state.total() / base_total
        } else {
            0.0
        };
        stop.publish(mw.telemetry(), est);
    }
}

/// Vanilla greedy with first-come-first-serve budget allocation
/// (Figure 5(b)): workload-level Algorithm 1 where every configuration
/// evaluation uses what-if calls until the budget runs out, then derived
/// costs.
#[derive(Clone, Copy, Debug, Default)]
pub struct VanillaGreedy;

impl Tuner for VanillaGreedy {
    fn name(&self) -> String {
        "Vanilla Greedy".into()
    }

    fn tune(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> TuningResult {
        self.tune_with_stop(ctx, req, &StopSignal::never())
    }

    fn tune_with_stop(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        stop: &StopSignal,
    ) -> TuningResult {
        let threads = effective_threads(req.session_threads);
        let src = ctx.source();
        let mut mw = MeteredWhatIf::new(&src, req.budget);
        let universe = ctx.universe();
        let pool: Vec<IndexId> = (0..universe).map(IndexId::from).collect();
        let empty = IndexSet::empty(universe);
        let queries: Vec<QueryId> = (0..ctx.num_queries()).map(QueryId::from).collect();
        let init: Vec<f64> = queries.iter().map(|&q| mw.cost_fcfs(q, &empty)).collect();
        let mut state = DerivationState::for_queries(universe, queries, init);
        let (config, interrupt) = greedy_enumerate_metered(
            ctx,
            &req.constraints,
            &pool,
            &mut state,
            &mut mw,
            MeteredEval::Fcfs,
            threads,
            stop,
        );
        mw.publish_obs();
        let used = mw.meter().used();
        let reason = mw.stop_reason(interrupt);
        let mut telemetry = mw.telemetry();
        telemetry.session_threads = threads;
        TuningResult::evaluate(self.name(), ctx, config, used, Layout::new(mw.into_trace()))
            .with_telemetry(telemetry)
            .with_stop_reason(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::{synth, tpch};

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn respects_budget_exactly() {
        let (opt, cands) = setup(1);
        let ctx = TuningContext::new(&opt, &cands);
        for budget in [0usize, 1, 5, 50] {
            let r = VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(3, budget));
            assert!(r.calls_used <= budget, "used {} > {budget}", r.calls_used);
            assert_eq!(r.layout.len(), r.calls_used);
        }
    }

    #[test]
    fn respects_cardinality() {
        let (opt, cands) = setup(2);
        let ctx = TuningContext::new(&opt, &cands);
        for k in [1usize, 2, 4] {
            let r = VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(k, 10_000));
            assert!(r.config.len() <= k);
        }
    }

    #[test]
    fn zero_budget_yields_empty_config() {
        let (opt, cands) = setup(3);
        let ctx = TuningContext::new(&opt, &cands);
        let r = VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(3, 0));
        // With no what-if information every derived cost equals the empty
        // cost, so nothing can look better than ∅.
        assert!(r.config.is_empty());
        assert_eq!(r.improvement, 0.0);
    }

    #[test]
    fn unlimited_budget_reaches_good_configs() {
        let (opt, cands) = setup(4);
        let ctx = TuningContext::new(&opt, &cands);
        let r = VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(5, 1_000_000));
        // Greedy with full information should find something at least as
        // good as the best singleton.
        let n = ctx.universe();
        let best_singleton = (0..n)
            .map(|i| ctx.oracle_improvement(&IndexSet::singleton(n, IndexId::from(i))))
            .fold(0.0f64, f64::max);
        assert!(
            r.improvement >= best_singleton - 1e-9,
            "greedy {} < singleton {}",
            r.improvement,
            best_singleton
        );
    }

    #[test]
    fn layout_is_row_major() {
        let (opt, cands) = setup(5);
        let ctx = TuningContext::new(&opt, &cands);
        let r = VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(3, 37));
        assert!(r.layout.is_row_major(), "FCFS vanilla greedy fills rows");
    }

    #[test]
    fn more_budget_never_hurts_much_on_tpch() {
        // Improvement should broadly increase with budget (the paper's
        // x-axis). Allow small non-monotonicities from derivation.
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let req = TuningRequest::cardinality(5, 50);
        let lo = VanillaGreedy.tune(&ctx, &req).improvement;
        let hi = VanillaGreedy
            .tune(&ctx, &req.with_budget(5_000))
            .improvement;
        assert!(hi >= lo - 0.05, "lo={lo} hi={hi}");
        assert!(hi > 0.0, "full-budget greedy should improve TPC-H");
    }

    #[test]
    fn storage_constraint_limits_selection() {
        let (opt, cands) = setup(6);
        let ctx = TuningContext::new(&opt, &cands);
        let r_unlimited = VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(5, 10_000));
        let r_tight =
            VanillaGreedy.tune(&ctx, &TuningRequest::cardinality(5, 10_000).with_storage(1));
        assert!(r_tight.config.is_empty());
        assert!(r_tight.improvement <= r_unlimited.improvement + 1e-12);
    }
}
