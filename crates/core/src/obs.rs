//! The tuner-side observability handle.
//!
//! [`Obs`] is a cheaply-cloneable handle that is either *disabled* (the
//! default — a `None` inside, every operation an inlined no-op, no clock
//! reads, no allocation) or *enabled*, in which case it carries a bundle
//! of instruments pre-registered against a shared
//! [`MetricsRegistry`] plus an optional [`TraceRecorder`], scoped to one
//! session id.
//!
//! Two reporting styles coexist, chosen for robustness:
//!
//! * **Mirrored counters.** The call/hit/derivation counters that already
//!   live in [`SessionTelemetry`] are *published as deltas* at step and
//!   episode boundaries
//!   ([`MeteredWhatIf::publish_obs`](crate::budget::MeteredWhatIf::publish_obs)),
//!   so the registry can never drift from the legacy counters — they are
//!   derived from them. This is what the registry≡telemetry property test
//!   pins down.
//! * **Hot-path instruments.** Per-shard cache hit/lookup counters and the
//!   what-if latency histograms are incremented inline (one relaxed atomic
//!   op each) because the information they carry — shard attribution,
//!   latency distribution — does not exist in the telemetry bag at all.
//!
//! Observability must never perturb results: nothing here feeds back into
//! search decisions, and the disabled path does no work — the bit-identity
//! property test in `crates/core/tests/obs_props.rs` checks both.

use crate::budget::SessionTelemetry;
use ixtune_obs::{Counter, Histogram, MetricsRegistry, TraceRecorder};
use std::sync::Arc;

/// Shard label cardinality for the per-shard cache metrics. Matches the
/// cache's default shard count; caches with fewer shards fold into the
/// lower labels.
pub const METRIC_SHARDS: usize = 8;

/// Bucket bounds (seconds) for real what-if wall-clock latency.
const REAL_LATENCY_BOUNDS: [f64; 9] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0];

/// Bucket bounds (seconds) for the simulated latency model (§ Figure 2:
/// calls cluster around a second).
const SIM_LATENCY_BOUNDS: [f64; 8] = [0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 5.0];

struct ObsShared {
    scope: u64,
    tracer: Option<Arc<TraceRecorder>>,
    /// `ixtune_whatif_calls_total{phase=…}`, indexed in [`PHASE_LABELS`]
    /// order (priors, selection, rollout, other).
    whatif_calls: [Arc<Counter>; 4],
    cache_hits: Arc<Counter>,
    derivations: Arc<Counter>,
    parallel_scans: Arc<Counter>,
    tree_merges: Arc<Counter>,
    reservation_shortfalls: Arc<Counter>,
    warm_hits: Arc<Counter>,
    warm_seeded: Arc<Counter>,
    shard_hits: Vec<Arc<Counter>>,
    shard_lookups: Vec<Arc<Counter>>,
    /// `ixtune_whatif_latency_seconds{kernel=…}`, indexed in
    /// [`KERNEL_LABELS`] order (compiled, interpreted).
    whatif_latency: [Arc<Histogram>; 2],
    whatif_sim_latency: [Arc<Histogram>; 2],
}

const PHASE_LABELS: [&str; 4] = ["priors", "selection", "rollout", "other"];

/// Which what-if evaluation path served the call: the compiled plan-table
/// kernel or the interpreted reference model.
const KERNEL_LABELS: [&str; 2] = ["compiled", "interpreted"];

/// Observability handle: disabled by default, enabled per session by the
/// service (or by tests). Clones share the same instruments.
#[derive(Clone, Default)]
pub struct Obs {
    shared: Option<Arc<ObsShared>>,
}

impl Obs {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle reporting into `registry` (and `tracer`, if any)
    /// under session scope `scope`. Instruments are get-or-created, so
    /// several sessions share the same global series.
    pub fn enabled(
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<TraceRecorder>>,
        scope: u64,
    ) -> Self {
        let whatif_calls = PHASE_LABELS.map(|p| {
            registry.counter(
                "ixtune_whatif_calls_total",
                "Budget-consuming what-if optimizer calls",
                &[("phase", p)],
            )
        });
        let shard = |name: &str, help: &str| -> Vec<Arc<Counter>> {
            (0..METRIC_SHARDS)
                .map(|s| registry.counter(name, help, &[("shard", &s.to_string())]))
                .collect()
        };
        let shared = ObsShared {
            scope,
            tracer,
            whatif_calls,
            cache_hits: registry.counter(
                "ixtune_cache_hits_total",
                "What-if requests answered from the cache (free)",
                &[],
            ),
            derivations: registry.counter(
                "ixtune_derivations_total",
                "Cost evaluations answered by Eq. 1 derivation",
                &[],
            ),
            parallel_scans: registry.counter(
                "ixtune_parallel_scans_total",
                "Frozen-cache parallel candidate scans",
                &[],
            ),
            tree_merges: registry.counter(
                "ixtune_tree_merges_total",
                "Root-parallel MCTS worker trees merged",
                &[],
            ),
            reservation_shortfalls: registry.counter(
                "ixtune_reservation_shortfalls_total",
                "Batched budget reservations granted less than requested",
                &[],
            ),
            warm_hits: registry.counter(
                "ixtune_warm_hits_total",
                "Budgeted what-if calls answered from the warm cost store",
                &[],
            ),
            warm_seeded: registry.counter(
                "ixtune_warm_seeded_total",
                "Warm store entries sessions were seeded with at admission",
                &[],
            ),
            shard_hits: shard(
                "ixtune_cache_shard_hits_total",
                "Cache hits by cache shard (serial lookup path)",
            ),
            shard_lookups: shard(
                "ixtune_cache_shard_lookups_total",
                "Cache lookups by cache shard (serial lookup path)",
            ),
            whatif_latency: KERNEL_LABELS.map(|k| {
                registry.histogram(
                    "ixtune_whatif_latency_seconds",
                    "Observed wall-clock latency of what-if calls",
                    &[("kernel", k)],
                    &REAL_LATENCY_BOUNDS,
                )
            }),
            whatif_sim_latency: KERNEL_LABELS.map(|k| {
                registry.histogram(
                    "ixtune_whatif_sim_latency_seconds",
                    "Modeled what-if latency (ixtune_optimizer::latency)",
                    &[("kernel", k)],
                    &SIM_LATENCY_BOUNDS,
                )
            }),
        };
        Self {
            shared: Some(Arc::new(shared)),
        }
    }

    /// Whether this handle reports anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The session scope this handle reports under (0 when disabled).
    pub fn scope(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.scope)
    }

    /// Record one observed what-if call latency (real seconds) plus its
    /// modeled latency, labeled with the evaluation path that served it
    /// (`kernel="compiled"` / `kernel="interpreted"`).
    #[inline]
    pub fn observe_whatif_latency(&self, real_s: f64, sim_s: f64, compiled: bool) {
        if let Some(s) = &self.shared {
            let k = usize::from(!compiled);
            s.whatif_latency[k].observe(real_s);
            s.whatif_sim_latency[k].observe(sim_s);
        }
    }

    /// Record one serial-path cache lookup against `shard` and whether it
    /// hit.
    #[inline]
    pub fn on_cache_ref(&self, shard: usize, hit: bool) {
        if let Some(s) = &self.shared {
            s.shard_lookups[shard % METRIC_SHARDS].inc();
            if hit {
                s.shard_hits[shard % METRIC_SHARDS].inc();
            }
        }
    }

    /// Mirror the telemetry counters that grew between `prev` and `cur`
    /// into the registry. Saturating per field, so a caller that publishes
    /// out of order can never make a counter go backwards.
    pub fn publish_deltas(&self, prev: &SessionTelemetry, cur: &SessionTelemetry) {
        let Some(s) = &self.shared else { return };
        let d = |a: usize, b: usize| b.saturating_sub(a) as u64;
        let per_phase = [
            (prev.priors_calls, cur.priors_calls),
            (prev.selection_calls, cur.selection_calls),
            (prev.rollout_calls, cur.rollout_calls),
            (prev.other_calls, cur.other_calls),
        ];
        for (i, (p, c)) in per_phase.into_iter().enumerate() {
            let delta = d(p, c);
            if delta > 0 {
                s.whatif_calls[i].add(delta);
            }
        }
        s.cache_hits.add(d(prev.cache_hits, cur.cache_hits));
        s.derivations.add(d(prev.derivations, cur.derivations));
        s.parallel_scans
            .add(d(prev.parallel_scans, cur.parallel_scans));
        s.tree_merges.add(d(prev.tree_merges, cur.tree_merges));
        s.reservation_shortfalls
            .add(d(prev.reservation_shortfalls, cur.reservation_shortfalls));
        s.warm_hits.add(d(prev.warm_hits, cur.warm_hits));
        s.warm_seeded.add(d(prev.warm_seeded, cur.warm_seeded));
    }

    /// Start a span: returns the start timestamp when tracing is enabled,
    /// `None` otherwise — so call sites build span arguments only inside
    /// an `if let`. Pair with [`span_end`](Self::span_end).
    #[inline]
    pub fn span_start(&self) -> Option<u64> {
        match &self.shared {
            Some(s) => s.tracer.as_ref().map(|t| t.now_us()),
            None => None,
        }
    }

    /// Complete a span started at `start_us`.
    pub fn span_end(
        &self,
        start_us: u64,
        name: &str,
        cat: &'static str,
        args: Vec<(String, String)>,
    ) {
        if let Some(s) = &self.shared {
            if let Some(t) = &s.tracer {
                t.complete(name, cat, s.scope, start_us, args);
            }
        }
    }

    /// Record an instant event (no duration).
    pub fn event(&self, name: &str, cat: &'static str, args: Vec<(String, String)>) {
        if let Some(s) = &self.shared {
            if let Some(t) = &s.tracer {
                t.event(name, cat, s.scope, args);
            }
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("scope", &self.scope())
            .finish()
    }
}

/// Scrape-time helper: compute per-shard cache hit *ratio* gauges from the
/// shard hit/lookup counters. Called by the daemon right before rendering
/// the exposition so the ratios reflect the counters in the same scrape.
pub fn publish_cache_hit_ratios(registry: &MetricsRegistry) {
    for s in 0..METRIC_SHARDS {
        let label = s.to_string();
        let labels: [(&str, &str); 1] = [("shard", &label)];
        let hits = registry
            .counter_value("ixtune_cache_shard_hits_total", &labels)
            .unwrap_or(0);
        let lookups = registry
            .counter_value("ixtune_cache_shard_lookups_total", &labels)
            .unwrap_or(0);
        let ratio = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        registry
            .gauge(
                "ixtune_cache_shard_hit_ratio",
                "Cache hit ratio by cache shard (serial lookup path)",
                &labels,
            )
            .set(ratio);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert_eq!(obs.scope(), 0);
        assert_eq!(obs.span_start(), None);
        obs.on_cache_ref(3, true);
        obs.observe_whatif_latency(0.1, 1.0, true);
        obs.publish_deltas(&SessionTelemetry::default(), &SessionTelemetry::default());
    }

    #[test]
    fn publish_deltas_mirrors_counter_growth() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = Obs::enabled(Arc::clone(&registry), None, 1);
        let prev = SessionTelemetry::default();
        let cur = SessionTelemetry {
            what_if_calls: 10,
            cache_hits: 4,
            derivations: 7,
            priors_calls: 2,
            selection_calls: 3,
            rollout_calls: 1,
            other_calls: 4,
            parallel_scans: 2,
            tree_merges: 1,
            reservation_shortfalls: 0,
            ..SessionTelemetry::default()
        };
        obs.publish_deltas(&prev, &cur);
        obs.publish_deltas(&cur, &cur); // idempotent on no growth
        let phases: u64 = PHASE_LABELS
            .iter()
            .map(|p| {
                registry
                    .counter_value("ixtune_whatif_calls_total", &[("phase", p)])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(phases, 10);
        assert_eq!(
            registry.counter_value("ixtune_cache_hits_total", &[]),
            Some(4)
        );
        assert_eq!(
            registry.counter_value("ixtune_derivations_total", &[]),
            Some(7)
        );
        assert_eq!(
            registry.counter_value("ixtune_parallel_scans_total", &[]),
            Some(2)
        );
    }

    #[test]
    fn shard_ratio_gauges_render_at_scrape_time() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = Obs::enabled(Arc::clone(&registry), None, 0);
        obs.on_cache_ref(0, true);
        obs.on_cache_ref(0, false);
        obs.on_cache_ref(9, true); // folds into shard 1
        publish_cache_hit_ratios(&registry);
        let text = registry.render();
        assert!(
            text.contains("ixtune_cache_shard_hit_ratio{shard=\"0\"} 0.5"),
            "{text}"
        );
        assert!(text.contains("ixtune_cache_shard_hit_ratio{shard=\"1\"} 1"));
    }

    #[test]
    fn spans_scope_to_the_session() {
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(TraceRecorder::new(16));
        let obs = Obs::enabled(registry, Some(Arc::clone(&tracer)), 42);
        let t = obs.span_start().expect("tracer attached");
        obs.span_end(t, "step", "greedy", vec![("i".into(), "0".into())]);
        obs.event("mark", "test", vec![]);
        assert_eq!(tracer.records(Some(42)).len(), 2);
        assert_eq!(tracer.records(Some(7)).len(), 0);
    }
}
