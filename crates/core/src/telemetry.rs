//! Versioned telemetry schema.
//!
//! v1 was the flat counter bag serialized straight off
//! [`SessionTelemetry`] — one anonymous JSON object per row, no version
//! tag, fields accreting over time (early files lack `session_threads`
//! and the parallel-execution counters entirely). v2
//! ([`TelemetryV2`]) is the wire/sidecar schema going forward: a
//! `"version": 2` tag and typed sections — the per-phase call breakdown,
//! cache activity, and the execution profile — so consumers can match on
//! structure instead of guessing which flat fields exist.
//!
//! [`SessionTelemetry`] itself stays the in-memory counter bag the
//! enumerators increment (it is `Copy` and lives in hot paths);
//! `TelemetryV2` is its serialization. The two convert losslessly in both
//! directions, and [`v1::read_rows`] still reads every telemetry sidecar
//! already checked into `results/`, tolerating the missing fields of old
//! files.

use crate::budget::SessionTelemetry;
use serde::{Deserialize, Serialize};

/// Current telemetry schema version.
pub const TELEMETRY_VERSION: u32 = 2;

/// Where the what-if budget went, by phase (Algorithm 3/4 attribution).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CallBreakdown {
    /// Total budget-consuming optimizer invocations.
    pub what_if_calls: usize,
    /// Calls spent in the singleton-prior bootstrap.
    pub priors_calls: usize,
    /// Calls spent evaluating selection-terminal configurations.
    pub selection_calls: usize,
    /// Calls spent evaluating rollout-completed configurations.
    pub rollout_calls: usize,
    /// Calls outside any labelled phase (greedy enumeration, extraction).
    pub other_calls: usize,
}

/// How cost questions were answered without spending budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheActivity {
    /// What-if requests answered from the cache (free).
    pub cache_hits: usize,
    /// Cost evaluations answered by Eq. 1 derivation.
    pub derivations: usize,
    /// Budgeted calls answered from the daemon's warm cost store (the
    /// optimizer invocation was skipped; budget still consumed).
    pub warm_hits: usize,
    /// Warm store entries the session was seeded with at admission.
    pub warm_seeded: usize,
}

/// How the session executed (parallelism profile; results are invariant
/// to all of it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// Logical session thread count the tuner resolved (1 = serial).
    pub session_threads: usize,
    /// Frozen-cache parallel candidate scans executed.
    pub parallel_scans: usize,
    /// Root-parallel MCTS worker trees merged into the master.
    pub tree_merges: usize,
    /// Batched budget reservations granted less than requested.
    pub reservation_shortfalls: usize,
}

/// Telemetry schema v2: the versioned, sectioned serialization of a
/// session's [`SessionTelemetry`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetryV2 {
    /// Schema tag; always [`TELEMETRY_VERSION`] when produced by this
    /// crate.
    pub version: u32,
    pub calls: CallBreakdown,
    pub cache: CacheActivity,
    pub exec: ExecutionProfile,
    /// Wall-clock of the session in milliseconds (stamped by whoever ran
    /// the session; 0 when not measured).
    pub wall_clock_ms: f64,
}

impl Default for TelemetryV2 {
    fn default() -> Self {
        SessionTelemetry::default().into()
    }
}

impl From<SessionTelemetry> for TelemetryV2 {
    fn from(t: SessionTelemetry) -> Self {
        Self {
            version: TELEMETRY_VERSION,
            calls: CallBreakdown {
                what_if_calls: t.what_if_calls,
                priors_calls: t.priors_calls,
                selection_calls: t.selection_calls,
                rollout_calls: t.rollout_calls,
                other_calls: t.other_calls,
            },
            cache: CacheActivity {
                cache_hits: t.cache_hits,
                derivations: t.derivations,
                warm_hits: t.warm_hits,
                warm_seeded: t.warm_seeded,
            },
            exec: ExecutionProfile {
                session_threads: t.session_threads,
                parallel_scans: t.parallel_scans,
                tree_merges: t.tree_merges,
                reservation_shortfalls: t.reservation_shortfalls,
            },
            wall_clock_ms: t.wall_clock_ms,
        }
    }
}

impl From<TelemetryV2> for SessionTelemetry {
    fn from(v: TelemetryV2) -> Self {
        Self {
            what_if_calls: v.calls.what_if_calls,
            cache_hits: v.cache.cache_hits,
            derivations: v.cache.derivations,
            priors_calls: v.calls.priors_calls,
            selection_calls: v.calls.selection_calls,
            rollout_calls: v.calls.rollout_calls,
            other_calls: v.calls.other_calls,
            session_threads: v.exec.session_threads,
            parallel_scans: v.exec.parallel_scans,
            tree_merges: v.exec.tree_merges,
            reservation_shortfalls: v.exec.reservation_shortfalls,
            wall_clock_ms: v.wall_clock_ms,
            warm_hits: v.cache.warm_hits,
            warm_seeded: v.cache.warm_seeded,
        }
    }
}

/// Reader for the unversioned v1 telemetry sidecars in `results/`.
pub mod v1 {
    use super::*;
    use serde::Value;

    /// One v1 sidecar row: experiment-cell coordinates plus the flat
    /// counter bag.
    #[derive(Clone, Debug, PartialEq)]
    pub struct V1Row {
        pub algorithm: String,
        pub k: usize,
        pub budget: usize,
        pub seeds: usize,
        pub telemetry: SessionTelemetry,
    }

    impl V1Row {
        /// Convert to the v2 schema.
        pub fn to_v2(&self) -> TelemetryV2 {
            self.telemetry.into()
        }
    }

    fn usize_field(obj: &Value, key: &str) -> usize {
        obj.get(key).and_then(Value::as_u64).unwrap_or(0) as usize
    }

    /// Parse a v1 telemetry sidecar (a JSON array of flat row objects).
    /// Missing counter fields read as 0 — early files predate
    /// `session_threads` and the parallel-execution counters. Rows that
    /// carry a `version` tag are rejected: they are not v1.
    pub fn read_rows(json: &str) -> Result<Vec<V1Row>, String> {
        let value = serde_json::value_from_str(json).map_err(|e| format!("{e:?}"))?;
        let Value::Arr(rows) = value else {
            return Err("v1 telemetry sidecar must be a JSON array".into());
        };
        rows.iter()
            .enumerate()
            .map(|(i, row)| {
                if !matches!(row, Value::Obj(_)) {
                    return Err(format!("row {i}: not an object"));
                }
                if row.get("version").is_some() || row.get("telemetry").is_some() {
                    return Err(format!("row {i}: versioned/sectioned row, not v1"));
                }
                let algorithm = row
                    .get("algorithm")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("row {i}: missing algorithm"))?
                    .to_string();
                let telemetry = SessionTelemetry {
                    what_if_calls: usize_field(row, "what_if_calls"),
                    cache_hits: usize_field(row, "cache_hits"),
                    derivations: usize_field(row, "derivations"),
                    priors_calls: usize_field(row, "priors_calls"),
                    selection_calls: usize_field(row, "selection_calls"),
                    rollout_calls: usize_field(row, "rollout_calls"),
                    other_calls: usize_field(row, "other_calls"),
                    session_threads: usize_field(row, "session_threads"),
                    parallel_scans: usize_field(row, "parallel_scans"),
                    tree_merges: usize_field(row, "tree_merges"),
                    reservation_shortfalls: usize_field(row, "reservation_shortfalls"),
                    wall_clock_ms: row
                        .get("wall_clock_ms")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0),
                    warm_hits: usize_field(row, "warm_hits"),
                    warm_seeded: usize_field(row, "warm_seeded"),
                };
                Ok(V1Row {
                    algorithm,
                    k: usize_field(row, "k"),
                    budget: usize_field(row, "budget"),
                    seeds: usize_field(row, "seeds"),
                    telemetry,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionTelemetry {
        SessionTelemetry {
            what_if_calls: 100,
            cache_hits: 40,
            derivations: 25,
            priors_calls: 10,
            selection_calls: 50,
            rollout_calls: 30,
            other_calls: 10,
            session_threads: 4,
            parallel_scans: 3,
            tree_merges: 2,
            reservation_shortfalls: 1,
            wall_clock_ms: 12.5,
            warm_hits: 8,
            warm_seeded: 120,
        }
    }

    #[test]
    fn v2_round_trips_the_flat_counters() {
        let t = sample();
        let v2: TelemetryV2 = t.into();
        assert_eq!(v2.version, TELEMETRY_VERSION);
        let back: SessionTelemetry = v2.into();
        assert_eq!(back, t);
    }

    #[test]
    fn v2_serializes_with_version_tag_and_sections() {
        let v2: TelemetryV2 = sample().into();
        let json = serde_json::to_string(&v2).unwrap();
        assert!(json.contains("\"version\":2"), "{json}");
        for section in ["\"calls\"", "\"cache\"", "\"exec\"", "\"wall_clock_ms\""] {
            assert!(json.contains(section), "{json}");
        }
        let back: TelemetryV2 = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v2);
    }

    #[test]
    fn v1_reader_tolerates_missing_fields() {
        // The shape of results/fig8.telemetry.json rows, which predate
        // session_threads/parallel_scans/tree_merges/reservation_shortfalls.
        let json = r#"[{
            "algorithm": "MCTS",
            "k": 5,
            "budget": 500,
            "seeds": 3,
            "what_if_calls": 1500,
            "cache_hits": 200,
            "derivations": 90,
            "priors_calls": 60,
            "selection_calls": 700,
            "rollout_calls": 640,
            "other_calls": 100,
            "wall_clock_ms": 42.0
        }]"#;
        let rows = v1::read_rows(json).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.algorithm, "MCTS");
        assert_eq!(r.telemetry.what_if_calls, 1500);
        assert_eq!(r.telemetry.session_threads, 0, "absent field reads 0");
        assert_eq!(r.telemetry.parallel_scans, 0);
        let v2 = r.to_v2();
        assert_eq!(v2.calls.what_if_calls, 1500);
        assert_eq!(v2.cache.cache_hits, 200);
        assert_eq!(v2.wall_clock_ms, 42.0);
    }

    #[test]
    fn v1_reader_rejects_versioned_rows() {
        let json = r#"[{"algorithm": "A", "version": 2}]"#;
        assert!(v1::read_rows(json).is_err());
        // v2 sidecar rows nest the tag inside a `telemetry` section; the
        // v1 reader must refuse those too rather than read zeros.
        let sectioned = r#"[{"algorithm": "A", "telemetry": {"version": 2}}]"#;
        assert!(v1::read_rows(sectioned).is_err());
    }

    #[test]
    fn v1_reader_rejects_non_arrays() {
        assert!(v1::read_rows("{}").is_err());
        assert!(v1::read_rows("[3]").is_err());
    }
}
